"""A minimal blocking client for the JSON-lines protocol.

Used by the tests, the CI smoke script, the chaos campaign, and the
``serve`` bench workload; also a reference implementation for external
clients (the whole protocol fits in :meth:`ReproClient.request`).

Resilience: transport failures (refused connect, reset connection, a
half-written response line, unparsable bytes) are retried under a
deterministic :class:`RetryPolicy` — seeded exponential backoff with
jitter, bounded attempts.  Retries are *idempotent* against the server:
the request ``id`` is resent unchanged and the service's outcome cache
returns the already-computed result instead of re-paying compilation, so
a retry after a mid-flight failure costs one cache hit, not one compile.
Typed error *responses* (``ok: false``) are never retried here — they are
answers, and the caller decides what to do with them.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any

from .protocol import encode


class ServeClientError(RuntimeError):
    """Transport-level failure that survived the whole retry budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded retry with seeded exponential backoff.

    ``delay(attempt)`` is a pure function of ``(seed, attempt)`` via the
    same private-draw-stream idiom as :class:`repro.faults.model.DrawStreams`
    (``f"{seed}:retry:{attempt}"``), so a chaos campaign's retry timing is
    reproducible from its seed.
    """

    #: retries after the first attempt (0 disables retrying entirely)
    max_retries: int = 3
    #: backoff before retry k is ``base * factor**k`` seconds, jittered
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    #: multiply each delay by a deterministic draw in [0.5, 1.0]
    jitter: bool = True
    seed: int = 0

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based)."""
        delay = self.backoff_base * (self.backoff_factor ** attempt)
        if self.jitter:
            rng = random.Random(f"{self.seed}:retry:{attempt}")
            delay *= 0.5 + 0.5 * rng.random()
        return delay


#: retrying disabled — the pre-resilience single-shot behavior
NO_RETRY = RetryPolicy(max_retries=0)


class ReproClient:
    """One connection to a repro server; safe for one thread at a time."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        retry: RetryPolicy = RetryPolicy(),
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        #: transport failures recovered by reconnect+resend
        self.retries = 0
        self._sock: socket.socket | None = None
        self._reader = None
        self._next_id = 0
        self._connect_with_retry()

    # -- connection management ---------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        # One-line request/response turns: Nagle + delayed ACK would add
        # ~40ms of latency to every request.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")

    def _connect_with_retry(self) -> None:
        for attempt in range(self.retry.max_retries + 1):
            try:
                self._connect()
                return
            except OSError as error:
                self._teardown()
                if attempt >= self.retry.max_retries:
                    raise ServeClientError(
                        f"connect to {self.host}:{self.port} failed after "
                        f"{attempt + 1} attempts: {error}"
                    ) from error
                self.retries += 1
                time.sleep(self.retry.delay(attempt))

    def _teardown(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- the protocol ------------------------------------------------------

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request, block for its response, return it decoded.

        Transport failures reconnect and resend the *same* payload (same
        ``id``) up to the retry budget; the outcome cache makes that
        idempotent server-side.
        """
        self._next_id += 1
        return self.send_payload({"id": self._next_id, "op": op, **fields})

    def next_payload(self, op: str, **fields: Any) -> dict[str, Any]:
        """A fresh request payload (with the next ``id``), not yet sent.

        The chaos campaign uses this to garble/split/abandon a payload's
        first transmission and then push the *same* payload through
        :meth:`send_payload`, proving retries are idempotent.
        """
        self._next_id += 1
        return {"id": self._next_id, "op": op, **fields}

    def send_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        """The retry loop around one exact payload; see :meth:`request`."""
        last_error: Exception | None = None
        for attempt in range(self.retry.max_retries + 1):
            if attempt:
                self.retries += 1
                time.sleep(self.retry.delay(attempt - 1))
            try:
                if self._sock is None:
                    self._connect()
                response = self._exchange(payload)
            except (OSError, ValueError) as error:
                last_error = error
                self._teardown()
                continue
            return response
        raise ServeClientError(
            f"request failed after {self.retry.max_retries + 1} attempts: "
            f"{last_error}"
        ) from last_error

    def _exchange(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One send/receive turn; raises OSError/ValueError on failure."""
        assert self._sock is not None and self._reader is not None
        self._sock.sendall(encode(payload))
        line = self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)  # ValueError on garbled bytes

    # -- op shorthands -----------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def stats(self) -> dict[str, Any]:
        response = self.request("stats")
        return response.get("result", {})

    def compile(
        self, module: str, pipeline: str = "full", tenant: str = "anonymous"
    ) -> dict[str, Any]:
        return self.request(
            "compile", module=module, pipeline=pipeline, tenant=tenant
        )

    def simulate(
        self,
        module: str,
        pipeline: str = "",
        args: list[int] | None = None,
        tenant: str = "anonymous",
    ) -> dict[str, Any]:
        return self.request(
            "simulate",
            module=module,
            pipeline=pipeline,
            args=args or [],
            tenant=tenant,
        )

    def lint(self, module: str, tenant: str = "anonymous") -> dict[str, Any]:
        return self.request("lint", module=module, tenant=tenant)

    def cost(self, module: str, tenant: str = "anonymous") -> dict[str, Any]:
        return self.request("cost", module=module, tenant=tenant)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
