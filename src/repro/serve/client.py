"""A minimal blocking client for the JSON-lines protocol.

Used by the tests, the CI smoke script, and the ``serve`` bench workload;
also a reference implementation for external clients (the whole protocol
fits in :meth:`ReproClient.request`).
"""

from __future__ import annotations

import json
import socket
from typing import Any

from .protocol import encode


class ServeClientError(RuntimeError):
    """Transport-level failure (connection dropped, unparsable response)."""


class ReproClient:
    """One connection to a repro server; safe for one thread at a time."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # One-line request/response turns: Nagle + delayed ACK would add
        # ~40ms of latency to every request.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request, block for its response, return it decoded."""
        self._next_id += 1
        payload = {"id": self._next_id, "op": op, **fields}
        try:
            self._sock.sendall(encode(payload))
            line = self._reader.readline()
        except OSError as error:
            raise ServeClientError(f"transport failed: {error}") from error
        if not line:
            raise ServeClientError("server closed the connection")
        try:
            response = json.loads(line)
        except ValueError as error:
            raise ServeClientError(
                f"unparsable response: {error}"
            ) from error
        return response

    # -- op shorthands -----------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def stats(self) -> dict[str, Any]:
        response = self.request("stats")
        return response.get("result", {})

    def compile(
        self, module: str, pipeline: str = "full", tenant: str = "anonymous"
    ) -> dict[str, Any]:
        return self.request(
            "compile", module=module, pipeline=pipeline, tenant=tenant
        )

    def simulate(
        self,
        module: str,
        pipeline: str = "",
        args: list[int] | None = None,
        tenant: str = "anonymous",
    ) -> dict[str, Any]:
        return self.request(
            "simulate",
            module=module,
            pipeline=pipeline,
            args=args or [],
            tenant=tenant,
        )

    def lint(self, module: str, tenant: str = "anonymous") -> dict[str, Any]:
        return self.request("lint", module=module, tenant=tenant)

    def cost(self, module: str, tenant: str = "anonymous") -> dict[str, Any]:
        return self.request("cost", module=module, tenant=tenant)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
