"""Configuration-wall-aware multi-tenant scheduling.

When N logical tenants time-share ONE simulated accelerator, every context
switch re-pays the configuration cost: a stateless per-tenant driver cannot
trust what the previous tenant left in the device's registers, so it
re-writes its entire configuration on every switch — the serving-layer
incarnation of the paper's configuration wall.  This module models that
wall and the scheduler that climbs over it:

* :func:`run_fifo` — the baseline: jobs run in arrival order.  Within one
  tenant's consecutive run the driver knows its own register writes and
  dedups against them (register retention, as the paper's optimized
  programs do), but a tenant switch conservatively re-pays the FULL setup.
* :func:`run_config_aware` — the scheduler: (1) *batches* jobs with the
  same configuration signature so switches become rare, (2) carries one
  shared shadow register file across tenants (the serving-layer analogue of
  ``KnownFieldsAnalysis``: what is known to be in the device's registers,
  no matter who wrote it) and on a switch writes only the fields whose
  values differ, and (3) keeps batching from starving anyone with a
  per-tenant consecutive-job *quota* and an *aging* bound (a job passed
  over ``max_wait`` times is scheduled next, unconditionally).
* :func:`run_oracle` — the lower bound used to define *re-paid*
  configuration cycles: jobs perfectly grouped by configuration signature
  (first-seen order), full cross-tenant retention.  ``repaid_config_cycles
  = config_cycles - oracle.config_cycles`` is the price of interleaving.

Costs come from the real accelerator spec: writing fields F costs
``spec.setup_instrs(F)`` host instructions (cycled through the host cost
model) and ``spec.config_bytes(F)`` bytes — identical accounting to the
co-simulator's setup charging, so these numbers live in the same currency
as every other experiment.

:func:`jobs_from_module` grounds jobs in real accfg IR: it extracts the
constant configuration a module's ``accfg.setup`` ops commit (resolved
through :class:`~repro.analysis.KnownFieldsAnalysis`), so the multitenant
experiment schedules the same workloads the paper's figures measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..backends import get_accelerator
from ..backends.base import AcceleratorSpec
from ..dialects import accfg, arith


@dataclass(frozen=True)
class TenantJob:
    """One unit of tenant work: a committed configuration plus compute."""

    tenant: str
    #: field name -> committed value (the device configuration this job
    #: requires in the register file before its launches run)
    config: tuple[tuple[str, int], ...]
    #: accelerator-side compute the job performs once configured
    compute_cycles: float
    #: arrival index (the FIFO baseline runs jobs in this order)
    arrival: int

    @staticmethod
    def make(
        tenant: str,
        config: Mapping[str, int],
        compute_cycles: float,
        arrival: int,
    ) -> "TenantJob":
        return TenantJob(
            tenant=tenant,
            config=tuple(sorted(config.items())),
            compute_cycles=float(compute_cycles),
            arrival=arrival,
        )

    @property
    def config_dict(self) -> dict[str, int]:
        return dict(self.config)

    @property
    def signature(self) -> tuple[tuple[str, int], ...]:
        """The batching key: jobs with equal signatures need no re-setup."""
        return self.config


@dataclass
class ScheduleResult:
    """Everything one scheduling policy run measures."""

    policy: str
    #: arrival indices in execution order
    order: list[int] = field(default_factory=list)
    config_cycles: float = 0.0
    config_instrs: int = 0
    config_bytes: int = 0
    compute_cycles: float = 0.0
    context_switches: int = 0
    #: configuration work beyond the perfect-batching oracle (filled by
    #: :func:`compare_policies`)
    repaid_config_cycles: float = 0.0
    #: scheduling steps the worst-served job waited beyond its turn
    max_wait: int = 0
    #: tenant -> jobs run
    per_tenant: dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return self.config_cycles + self.compute_cycles

    @property
    def throughput(self) -> float:
        """Jobs per kilocycle — the number batching is meant to raise."""
        total = self.total_cycles
        return (len(self.order) / total * 1e3) if total else 0.0

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "jobs": len(self.order),
            "config_cycles": self.config_cycles,
            "config_instrs": self.config_instrs,
            "config_bytes": self.config_bytes,
            "compute_cycles": self.compute_cycles,
            "total_cycles": self.total_cycles,
            "context_switches": self.context_switches,
            "repaid_config_cycles": self.repaid_config_cycles,
            "throughput_jobs_per_kcycle": round(self.throughput, 4),
            "max_wait": self.max_wait,
            "per_tenant": dict(sorted(self.per_tenant.items())),
        }


def setup_cost(
    spec: AcceleratorSpec, fields: Sequence[str]
) -> tuple[int, float, int]:
    """(instrs, cycles, bytes) to write ``fields``, per the real spec."""
    if not fields:
        return (0, 0.0, 0)
    names = sorted(fields)
    instrs = spec.setup_instrs_cached(names)
    model = spec.host_cost_model()
    cycles = sum(model.cycles(instr) for instr in instrs)
    return (len(instrs), cycles, spec.config_bytes(names))


class _Device:
    """The one shared accelerator: a retained register file plus meters."""

    def __init__(self, spec: AcceleratorSpec) -> None:
        self.spec = spec
        self.registers: dict[str, int] = {}

    def fields_to_write(
        self, job: TenantJob, trusted: Iterable[str] | None
    ) -> list[str]:
        """The fields job must write before launching.

        ``trusted`` is the set of register names whose current device values
        the scheduler may rely on (None = trust nothing: full re-setup).  A
        trusted field whose retained value already equals the job's wanted
        value needs no write — the cross-tenant dedup.
        """
        if trusted is None:
            return [name for name, _ in job.config]
        trusted = set(trusted)
        return [
            name
            for name, value in job.config
            if name not in trusted or self.registers.get(name) != value
        ]

    def commit(self, job: TenantJob, written: Iterable[str]) -> None:
        wanted = job.config_dict
        for name in written:
            self.registers[name] = wanted[name]


def _run_order(
    ordered: Sequence[TenantJob],
    spec: AcceleratorSpec,
    policy: str,
    cross_tenant_retention: bool,
) -> ScheduleResult:
    """Charge an execution order through the shared device.

    ``cross_tenant_retention=False`` models stateless per-tenant drivers:
    on a tenant switch nothing in the register file is trusted (full
    re-setup); within a tenant's consecutive run its own writes are trusted.
    ``True`` models the scheduler's shared shadow register file: every
    retained field is trusted regardless of which tenant wrote it.
    """
    result = ScheduleResult(policy=policy)
    device = _Device(spec)
    previous_tenant: str | None = None
    known: set[str] = set()  # fields the current trust domain may rely on
    for job in ordered:
        if previous_tenant is not None and job.tenant != previous_tenant:
            result.context_switches += 1
            if not cross_tenant_retention:
                known.clear()
        to_write = device.fields_to_write(job, known)
        instrs, cycles, nbytes = setup_cost(spec, to_write)
        device.commit(job, to_write)
        known.update(name for name, _ in job.config)
        result.order.append(job.arrival)
        result.config_instrs += instrs
        result.config_cycles += cycles
        result.config_bytes += nbytes
        result.compute_cycles += job.compute_cycles
        result.per_tenant[job.tenant] = result.per_tenant.get(job.tenant, 0) + 1
        previous_tenant = job.tenant
    for position, arrival in enumerate(result.order):
        result.max_wait = max(result.max_wait, position - arrival)
    return result


def run_fifo(jobs: Sequence[TenantJob], spec: AcceleratorSpec) -> ScheduleResult:
    """The baseline: arrival order, full re-setup on every tenant switch."""
    ordered = sorted(jobs, key=lambda job: job.arrival)
    return _run_order(ordered, spec, "fifo", cross_tenant_retention=False)


def run_oracle(
    jobs: Sequence[TenantJob], spec: AcceleratorSpec
) -> ScheduleResult:
    """Perfect batching: signature groups in first-seen order, retention on.

    The lower bound that defines re-paid configuration cycles; unreachable
    in general (it ignores quotas and waiting time entirely).
    """
    ordered = sorted(jobs, key=lambda job: job.arrival)
    groups: dict[tuple, list[TenantJob]] = {}
    for job in ordered:
        groups.setdefault(job.signature, []).append(job)
    flat = [job for group in groups.values() for job in group]
    return _run_order(flat, spec, "oracle", cross_tenant_retention=True)


def config_aware_order(
    jobs: Sequence[TenantJob],
    spec: AcceleratorSpec,
    quota: int = 4,
    max_wait: int = 8,
    window: int | None = None,
) -> list[TenantJob]:
    """The scheduler's execution order.

    Greedy over the pending window: prefer the cheapest-to-configure next
    job (zero-diff same-signature jobs first — batching falls out of the
    cost), subject to a per-tenant consecutive-run ``quota`` and an aging
    bound — any job passed over ``max_wait`` times runs next regardless of
    its configuration cost, so batching can never starve a tenant.
    ``window`` bounds how far ahead of the oldest pending job the scheduler
    may reach (None = unbounded lookahead).
    """
    pending = sorted(jobs, key=lambda job: job.arrival)
    device = _Device(spec)
    known: set[str] = set()
    ordered: list[TenantJob] = []
    passes: dict[int, int] = {}
    last_tenant: str | None = None
    consecutive = 0
    while pending:
        visible = pending if window is None else pending[:window]
        # Aging: the oldest over-waited job runs next, no questions asked.
        aged = [job for job in visible if passes.get(job.arrival, 0) >= max_wait]
        choice = None
        if aged:
            choice = aged[0]
        else:
            quota_hit = (
                consecutive >= quota
                and last_tenant is not None
                and any(job.tenant != last_tenant for job in visible)
            )

            def diff_cycles(job: TenantJob) -> float:
                return setup_cost(spec, device.fields_to_write(job, known))[1]

            candidates = (
                [job for job in visible if job.tenant != last_tenant]
                if quota_hit
                else visible
            )
            # Cheapest configuration diff wins; arrival order tie-breaks, so
            # equal-cost candidates keep FIFO fairness.
            choice = min(
                candidates, key=lambda job: (diff_cycles(job), job.arrival)
            )
        pending.remove(choice)
        for job in pending if window is None else pending[: max(0, window - 1)]:
            if job.arrival < choice.arrival:
                passes[job.arrival] = passes.get(job.arrival, 0) + 1
        written = device.fields_to_write(choice, known)
        device.commit(choice, written)
        known.update(name for name, _ in choice.config)
        if choice.tenant == last_tenant:
            consecutive += 1
        else:
            consecutive = 1
            last_tenant = choice.tenant
        ordered.append(choice)
    return ordered


def run_config_aware(
    jobs: Sequence[TenantJob],
    spec: AcceleratorSpec,
    quota: int = 4,
    max_wait: int = 8,
    window: int | None = None,
) -> ScheduleResult:
    """Batching + shared-shadow retention + quota/aging, measured."""
    ordered = config_aware_order(
        jobs, spec, quota=quota, max_wait=max_wait, window=window
    )
    result = _run_order(
        ordered, spec, "config-aware", cross_tenant_retention=True
    )
    return result


def compare_policies(
    jobs: Sequence[TenantJob],
    spec: AcceleratorSpec,
    quota: int = 4,
    max_wait: int = 8,
    window: int | None = None,
) -> dict[str, ScheduleResult]:
    """FIFO vs config-aware vs the oracle, with re-paid cycles filled in."""
    fifo = run_fifo(jobs, spec)
    aware = run_config_aware(
        jobs, spec, quota=quota, max_wait=max_wait, window=window
    )
    oracle = run_oracle(jobs, spec)
    for result in (fifo, aware, oracle):
        result.repaid_config_cycles = round(
            result.config_cycles - oracle.config_cycles, 6
        )
    return {"fifo": fifo, "config-aware": aware, "oracle": oracle}


def with_resubmissions(
    jobs: Sequence[TenantJob], failed_arrivals: Iterable[int]
) -> list[TenantJob]:
    """``jobs`` plus a retry copy of each failed job, re-arriving at the tail.

    Models what a serve-layer fault costs the scheduler: the original
    submission already ran (its configuration was paid, possibly
    deduplicated into a batch), then the response was lost — connection
    reset, thread death, deadline — so the tenant re-submits and the job
    re-arrives *after* everything else, far from its original batch.  The
    ``serve_chaos`` experiment charges these orders to chart re-paid
    configuration cycles against the serve-layer fault rate.
    """
    ordered = sorted(jobs, key=lambda job: job.arrival)
    failed = set(failed_arrivals)
    unknown = failed - {job.arrival for job in ordered}
    if unknown:
        raise ValueError(f"unknown arrival indices: {sorted(unknown)}")
    next_arrival = (ordered[-1].arrival + 1) if ordered else 0
    combined = list(ordered)
    for job in ordered:
        if job.arrival not in failed:
            continue
        combined.append(
            TenantJob(
                tenant=job.tenant,
                config=job.config,
                compute_cycles=job.compute_cycles,
                arrival=next_arrival,
            )
        )
        next_arrival += 1
    return combined


# -- grounding jobs in real IR ---------------------------------------------


def extract_config(module, accelerator: str | None = None) -> dict[str, int]:
    """The constant configuration a module commits to ``accelerator``.

    Walks every ``accfg.setup`` in program order, resolving field operands
    that are ``arith.constant`` results; later writes win, exactly as the
    device's register file would retain them.  Dynamic (loop-carried or
    computed) fields are skipped — a scheduler can only dedup what it can
    prove, the same contract ``KnownFieldsAnalysis`` gives the dedup pass.
    """
    config: dict[str, int] = {}
    for op in module.walk():
        if not isinstance(op, accfg.SetupOp):
            continue
        if accelerator is not None and op.accelerator != accelerator:
            continue
        for name, value in op.fields:
            source = getattr(value, "op", None)
            if isinstance(source, arith.ConstantOp):
                config[name] = int(source.value)
    return config


def job_from_module(
    module,
    accelerator: str,
    tenant: str,
    arrival: int,
    compute_cycles: float | None = None,
) -> TenantJob:
    """A :class:`TenantJob` for one real module targeting ``accelerator``."""
    spec = get_accelerator(accelerator)
    config = extract_config(module, accelerator)
    if compute_cycles is None:
        launches = sum(
            1 for op in module.walk() if isinstance(op, accfg.LaunchOp)
        )
        compute_cycles = max(1, launches) * spec.compute_cycles(config)
    return TenantJob.make(tenant, config, compute_cycles, arrival)


__all__ = [
    "TenantJob",
    "ScheduleResult",
    "setup_cost",
    "run_fifo",
    "run_oracle",
    "run_config_aware",
    "config_aware_order",
    "compare_policies",
    "with_resubmissions",
    "extract_config",
    "job_from_module",
]
