"""repro.serve — compilation-as-a-service over the caching stack.

A long-lived concurrent server (``python -m repro serve``) accepting
compile / simulate / lint / cost requests from many tenants, with in-flight
request dedup (concurrent identical requests coalesce onto one
computation), shared process-global cache reuse, per-tenant admission
control, and a configuration-wall-aware multi-tenant scheduler that batches
same-config tenants so context switches stop re-paying the configuration
cost.  See docs/SERVING.md.
"""

from .chaos import (
    MIXED_RATES,
    ChaosPlan,
    ChaosRates,
    ChaosReport,
    ServeFaultInjector,
    ServeFaultKind,
    build_plan,
    build_requests,
    run_cache_corruption,
    run_campaign,
    run_quota_storm,
)
from .client import NO_RETRY, ReproClient, RetryPolicy, ServeClientError
from .protocol import (
    ALL_OPS,
    DEFAULT_TENANT,
    MODULE_OPS,
    PROTOCOL,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from .scheduler import (
    ScheduleResult,
    TenantJob,
    compare_policies,
    config_aware_order,
    extract_config,
    job_from_module,
    run_config_aware,
    run_fifo,
    run_oracle,
    setup_cost,
    with_resubmissions,
)
from .server import DEFAULT_MAX_FRAME_BYTES, ReproServer, probe
from .service import (
    AdmissionError,
    ChaosEngineError,
    ChaosThreadDeath,
    CircuitBreakerPolicy,
    CompileService,
    ServiceChaos,
)

__all__ = [
    "MIXED_RATES",
    "ChaosPlan",
    "ChaosRates",
    "ChaosReport",
    "ServeFaultInjector",
    "ServeFaultKind",
    "build_plan",
    "build_requests",
    "run_cache_corruption",
    "run_campaign",
    "run_quota_storm",
    "NO_RETRY",
    "RetryPolicy",
    "DEFAULT_MAX_FRAME_BYTES",
    "ChaosEngineError",
    "ChaosThreadDeath",
    "CircuitBreakerPolicy",
    "ServiceChaos",
    "with_resubmissions",
    "ALL_OPS",
    "DEFAULT_TENANT",
    "MODULE_OPS",
    "PROTOCOL",
    "ProtocolError",
    "decode_request",
    "encode",
    "error_response",
    "ok_response",
    "ReproClient",
    "ServeClientError",
    "ReproServer",
    "probe",
    "AdmissionError",
    "CompileService",
    "ScheduleResult",
    "TenantJob",
    "compare_policies",
    "config_aware_order",
    "extract_config",
    "job_from_module",
    "run_config_aware",
    "run_fifo",
    "run_oracle",
    "setup_cost",
]
