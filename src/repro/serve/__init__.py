"""repro.serve — compilation-as-a-service over the caching stack.

A long-lived concurrent server (``python -m repro serve``) accepting
compile / simulate / lint / cost requests from many tenants, with in-flight
request dedup (concurrent identical requests coalesce onto one
computation), shared process-global cache reuse, per-tenant admission
control, and a configuration-wall-aware multi-tenant scheduler that batches
same-config tenants so context switches stop re-paying the configuration
cost.  See docs/SERVING.md.
"""

from .client import ReproClient, ServeClientError
from .protocol import (
    ALL_OPS,
    DEFAULT_TENANT,
    MODULE_OPS,
    PROTOCOL,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from .scheduler import (
    ScheduleResult,
    TenantJob,
    compare_policies,
    config_aware_order,
    extract_config,
    job_from_module,
    run_config_aware,
    run_fifo,
    run_oracle,
    setup_cost,
)
from .server import ReproServer, probe
from .service import AdmissionError, CompileService

__all__ = [
    "ALL_OPS",
    "DEFAULT_TENANT",
    "MODULE_OPS",
    "PROTOCOL",
    "ProtocolError",
    "decode_request",
    "encode",
    "error_response",
    "ok_response",
    "ReproClient",
    "ServeClientError",
    "ReproServer",
    "probe",
    "AdmissionError",
    "CompileService",
    "ScheduleResult",
    "TenantJob",
    "compare_policies",
    "config_aware_order",
    "extract_config",
    "job_from_module",
    "run_config_aware",
    "run_fifo",
    "run_oracle",
    "setup_cost",
]
