"""Wire protocol of the compilation service.

JSON-lines over a stream: every request and every response is one JSON
object on one ``\\n``-terminated line, UTF-8 encoded.  Any client that can
open a TCP socket and print JSON can drive the server — no framing beyond
the newline, no persistent per-connection state beyond the socket itself
(requests carry their tenant identity explicitly, so one connection may
multiplex many tenants and one tenant may spread over many connections).

Request object::

    {"id": <any JSON value, echoed back>,
     "op": "compile" | "simulate" | "lint" | "cost" | "stats" | "ping"
           | "shutdown",
     "tenant": "<logical tenant name>",          # default "anonymous"
     "module": "<accfg IR text>",                # compile/simulate/lint/cost
     "pipeline": "<pipeline name>",              # default: "full" (compile),
                                                 #          "" (the rest)
     "function": "main", "args": [..ints..],     # simulate only
     "deadline_ms": 500,                         # optional per-request deadline
     "chaos": {...}}                             # optional; only honored when
                                                 # the service armed chaos mode

Response object::

    {"id": ...,                                  # echoed
     "ok": true | false,
     "result": {...},                            # op-specific, when ok
     "error": {"type": ..., "message": ...},     # when not ok
     "meta": {"tenant": ..., "coalesced": bool, "cached": bool,
              "wall_ms": float}}

Typed error kinds (``error.type``) the service emits:

``protocol``
    malformed request — bad JSON, unknown op, oversized frame, bad field.
``admission``
    the tenant's (or the server's) pending-work quota is full; retry later.
``deadline``
    the request's ``deadline_ms`` budget expired before its outcome.
``circuit``
    the tenant's circuit breaker is open after repeated failures.
``shutdown``
    the server is closing; in-flight coalesced waiters get this too.
``internal``
    the computing thread died mid-flight; safe to retry (idempotent ids).
Everything else (``ParseError``, ``PipelineError``, ``InterpreterError``,
...) is the exception type name of a deterministic computation failure —
retrying will not help.

``meta.coalesced`` is true when this request never computed anything: an
identical request (same op, module, pipeline, parameters) was already in
flight and this one shared its outcome — the serving-layer form of the
paper's dedup pass.  ``meta.cached`` is true when the outcome came from the
service's outcome cache (an identical request *completed* earlier).
"""

from __future__ import annotations

import json
from typing import Any

#: ops that require a ``module`` payload
MODULE_OPS = ("compile", "simulate", "lint", "cost")
#: every op the service understands
ALL_OPS = MODULE_OPS + ("stats", "ping", "shutdown")

#: protocol identifier reported by ``ping``/``stats``
PROTOCOL = "repro-serve/1"

DEFAULT_TENANT = "anonymous"


class ProtocolError(ValueError):
    """A request that cannot be dispatched (malformed, unknown op, ...)."""


def decode_request(line: str | bytes) -> dict[str, Any]:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` with a client-presentable message on any
    malformed input; the server turns that into an error response rather
    than dropping the connection.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not UTF-8: {error}") from error
    try:
        request = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"request is not JSON: {error}") from error
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in ALL_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(ALL_OPS)}"
        )
    if op in MODULE_OPS:
        module = request.get("module")
        if not isinstance(module, str) or not module.strip():
            raise ProtocolError(f"op {op!r} requires a non-empty 'module' string")
    tenant = request.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    pipeline = request.get("pipeline")
    if pipeline is not None and not isinstance(pipeline, str):
        raise ProtocolError("'pipeline' must be a string")
    args = request.get("args")
    if args is not None and (
        not isinstance(args, list)
        or any(not isinstance(a, int) or isinstance(a, bool) for a in args)
    ):
        raise ProtocolError("'args' must be a list of integers")
    function = request.get("function")
    if function is not None and not isinstance(function, str):
        raise ProtocolError("'function' must be a string")
    deadline_ms = request.get("deadline_ms")
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float))
        or isinstance(deadline_ms, bool)
        or deadline_ms <= 0
    ):
        raise ProtocolError("'deadline_ms' must be a positive number")
    chaos = request.get("chaos")
    if chaos is not None and not isinstance(chaos, dict):
        raise ProtocolError("'chaos' must be an object")
    return request


def encode(obj: dict[str, Any]) -> bytes:
    """One response (or request) as a wire line."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def ok_response(
    request: dict[str, Any], result: dict[str, Any], meta: dict[str, Any]
) -> dict[str, Any]:
    return {
        "id": request.get("id"),
        "ok": True,
        "result": result,
        "meta": meta,
    }


def error_response(
    request: dict[str, Any],
    kind: str,
    message: str,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    return {
        "id": request.get("id") if isinstance(request, dict) else None,
        "ok": False,
        "error": {"type": kind, "message": message},
        "meta": meta or {},
    }
