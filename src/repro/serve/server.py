"""The long-lived server: a threaded JSON-lines TCP front to the service.

One :class:`ReproServer` owns one :class:`~repro.serve.service.CompileService`
and a :class:`socketserver.ThreadingTCPServer`; every connection gets a
handler thread that reads request lines, hands them to the service (where
all the sharing happens — see :mod:`.service`), and writes response lines.
Connections are cheap and stateless: clients may keep one open for many
requests or reconnect per request; tenant identity travels in the request,
not the connection.

Two hardening rules live at this layer (see ``docs/ROBUSTNESS.md``):

* **Bounded frames** — a request line longer than ``max_frame_bytes`` is
  answered with a typed ``protocol`` error and drained (the connection
  survives); ``readline()`` never buffers an unbounded hostile line.
* **Dying handler threads stay quiet** — an injected
  :class:`~repro.serve.service.ChaosThreadDeath` ends the handler thread
  (the connection drops with no response, exactly like a real crash); the
  single-flight rescue in the service has already woken any coalesced
  waiters by the time it propagates here.

Shutdown is cooperative: a ``shutdown`` request gets its response written
and flushed, then the accept loop stops; in-flight requests on other
connections finish normally, and :meth:`ReproServer.stop` closes the
service so every parked single-flight waiter wakes with a typed
``shutdown`` error.  ``python -m repro serve`` runs this in the foreground
(SIGINT also shuts down cleanly); tests and the bench harness use
:meth:`ReproServer.start` / :meth:`ReproServer.stop` around a background
thread.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from .protocol import ProtocolError, decode_request, encode, error_response
from .service import ChaosThreadDeath, CompileService

#: default request-frame bound; far above any real module, far below
#: what an unbounded ``readline()`` would happily buffer
DEFAULT_MAX_FRAME_BYTES = 1024 * 1024


class _Handler(socketserver.StreamRequestHandler):
    # Request/response round-trips on one connection: without this, Nagle
    # plus delayed ACK costs ~40ms per request on loopback.
    disable_nagle_algorithm = True

    def _read_frame(self) -> bytes | None:
        """One bounded request line; None when oversized (already drained).

        ``readline(limit)`` returns at most ``limit`` bytes; a result of
        exactly ``limit + 1`` bytes without a trailing newline means the
        frame overflowed the bound — the rest of the line is read off the
        socket in bounded chunks and discarded so the connection stays
        usable for the next (well-formed) request.
        """
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        limit = server.max_frame_bytes
        line = self.rfile.readline(limit + 1)
        if len(line) <= limit or line.endswith(b"\n"):
            return line
        # Drain the remainder of the oversized line.
        while True:
            chunk = self.rfile.readline(limit + 1)
            if not chunk or chunk.endswith(b"\n"):
                return None

    def handle(self) -> None:
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        while True:
            try:
                line = self._read_frame()
            except OSError:
                return
            if line is None:
                response = error_response(
                    {},
                    "protocol",
                    f"request frame exceeds {server.max_frame_bytes} bytes",
                )
                try:
                    self.wfile.write(encode(response))
                    self.wfile.flush()
                except OSError:
                    return
                continue
            if not line:
                return
            if not line.strip():
                continue
            shutdown = False
            try:
                request = decode_request(line)
            except ProtocolError as error:
                response = error_response({}, "protocol", str(error))
            else:
                try:
                    response = server.service.handle(request)
                except ChaosThreadDeath:
                    # Injected thread death: the service already rescued
                    # any coalesced waiters; this handler thread dies
                    # without a response, dropping the connection exactly
                    # like a real crash would.
                    return
                shutdown = request["op"] == "shutdown" and response.get("ok")
            try:
                self.wfile.write(encode(response))
                self.wfile.flush()
            except OSError:
                return
            if shutdown:
                server.begin_shutdown()
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # The default backlog (5) drops SYNs when a client fleet connects at
    # once; the overflow retries after a full second of retransmit delay.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: CompileService,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.max_frame_bytes = max_frame_bytes
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()

    def begin_shutdown(self) -> None:
        """Stop the accept loop exactly once, from any handler thread.

        ``shutdown()`` blocks until ``serve_forever`` returns, so it must
        run off the handler thread (which the accept loop may be joining).
        """
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(target=self.shutdown, daemon=True).start()


class ReproServer:
    """One service + one listening socket, embeddable or foreground."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: CompileService | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.service = service if service is not None else CompileService()
        self._tcp = _TCPServer((host, port), self.service, max_frame_bytes)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound — port 0 resolves at construction."""
        return self._tcp.server_address[:2]

    def start(self) -> "ReproServer":
        """Serve on a background thread (tests, the bench harness)."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, wake every parked waiter, close; idempotent.

        Order matters: the accept loop stops first (no new work), then the
        service closes — failing in-flight coalesced waiters fast with
        typed ``shutdown`` errors — then the listening socket is released.
        """
        self._tcp.begin_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()
        self._tcp.server_close()

    def serve_forever(self) -> None:
        """Foreground mode for the CLI; returns after a shutdown request."""
        host, port = self.address
        print(f"repro serve: listening on {host}:{port}", flush=True)
        try:
            self._tcp.serve_forever(poll_interval=0.05)
        except KeyboardInterrupt:
            pass
        finally:
            stats = self.service.stats()
            self.service.close()
            self._tcp.server_close()
            print(
                f"repro serve: shut down after {stats['requests']} request(s), "
                f"dedup hit rate {stats['dedup_hit_rate']:.1%}",
                flush=True,
            )

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def probe(host: str, port: int, timeout: float = 1.0) -> bool:
    """True when something accepts connections at (host, port)."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
