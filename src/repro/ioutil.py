"""Crash-safe file output.

Results files (benchmark baselines, experiment JSON, fuzz reproducers) are
read back by later runs and by CI; a half-written file from an interrupted
process would poison those readers.  Every writer goes through
:func:`atomic_write_text`: the payload lands in a temporary file in the same
directory and is published with :func:`os.replace`, which POSIX guarantees
is atomic — readers observe either the old complete file or the new one,
never a truncated mix.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    The binary twin of :func:`atomic_write_text` — used by the persistent
    compiled-trace store, where two fuzz shards may publish the same cache
    entry concurrently: each lands in its own temp file and the last
    ``os.replace`` wins with a complete payload, never a torn mix.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, doc: Any, indent: int = 2) -> None:
    """Serialize ``doc`` as sorted, indented JSON and publish it atomically."""
    atomic_write_text(
        path, json.dumps(doc, indent=indent, sort_keys=True) + "\n"
    )
