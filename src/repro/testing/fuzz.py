"""The differential fuzzing driver behind ``python -m repro fuzz``.

For each iteration, a seeded generator draws one typed program spec per
backend, builds it to IR over a deterministic memory image, and runs every
registered pass pipeline through the three oracles (functional equivalence,
timing-never-worse, lint cleanliness).  Failures are greedily shrunk and
written to the corpus as self-contained ``.mlir`` reproducers.

The whole run is a pure function of ``(seed, iterations, backends,
pipelines)`` — CI runs a fixed-seed smoke job, and any reported failure can
be replayed locally from either the seed or the corpus file.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from ..passes import PIPELINES
from .corpus import DEFAULT_CORPUS_DIR, ReproducerMeta, write_reproducer
from .generator import PROFILES, ProgramSpec, build_spec, generate_spec
from .oracles import OracleFailure, check_subject, subject_for_spec
from .shrink import shrink_spec


class IterationTimeout(Exception):
    """One fuzz iteration exceeded its wall-clock budget."""


@contextlib.contextmanager
def _iteration_deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`IterationTimeout` after ``seconds`` of wall clock.

    Uses ``SIGALRM``, so it interrupts arbitrary in-progress Python work (a
    pass stuck in a rewrite loop, a runaway shrink) rather than only
    checking between iterations.  A no-op when no budget is set, off the
    main thread, or on platforms without ``SIGALRM``.
    """
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum, frame):
        raise IterationTimeout()

    try:
        previous = signal.signal(signal.SIGALRM, on_alarm)
    except ValueError:  # not the main thread: deadlines unavailable
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _hang_forever() -> None:  # pragma: no cover - exercised via SIGALRM
    while True:
        time.sleep(3600)


@dataclass
class FuzzFailure:
    """One fuzz finding: the (shrunk) failing program plus its coordinates.

    ``spec`` is ``None`` for synthetic findings that have no single failing
    program — a timed-out iteration or a crashed worker shard."""

    backend: str
    iteration: int
    program_seed: int
    failure: OracleFailure
    spec: ProgramSpec | None = None
    reproducer_path: str | None = None

    def format(self) -> str:
        where = f"{self.backend} iteration {self.iteration} (seed {self.program_seed})"
        lines = [f"{where}: {self.failure.format()}"]
        if self.reproducer_path:
            lines.append(f"  reproducer: {self.reproducer_path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Summary of one fuzzing run."""

    seed: int
    iterations: int
    backends: tuple[str, ...]
    pipelines: tuple[str, ...]
    programs_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    corpus_dir: str | None = None
    #: worker processes the run was sharded over (1 = sequential)
    jobs: int = 1

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        sharding = f", {self.jobs} job(s)" if self.jobs > 1 else ""
        lines = [
            f"fuzz: seed {self.seed}, {self.iterations} iteration(s) x "
            f"{len(self.backends)} backend(s) "
            f"({', '.join(self.backends)}), pipelines: "
            f"{', '.join(self.pipelines)}{sharding}",
            f"programs run : {self.programs_run}",
            f"failures     : {len(self.failures)}",
        ]
        for finding in self.failures:
            lines.append(finding.format())
        return "\n".join(lines)


def program_seed(seed: int, backend: str, iteration: int) -> int:
    """Stable per-program seed (process-independent, unlike ``hash``)."""
    return (
        seed * 1_000_003 + iteration * 7919 + zlib.crc32(backend.encode())
    ) & 0x7FFFFFFF


def fuzz(
    seed: int = 0,
    iterations: int = 100,
    backends: tuple[str, ...] | None = None,
    pipelines: Mapping[str, Callable] | None = None,
    corpus_dir: str | None = DEFAULT_CORPUS_DIR,
    shrink: bool = True,
    max_stmts: int = 6,
    max_failures: int = 10,
    on_progress: Callable[[str], None] | None = None,
    engine: str = "trace",
    start_iteration: int = 0,
    iteration_timeout: float | None = None,
    inject_hang: int | None = None,
    inject_crash: int | None = None,
) -> FuzzReport:
    """Run the differential fuzzer; see the module docstring.

    ``iterations`` counts programs *per backend*.  ``pipelines`` defaults to
    every registered pipeline; custom mappings let tests inject deliberately
    broken passes.  Shrunk reproducers are written to ``corpus_dir`` (pass
    ``None`` to disable).  The run stops early after ``max_failures``
    distinct findings.  ``engine`` selects trace/tree execution for the
    oracles (``"trace"`` also cross-checks every unoptimized run against the
    tree interpreter; see :mod:`repro.testing.oracles`).
    ``start_iteration`` offsets the iteration range — program seeds are a
    function of the *absolute* iteration index, which is what lets
    :func:`repro.testing.parallel.fuzz_sharded` split one run across
    processes without changing which programs are generated.

    ``iteration_timeout`` bounds each (iteration, backend) step in seconds
    of wall clock; a step that exceeds it is reported as a ``timeout``
    finding and the run continues with the next program.  ``inject_hang``
    and ``inject_crash`` are testing hooks: at the given absolute iteration
    the first backend's step hangs forever (exercising the timeout path) or
    hard-exits the process (exercising sharded worker-crash isolation).
    """
    backends = tuple(backends or sorted(PROFILES))
    for backend in backends:
        if backend not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(f"unknown backend '{backend}' (known: {known})")
    pipeline_map = dict(pipelines if pipelines is not None else PIPELINES)
    report = FuzzReport(
        seed=seed,
        iterations=iterations,
        backends=backends,
        pipelines=tuple(sorted(pipeline_map)),
        corpus_dir=corpus_dir,
    )

    import random

    for iteration in range(start_iteration, start_iteration + iterations):
        for backend in backends:
            if len(report.failures) >= max_failures:
                return report
            pseed = program_seed(seed, backend, iteration)
            if inject_crash is not None and iteration == inject_crash:
                os._exit(86)
            report.programs_run += 1
            spec = None
            try:
                with _iteration_deadline(iteration_timeout):
                    if inject_hang is not None and iteration == inject_hang:
                        _hang_forever()
                    rng = random.Random(pseed)
                    spec = generate_spec(rng, backend, max_stmts=max_stmts)
                    subject = subject_for_spec(spec, memory_seed=pseed)
                    failures = check_subject(
                        subject, pipeline_map, engine=engine
                    )
                    if not failures:
                        continue
                    finding = _handle_failure(
                        spec,
                        pseed,
                        iteration,
                        failures[0],
                        pipeline_map,
                        corpus_dir,
                        shrink,
                        engine,
                    )
            except IterationTimeout:
                finding = FuzzFailure(
                    backend=backend,
                    iteration=iteration,
                    program_seed=pseed,
                    failure=OracleFailure(
                        oracle="timeout",
                        pipeline="*",
                        message=(
                            f"iteration exceeded its {iteration_timeout:g}s "
                            "wall-clock budget"
                        ),
                    ),
                    spec=spec,
                )
            report.failures.append(finding)
            if on_progress:
                on_progress(finding.format())
        if on_progress and (iteration + 1) % 25 == 0:
            on_progress(
                f"... {report.programs_run} programs, "
                f"{len(report.failures)} failure(s)"
            )
    return report


def _handle_failure(
    spec: ProgramSpec,
    pseed: int,
    iteration: int,
    failure: OracleFailure,
    pipeline_map: Mapping[str, Callable],
    corpus_dir: str | None,
    shrink: bool,
    engine: str = "trace",
) -> FuzzFailure:
    """Shrink one failing spec and write its reproducer."""
    needed = {
        name: pipeline_map[name]
        for name in ("none", "baseline", failure.pipeline)
        if name in pipeline_map
    }

    def still_fails(candidate: ProgramSpec) -> bool:
        candidate_failures = check_subject(
            subject_for_spec(candidate, memory_seed=pseed), needed, engine=engine
        )
        return any(
            f.oracle == failure.oracle and f.pipeline == failure.pipeline
            for f in candidate_failures
        )

    if shrink:
        spec = shrink_spec(spec, still_fails)
        # Re-derive the (possibly different) message of the shrunk case.
        final = [
            f
            for f in check_subject(
                subject_for_spec(spec, memory_seed=pseed), needed, engine=engine
            )
            if f.oracle == failure.oracle and f.pipeline == failure.pipeline
        ]
        if final:
            failure = final[0]

    path: str | None = None
    if corpus_dir is not None:
        built = build_spec(spec, memory_seed=pseed)
        meta = ReproducerMeta(
            backend=spec.backend,
            pipeline=failure.pipeline,
            oracle=failure.oracle,
            seed=pseed,
            memory_seed=pseed,
            args=tuple(built.args),
            zero_trip_sites=built.zero_trip_sites,
            message=failure.message,
        )
        path = write_reproducer(corpus_dir, meta, str(built.module))
    return FuzzFailure(
        backend=spec.backend,
        iteration=iteration,
        program_seed=pseed,
        failure=failure,
        spec=spec,
        reproducer_path=path,
    )
