"""Fuzzer self-test: prove the oracles catch a miscompiling pass.

A correctness harness that never fires is indistinguishable from one that
cannot fire.  This module injects a *deliberately broken* configuration
deduplication — a mutation that additionally deletes the last field of
every multi-field setup, i.e. an over-aggressive redundant-field
elimination — runs the fuzzer against it, and checks the full loop:

1. the functional oracle reports a divergence,
2. the shrinker reduces the case,
3. the written ``.mlir`` reproducer replays to the same failure.

``python -m repro fuzz --selftest`` (and the CI smoke job) run this; it
exits non-zero if the broken pass somehow *survives* the oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dialects import accfg
from ..ir.operation import Operation
from ..passes import PassManager
from ..passes.dedup import DedupPass
from ..passes.trace_states import TraceStatesPass
from .corpus import replay
from .fuzz import FuzzReport, fuzz


class BrokenDedupPass(DedupPass):
    """Configuration deduplication with an injected miscompile.

    After the real dedup runs, the mutation drops the last field of every
    setup that writes more than one — as if the redundant-field analysis
    wrongly proved it dead.  Programs whose semantics depend on that field
    (most partial reconfigurations) silently compute wrong results, which
    is exactly the class of bug the differential oracles must catch.
    """

    name = "accfg-dedup-broken"

    def apply(self, module: Operation) -> None:
        super().apply(module)
        for op in module.walk():
            if isinstance(op, accfg.SetupOp) and len(op.field_names) > 1:
                op.set_fields(list(op.fields[:-1]))


def broken_dedup_pipeline() -> PassManager:
    """The ``dedup`` pipeline with the miscompiling pass swapped in."""
    return PassManager([TraceStatesPass(), BrokenDedupPass()])


@dataclass
class SelftestResult:
    report: FuzzReport
    caught: bool
    replayed: bool

    @property
    def ok(self) -> bool:
        return self.caught and self.replayed

    def summary(self) -> str:
        lines = [self.report.summary(), ""]
        lines.append(
            "selftest: broken dedup "
            + ("CAUGHT" if self.caught else "NOT caught — oracle gap!")
        )
        if self.caught:
            lines.append(
                "selftest: reproducer "
                + ("replays to the same failure" if self.replayed else "does NOT replay!")
            )
        return "\n".join(lines)


def run_selftest(
    seed: int = 0,
    iterations: int = 25,
    corpus_dir: str | None = None,
    backends: tuple[str, ...] = ("toyvec",),
) -> SelftestResult:
    """Fuzz the broken pipeline; the run *succeeds* when a failure is found
    and its shrunk reproducer replays."""
    from ..passes import PIPELINES

    pipelines = {
        "none": PIPELINES["none"],
        "baseline": PIPELINES["baseline"],
        "dedup-broken": broken_dedup_pipeline,
    }
    report = fuzz(
        seed=seed,
        iterations=iterations,
        backends=backends,
        pipelines=pipelines,
        corpus_dir=corpus_dir,
        max_failures=1,
    )
    caught = any(
        finding.failure.pipeline == "dedup-broken" for finding in report.failures
    )
    replayed = False
    if caught:
        finding = report.failures[0]
        if finding.reproducer_path:
            observed = replay(
                finding.reproducer_path, pipelines={"dedup-broken": broken_dedup_pipeline}
            )
            replayed = any(
                f.oracle == finding.failure.oracle
                and f.pipeline == finding.failure.pipeline
                for f in observed
            )
        else:  # corpus writing disabled: count the in-memory shrink as success
            replayed = True
    return SelftestResult(report=report, caught=caught, replayed=replayed)
