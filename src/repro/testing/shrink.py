"""Greedy test-case shrinking for generated program specs.

Given a failing :class:`~repro.testing.generator.ProgramSpec` and a
predicate "does this still fail the same way", the shrinker repeatedly
applies the most aggressive structure-reducing transformation that keeps
the failure alive, until none applies (or an attempt budget runs out):

1. delete a whole statement (anywhere in the tree);
2. replace a loop or branch by its body (flatten control flow);
3. reduce a loop's trip count to 1;
4. drop a field from an invocation;
5. simplify an invocation (launch -> setup-only, dynamic -> static field).

The candidate order guarantees monotone progress: every accepted candidate
strictly reduces a (statements, nodes, fields, flags) measure, so the loop
terminates without an explicit fixpoint check.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .generator import (
    Branch,
    FieldWrite,
    Invoke,
    Loop,
    ProgramSpec,
    Stmt,
)


def _with_stmts(spec: ProgramSpec, stmts: tuple[Stmt, ...]) -> ProgramSpec:
    return ProgramSpec(spec.backend, stmts, spec.cond_value)


def _edit_stmts(
    stmts: tuple[Stmt, ...],
    edit: Callable[[tuple[Stmt, ...]], Iterator[tuple[Stmt, ...]]],
) -> Iterator[tuple[Stmt, ...]]:
    """Yield every statement tuple obtained by applying ``edit`` to this
    level or (recursively) to one nested body."""
    yield from edit(stmts)
    for i, stmt in enumerate(stmts):
        if isinstance(stmt, Loop):
            for body in _edit_stmts(stmt.body, edit):
                yield (*stmts[:i], Loop(stmt.trips, body), *stmts[i + 1 :])
        elif isinstance(stmt, Branch):
            for then in _edit_stmts(stmt.then, edit):
                yield (*stmts[:i], Branch(then, stmt.orelse), *stmts[i + 1 :])
            for orelse in _edit_stmts(stmt.orelse, edit):
                yield (*stmts[:i], Branch(stmt.then, orelse), *stmts[i + 1 :])


def _deletions(stmts: tuple[Stmt, ...]) -> Iterator[tuple[Stmt, ...]]:
    for i in range(len(stmts)):
        yield (*stmts[:i], *stmts[i + 1 :])


def _flattenings(stmts: tuple[Stmt, ...]) -> Iterator[tuple[Stmt, ...]]:
    for i, stmt in enumerate(stmts):
        if isinstance(stmt, Loop):
            yield (*stmts[:i], *stmt.body, *stmts[i + 1 :])
        elif isinstance(stmt, Branch):
            yield (*stmts[:i], *stmt.then, *stmts[i + 1 :])
            if stmt.orelse:
                yield (*stmts[:i], *stmt.orelse, *stmts[i + 1 :])
                yield (*stmts[:i], Branch(stmt.then, ()), *stmts[i + 1 :])


def _trip_reductions(stmts: tuple[Stmt, ...]) -> Iterator[tuple[Stmt, ...]]:
    for i, stmt in enumerate(stmts):
        if isinstance(stmt, Loop) and stmt.trips > 1:
            yield (*stmts[:i], Loop(1, stmt.body), *stmts[i + 1 :])


def _invoke_simplifications(stmts: tuple[Stmt, ...]) -> Iterator[tuple[Stmt, ...]]:
    for i, stmt in enumerate(stmts):
        if not isinstance(stmt, Invoke):
            continue
        for j in range(len(stmt.fields)):
            fields = (*stmt.fields[:j], *stmt.fields[j + 1 :])
            yield (*stmts[:i], Invoke(stmt.accelerator, fields, stmt.launch), *stmts[i + 1 :])
        if stmt.launch:
            yield (*stmts[:i], Invoke(stmt.accelerator, stmt.fields, False), *stmts[i + 1 :])
        for j, write in enumerate(stmt.fields):
            if write.dynamic:
                fields = (
                    *stmt.fields[:j],
                    FieldWrite(write.name, write.choice, False),
                    *stmt.fields[j + 1 :],
                )
                yield (*stmts[:i], Invoke(stmt.accelerator, fields, stmt.launch), *stmts[i + 1 :])


#: Most aggressive first: whole-statement deletion, then flattening, then
#: local simplifications.
_PASSES = (_deletions, _flattenings, _trip_reductions, _invoke_simplifications)


def shrink_candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """All one-step reductions of ``spec``, most aggressive first."""
    for edit in _PASSES:
        for stmts in _edit_stmts(spec.stmts, edit):
            yield _with_stmts(spec, stmts)


def shrink_spec(
    spec: ProgramSpec,
    still_fails: Callable[[ProgramSpec], bool],
    max_attempts: int = 400,
) -> ProgramSpec:
    """Greedily minimize ``spec`` while ``still_fails`` holds.

    ``still_fails`` should rebuild and re-check the candidate and return
    True when the original failure (same oracle, same pipeline) reproduces.
    Returns the smallest failing spec found within the attempt budget.
    """
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in shrink_candidates(spec):
            attempts += 1
            if attempts > max_attempts:
                break
            if still_fails(candidate):
                spec = candidate
                progress = True
                break
    return spec
