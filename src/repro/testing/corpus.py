"""Reproducer corpus: failing fuzz cases as self-contained ``.mlir`` files.

Every file the fuzzer writes is ordinary, parseable textual IR preceded by
``//`` comment lines carrying the replay metadata:

* which backend profile built the memory image (buffer addresses and
  contents are a pure function of ``(backend, memory_seed)``, so the module
  text plus two integers fully reconstructs the run);
* which pipeline and which oracle failed, the generator seed that produced
  the case, the ``main`` arguments, and a human-readable failure message.

``python -m repro fuzz --replay <file>`` re-runs the recorded pipeline's
oracles against the recorded baseline and reports whether the failure still
reproduces — the triage loop for a shrunk reproducer is therefore: read the
(tiny) module, replay, bisect the pass pipeline by hand with
``python -m repro opt``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

from ..ioutil import atomic_write_text
from ..ir import parse_module, verify_operation
from .generator import build_memory
from .oracles import OracleFailure, Subject, check_subject

#: Default directory for locally collected reproducers (gitignored).
DEFAULT_CORPUS_DIR = "fuzz-corpus"

_META_PREFIX = "// repro-fuzz-meta: "
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ReproducerMeta:
    """The replay metadata stored in a corpus file's header."""

    backend: str
    pipeline: str
    oracle: str
    seed: int
    memory_seed: int
    args: tuple[int, ...]
    zero_trip_sites: int = 0
    message: str = ""
    version: int = _FORMAT_VERSION


@dataclass
class Reproducer:
    """A corpus entry: metadata plus the module's textual IR."""

    meta: ReproducerMeta
    module_text: str
    path: str | None = field(default=None)


def write_reproducer(
    directory: str, meta: ReproducerMeta, module_text: str
) -> str:
    """Write one reproducer; returns its path.

    File names encode the failure coordinates so a corpus directory reads
    like a failure summary: ``<backend>-<pipeline>-<oracle>-s<seed>.mlir``.
    """
    os.makedirs(directory, exist_ok=True)
    name = f"{meta.backend}-{meta.pipeline}-{meta.oracle}-s{meta.seed}.mlir"
    path = os.path.join(directory, name)
    payload = asdict(meta)
    payload["args"] = list(meta.args)
    lines = [
        "// repro-fuzz reproducer — replay with: "
        "python -m repro fuzz --replay <this file>\n",
        f"// failure: {meta.message}\n",
        _META_PREFIX + json.dumps(payload, sort_keys=True) + "\n",
        module_text,
    ]
    if not module_text.endswith("\n"):
        lines.append("\n")
    atomic_write_text(path, "".join(lines))
    return path


def load_reproducer(path: str) -> Reproducer:
    """Parse a corpus file back into metadata + module text."""
    with open(path) as handle:
        text = handle.read()
    meta: ReproducerMeta | None = None
    for line in text.splitlines():
        if line.startswith(_META_PREFIX):
            payload = json.loads(line[len(_META_PREFIX) :])
            payload.pop("version", None)
            payload["args"] = tuple(payload.get("args", ()))
            meta = ReproducerMeta(**payload)
            break
    if meta is None:
        raise ValueError(f"{path}: not a repro-fuzz reproducer (missing meta line)")
    return Reproducer(meta=meta, module_text=text, path=path)


def subject_for_reproducer(reproducer: Reproducer) -> Subject:
    """An oracle subject that replays the stored module text.

    Each ``fresh()`` call re-parses the text (pipelines mutate modules in
    place) and rebuilds the deterministic memory image the module's address
    constants point into.
    """
    meta = reproducer.meta

    def fresh():
        module = parse_module(reproducer.module_text, reproducer.path)
        verify_operation(module)
        memory, _ = build_memory(meta.backend, meta.memory_seed)
        return module, memory, list(meta.args)

    def fresh_memory():
        memory, _ = build_memory(meta.backend, meta.memory_seed)
        return memory, list(meta.args)

    return Subject(
        fresh=fresh,
        zero_trip_sites=meta.zero_trip_sites,
        name=f"replay:{reproducer.path or meta.backend}",
        fresh_memory=fresh_memory,
    )


def replay(path: str, pipelines=None) -> list[OracleFailure]:
    """Re-run a reproducer's oracles for its recorded pipeline.

    ``pipelines`` may extend/override the registered pipelines (e.g. to
    replay against a locally patched pass).  Returns the failures observed
    for the recorded pipeline — an empty list means the bug no longer
    reproduces.
    """
    from ..passes import PIPELINES

    reproducer = load_reproducer(path)
    available = dict(PIPELINES)
    if pipelines:
        available.update(pipelines)
    target = reproducer.meta.pipeline
    if target not in available:
        raise ValueError(
            f"{path}: recorded pipeline '{target}' is not registered; pass it "
            "via the pipelines argument"
        )
    needed = {
        name: available[name]
        for name in ("none", "baseline", target)
        if name in available
    }
    failures = check_subject(subject_for_reproducer(reproducer), needed)
    return [f for f in failures if f.pipeline == target]
