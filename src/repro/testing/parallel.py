"""Process-parallel sharded runs for the fuzz and experiment hot paths.

Sharding is by *seed range*: the fuzzer's program generation is a pure
function of ``(seed, backend, absolute_iteration)`` (see
:func:`repro.testing.fuzz.program_seed`), so splitting the iteration range
into contiguous shards and running each in its own process visits exactly
the same programs as a sequential run — shard boundaries cannot change what
is generated, only who generates it.  Workers write reproducers straight to
the shared corpus directory (file names embed the per-program seed, so
shards never collide) and return their :class:`FuzzReport`; the parent
merges reports in iteration order so the combined report is deterministic.

The same pool helper drives the experiment sweeps: one sweep point (one
matrix size) per worker task.

Everything here degrades gracefully: ``jobs=1`` (the default everywhere)
never touches ``multiprocessing``.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Sequence

from .corpus import DEFAULT_CORPUS_DIR
from .fuzz import FuzzReport, fuzz


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def parallel_map(fn: Callable, items: Iterable, jobs: int = 1) -> list:
    """``[fn(item) for item in items]``, fanned out over ``jobs`` processes.

    ``fn`` must be a module-level function (it is pickled by name).  Results
    come back in input order.  With ``jobs <= 1`` or fewer than two items
    the map runs in-process.
    """
    items = list(items)
    jobs = max(1, min(int(jobs), len(items)))
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with _pool_context().Pool(processes=jobs) as pool:
        return pool.map(fn, items)


def shard_ranges(total: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into up to ``jobs`` contiguous non-empty
    ``(start, count)`` shards, as evenly as possible."""
    jobs = max(1, min(int(jobs), total))
    base, extra = divmod(total, jobs)
    shards: list[tuple[int, int]] = []
    start = 0
    for index in range(jobs):
        count = base + (1 if index < extra else 0)
        if count:
            shards.append((start, count))
            start += count
    return shards


def _run_shard(payload: dict) -> FuzzReport:
    """One worker: run a contiguous slice of the iteration range."""
    from ..passes import PIPELINES

    names = payload.pop("pipeline_names")
    pipelines = (
        {name: PIPELINES[name] for name in names} if names is not None else None
    )
    return fuzz(pipelines=pipelines, **payload)


def fuzz_sharded(
    jobs: int = 1,
    seed: int = 0,
    iterations: int = 100,
    backends: tuple[str, ...] | None = None,
    pipeline_names: Sequence[str] | None = None,
    corpus_dir: str | None = DEFAULT_CORPUS_DIR,
    shrink: bool = True,
    max_stmts: int = 6,
    max_failures: int = 10,
    on_progress: Callable[[str], None] | None = None,
    engine: str = "trace",
) -> FuzzReport:
    """:func:`repro.testing.fuzz.fuzz`, sharded over ``jobs`` processes.

    Same findings as the sequential run (modulo the ``max_failures`` early
    stop, which each shard honors locally); pipelines are named rather than
    passed as factories so shards can be dispatched to worker processes.
    """
    shards = shard_ranges(iterations, jobs)
    pipeline_names = tuple(pipeline_names) if pipeline_names is not None else None
    if len(shards) <= 1:
        payload = {
            "seed": seed,
            "iterations": iterations,
            "backends": backends,
            "pipeline_names": pipeline_names,
            "corpus_dir": corpus_dir,
            "shrink": shrink,
            "max_stmts": max_stmts,
            "max_failures": max_failures,
            "engine": engine,
        }
        report = _run_shard(payload)
        report.jobs = 1
        return report

    payloads = [
        {
            "seed": seed,
            "iterations": count,
            "start_iteration": start,
            "backends": backends,
            "pipeline_names": pipeline_names,
            "corpus_dir": corpus_dir,
            "shrink": shrink,
            "max_stmts": max_stmts,
            "max_failures": max_failures,
            "engine": engine,
        }
        for start, count in shards
    ]
    reports = parallel_map(_run_shard, payloads, jobs=len(payloads))

    merged = FuzzReport(
        seed=seed,
        iterations=iterations,
        backends=reports[0].backends,
        pipelines=reports[0].pipelines,
        corpus_dir=corpus_dir,
        jobs=len(payloads),
    )
    for report in reports:
        merged.programs_run += report.programs_run
        merged.failures.extend(report.failures)
    merged.failures.sort(key=lambda f: (f.iteration, f.backend))
    del merged.failures[max_failures:]
    if on_progress:
        on_progress(
            f"... merged {len(reports)} shard(s): {merged.programs_run} "
            f"programs, {len(merged.failures)} failure(s)"
        )
    return merged
