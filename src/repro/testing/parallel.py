"""Process-parallel sharded runs for the fuzz and experiment hot paths.

Sharding is by *seed range*: the fuzzer's program generation is a pure
function of ``(seed, backend, absolute_iteration)`` (see
:func:`repro.testing.fuzz.program_seed`), so splitting the iteration range
into contiguous shards and running each in its own process visits exactly
the same programs as a sequential run — shard boundaries cannot change what
is generated, only who generates it.  Workers write reproducers straight to
the shared corpus directory (file names embed the per-program seed, so
shards never collide) and return their :class:`FuzzReport`; the parent
merges reports in iteration order so the combined report is deterministic.

The same pool helper drives the experiment sweeps: one sweep point (one
matrix size) per worker task.

Everything here degrades gracefully: ``jobs=1`` (the default everywhere)
never touches ``multiprocessing``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from typing import Callable, Iterable, Sequence

from .corpus import DEFAULT_CORPUS_DIR
from .fuzz import FuzzFailure, FuzzReport, fuzz
from .oracles import OracleFailure


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def parallel_map(fn: Callable, items: Iterable, jobs: int = 1) -> list:
    """``[fn(item) for item in items]``, fanned out over ``jobs`` processes.

    ``fn`` must be a module-level function (it is pickled by name).  Results
    come back in input order.  With ``jobs <= 1`` or fewer than two items
    the map runs in-process.
    """
    items = list(items)
    jobs = max(1, min(int(jobs), len(items)))
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with _pool_context().Pool(processes=jobs) as pool:
        return pool.map(fn, items)


def shard_ranges(total: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into up to ``jobs`` contiguous non-empty
    ``(start, count)`` shards, as evenly as possible."""
    jobs = max(1, min(int(jobs), total))
    base, extra = divmod(total, jobs)
    shards: list[tuple[int, int]] = []
    start = 0
    for index in range(jobs):
        count = base + (1 if index < extra else 0)
        if count:
            shards.append((start, count))
            start += count
    return shards


def _run_shard(payload: dict) -> FuzzReport:
    """One worker: run a contiguous slice of the iteration range."""
    from ..passes import PIPELINES

    names = payload.pop("pipeline_names")
    pipelines = (
        {name: PIPELINES[name] for name in names} if names is not None else None
    )
    return fuzz(pipelines=pipelines, **payload)


def _shard_worker(index: int, payload: dict, results) -> None:
    """Process entry point: run one shard, ship the report (or the error)
    back over the results queue.  A worker that dies before putting anything
    — hard crash, ``os._exit``, OOM kill — is detected by the parent via its
    exit code and surfaced as a ``worker-crash`` finding."""
    try:
        results.put((index, "ok", _run_shard(payload)))
    except KeyboardInterrupt:  # parent is tearing the run down
        raise
    except BaseException as error:  # noqa: BLE001 - report, don't vanish
        results.put((index, "error", f"{type(error).__name__}: {error}"))


def _collect_shard_outcomes(workers, results) -> dict[int, tuple]:
    """Wait for every worker to report or die; never hangs on a crash.

    On ``KeyboardInterrupt`` the workers are terminated and joined before
    the interrupt propagates, so ctrl-C leaves no orphan processes behind.
    """
    outcomes: dict[int, tuple] = {}
    polls_dead: dict[int, int] = {}
    try:
        while len(outcomes) < len(workers):
            try:
                index, status, value = results.get(timeout=0.2)
                outcomes[index] = (status, value)
                continue
            except queue_module.Empty:
                pass
            for index, worker in enumerate(workers):
                if index in outcomes or worker.exitcode is None:
                    continue
                # Dead without a result.  Give its result a few more poll
                # rounds to drain out of the queue's pipe buffer before
                # declaring the worker crashed.
                polls_dead[index] = polls_dead.get(index, 0) + 1
                if polls_dead[index] >= 5:
                    outcomes[index] = ("crash", worker.exitcode)
    except KeyboardInterrupt:
        for worker in workers:
            if worker.exitcode is None:
                worker.terminate()
        for worker in workers:
            worker.join()
        raise
    for worker in workers:
        worker.join()
    return outcomes


def fuzz_sharded(
    jobs: int = 1,
    seed: int = 0,
    iterations: int = 100,
    backends: tuple[str, ...] | None = None,
    pipeline_names: Sequence[str] | None = None,
    corpus_dir: str | None = DEFAULT_CORPUS_DIR,
    shrink: bool = True,
    max_stmts: int = 6,
    max_failures: int = 10,
    on_progress: Callable[[str], None] | None = None,
    engine: str = "trace",
    iteration_timeout: float | None = None,
    inject_hang: int | None = None,
    inject_crash: int | None = None,
) -> FuzzReport:
    """:func:`repro.testing.fuzz.fuzz`, sharded over ``jobs`` processes.

    Same findings as the sequential run (modulo the ``max_failures`` early
    stop, which each shard honors locally); pipelines are named rather than
    passed as factories so shards can be dispatched to worker processes.

    Workers are isolated: a shard whose process dies (crash, kill, hang
    beyond ``iteration_timeout`` escalating into ``inject_crash`` tests)
    becomes a ``worker-crash`` finding in the merged report instead of
    hanging or aborting the whole run, and ctrl-C tears every worker down
    before propagating.
    """
    shards = shard_ranges(iterations, jobs)
    pipeline_names = tuple(pipeline_names) if pipeline_names is not None else None

    def payload_for(start: int, count: int) -> dict:
        return {
            "seed": seed,
            "iterations": count,
            "start_iteration": start,
            "backends": backends,
            "pipeline_names": pipeline_names,
            "corpus_dir": corpus_dir,
            "shrink": shrink,
            "max_stmts": max_stmts,
            "max_failures": max_failures,
            "engine": engine,
            "iteration_timeout": iteration_timeout,
            "inject_hang": inject_hang,
            "inject_crash": inject_crash,
        }

    if len(shards) <= 1:
        report = _run_shard(payload_for(0, iterations))
        report.jobs = 1
        return report

    ctx = _pool_context()
    results = ctx.Queue()
    workers = [
        ctx.Process(
            target=_shard_worker,
            args=(index, payload_for(start, count), results),
        )
        for index, (start, count) in enumerate(shards)
    ]
    for worker in workers:
        worker.start()
    outcomes = _collect_shard_outcomes(workers, results)

    merged = FuzzReport(
        seed=seed,
        iterations=iterations,
        backends=tuple(backends or ()),
        pipelines=pipeline_names or (),
        corpus_dir=corpus_dir,
        jobs=len(shards),
    )
    for index, (start, count) in enumerate(shards):
        status, value = outcomes[index]
        if status == "ok":
            merged.backends = value.backends
            merged.pipelines = value.pipelines
            merged.programs_run += value.programs_run
            merged.failures.extend(value.failures)
            continue
        span = f"iterations {start}..{start + count - 1}"
        message = (
            f"worker for shard {index} ({span}) died with exit code {value}"
            if status == "crash"
            else f"worker for shard {index} ({span}) failed: {value}"
        )
        merged.failures.append(
            FuzzFailure(
                backend="*",
                iteration=start,
                program_seed=-1,
                failure=OracleFailure(
                    oracle="worker-crash", pipeline="*", message=message
                ),
            )
        )
    merged.failures.sort(key=lambda f: (f.iteration, f.backend))
    del merged.failures[max_failures:]
    if on_progress:
        on_progress(
            f"... merged {len(shards)} shard(s): {merged.programs_run} "
            f"programs, {len(merged.failures)} failure(s)"
        )
    return merged
