"""repro.testing — the shipped correctness-tooling subsystem.

A generative differential-execution harness guarding the paper's central
claim: the accfg passes eliminate configuration overhead *without changing
program semantics* (Section 5), at a cost the roofline accounting predicts
(Section 4).  Five pieces:

* :mod:`repro.testing.generator` — typed random-program generation over
  per-backend profiles (Gemmini, OpenGeMM, toyvec): nested control flow,
  multi-accelerator modules, partial setup writes relying on register
  retention; plus the promoted hypothesis strategies the property tests use;
* :mod:`repro.testing.oracles` — the differential oracles: functional
  equivalence, timing-never-worse, and lint cleanliness for every
  registered pass pipeline;
* :mod:`repro.testing.shrink` — greedy structural test-case minimization;
* :mod:`repro.testing.corpus` — self-contained ``.mlir`` reproducers with
  replay (``python -m repro fuzz --replay``);
* :mod:`repro.testing.fuzz` / :mod:`repro.testing.selftest` — the seeded
  fuzz driver behind ``python -m repro fuzz`` and the broken-pass selftest
  that proves the oracles can fire.
"""

from .corpus import (
    DEFAULT_CORPUS_DIR,
    Reproducer,
    ReproducerMeta,
    load_reproducer,
    replay,
    subject_for_reproducer,
    write_reproducer,
)
from .fuzz import FuzzFailure, FuzzReport, fuzz, program_seed
from .generator import (
    PROFILES,
    BackendProfile,
    Branch,
    BufferPool,
    BuiltFuzzProgram,
    FieldOption,
    FieldWrite,
    Invoke,
    Loop,
    ProgramSpec,
    ZERO_TRIPS,
    build_memory,
    build_spec,
    generate_spec,
    walk_invokes,
)
from .oracles import (
    BASELINE_PIPELINES,
    OracleFailure,
    RunOutcome,
    Subject,
    check_subject,
    run_one,
    subject_for_spec,
    timing_slack,
)
from .parallel import fuzz_sharded, parallel_map, shard_ranges
from .selftest import BrokenDedupPass, SelftestResult, broken_dedup_pipeline, run_selftest
from .shrink import shrink_candidates, shrink_spec

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "Reproducer",
    "ReproducerMeta",
    "load_reproducer",
    "replay",
    "subject_for_reproducer",
    "write_reproducer",
    "FuzzFailure",
    "FuzzReport",
    "fuzz",
    "fuzz_sharded",
    "parallel_map",
    "shard_ranges",
    "program_seed",
    "PROFILES",
    "BackendProfile",
    "Branch",
    "BufferPool",
    "BuiltFuzzProgram",
    "FieldOption",
    "FieldWrite",
    "Invoke",
    "Loop",
    "ProgramSpec",
    "ZERO_TRIPS",
    "build_memory",
    "build_spec",
    "generate_spec",
    "walk_invokes",
    "BASELINE_PIPELINES",
    "OracleFailure",
    "RunOutcome",
    "Subject",
    "check_subject",
    "run_one",
    "subject_for_spec",
    "timing_slack",
    "BrokenDedupPass",
    "SelftestResult",
    "broken_dedup_pipeline",
    "run_selftest",
    "shrink_candidates",
    "shrink_spec",
]
