"""Typed random accfg program generation.

Two generators live here:

* the **fuzz generator** — a seeded (``random.Random``) generator of typed
  program specs (:class:`ProgramSpec`) covering the full dialect surface:
  nested ``scf.for``/``scf.if``, multi-accelerator modules, and partial
  setup-field writes that rely on configuration-register retention.  It is
  parameterized over backend profiles for all three targets (Gemmini,
  OpenGeMM, toyvec) and powers ``python -m repro fuzz``;
* the **property generator** — the hypothesis strategies originally grown in
  ``tests/properties/program_gen.py`` (toyvec only, straight-line plus one
  loop level), kept source-compatible so the existing property tests keep
  passing unchanged.  Hypothesis is imported lazily so the shipped package
  never requires it at import time.

Every generated program is *valid by construction*: field values are drawn
from per-backend choice tables (buffer addresses of pre-allocated regions,
legal sizes, legal op codes), so a functional run can never fault on memory
and any observed divergence is attributable to the pass under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

import numpy as np

from ..ir import i1, i64, index
from ..sim.memory import Buffer, Memory
from ..workloads import build_function, new_module
from ..workloads.irgen import IRGen

if TYPE_CHECKING:  # pragma: no cover
    from ..dialects.builtin import ModuleOp
    from ..ir.ssa import SSAValue

# ---------------------------------------------------------------------------
# Backend profiles: what a valid program for each target looks like
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BufferPool:
    """A family of same-shaped simulated-memory regions."""

    label: str
    count: int
    shape: tuple[int, int]  # rows x cols
    dtype: str  # "int8" | "int32"
    fill: str = "random"  # "random" | "zero"


@dataclass(frozen=True)
class FieldOption:
    """The legal values one configuration field may take.

    ``pool`` draws buffer base addresses from the named pool (optionally with
    a leading literal 0, e.g. Gemmini's "no bias" D pointer); ``values`` are
    literal choices.  ``dynamic_mod > 0`` marks small enum-like fields whose
    value may also be *computed* from the innermost loop induction variable
    (``(iv + c) mod dynamic_mod``), exercising calc categorization and the
    not-loop-invariant guards of the hoisting passes.
    """

    name: str
    pool: str | None = None
    include_zero: bool = False
    values: tuple[int, ...] = ()
    dynamic_mod: int = 0


@dataclass(frozen=True)
class BackendProfile:
    """Everything the generator needs to emit valid programs for one target."""

    name: str
    accelerators: tuple[str, ...]  # first entry is the primary target
    pools: tuple[BufferPool, ...]
    options: dict[str, tuple[FieldOption, ...]]  # accelerator -> fields


_VEC_LEN = 16
_MAT = 64

_TOYVEC_POOLS = (
    BufferPool("vec_in", 3, (1, _VEC_LEN), "int32"),
    BufferPool("vec_out", 2, (1, _VEC_LEN), "int32", fill="zero"),
)

_TOYVEC_OPTIONS: tuple[FieldOption, ...] = (
    FieldOption("ptr_x", pool="vec_in"),
    FieldOption("ptr_y", pool="vec_in"),
    FieldOption("ptr_out", pool="vec_out"),
    FieldOption("n", values=(4, 8, _VEC_LEN)),
    FieldOption("op", values=(0, 1, 2), dynamic_mod=3),
)

_GEMMINI_POOLS = (
    BufferPool("mat_a", 2, (_MAT, _MAT), "int8"),
    BufferPool("mat_b", 2, (_MAT, _MAT), "int8"),
    BufferPool("mat_d", 1, (_MAT, _MAT), "int32"),
    BufferPool("mat_c", 2, (_MAT, _MAT), "int32", fill="zero"),
)

_GEMMINI_OPTIONS: tuple[FieldOption, ...] = (
    FieldOption("A", pool="mat_a"),
    FieldOption("B", pool="mat_b"),
    FieldOption("D", pool="mat_d", include_zero=True),
    FieldOption("C", pool="mat_c"),
    FieldOption("I", values=(1, 2)),
    FieldOption("J", values=(1, 2)),
    FieldOption("K", values=(1, 2)),
    FieldOption("pad_I", values=(0,)),
    FieldOption("pad_J", values=(0,)),
    FieldOption("pad_K", values=(0,)),
    FieldOption("stride_A", values=(_MAT,)),
    FieldOption("stride_B", values=(_MAT,)),
    FieldOption("stride_D", values=(_MAT,)),
    FieldOption("stride_C", values=(_MAT,)),
    FieldOption("act", values=(0, 1), dynamic_mod=2),
)

_OPENGEMM_POOLS = (
    BufferPool("og_a", 2, (_MAT, _MAT), "int8"),
    BufferPool("og_b", 2, (_MAT, _MAT), "int8"),
    BufferPool("og_c", 2, (_MAT, _MAT), "int32", fill="zero"),
)

_OPENGEMM_OPTIONS: tuple[FieldOption, ...] = (
    FieldOption("M", values=(8, 16, 24)),
    FieldOption("K", values=(8, 16, 24)),
    FieldOption("N", values=(8, 16, 24)),
    FieldOption("ptr_A", pool="og_a"),
    FieldOption("ptr_B", pool="og_b"),
    FieldOption("ptr_C", pool="og_c"),
    FieldOption("stride_A", values=(_MAT,)),
    FieldOption("stride_B", values=(_MAT,)),
    FieldOption("stride_C", values=(_MAT,)),
    FieldOption("subtractions", values=(0, 1, 2), dynamic_mod=3),
    FieldOption("tbound0_A", values=(8,)),
    FieldOption("tstride0_A", values=(1,)),
    FieldOption("sstride_A", values=(1,)),
    FieldOption("tbound0_B", values=(8,)),
    FieldOption("tbound0_C", values=(8,)),
)

#: The three backend profiles of the evaluation.  Each non-toyvec profile
#: also carries the toy vector engine as a secondary device so fuzzing
#: exercises true multi-accelerator modules (independent state chains,
#: cross-device overlap) on every backend.
PROFILES: dict[str, BackendProfile] = {
    "toyvec": BackendProfile(
        name="toyvec",
        accelerators=("toyvec", "toyvec-seq", "toyvec-queued"),
        pools=_TOYVEC_POOLS,
        options={
            "toyvec": _TOYVEC_OPTIONS,
            "toyvec-seq": _TOYVEC_OPTIONS,
            "toyvec-queued": _TOYVEC_OPTIONS,
        },
    ),
    "gemmini": BackendProfile(
        name="gemmini",
        accelerators=("gemmini", "toyvec"),
        pools=(*_GEMMINI_POOLS, *_TOYVEC_POOLS),
        options={"gemmini": _GEMMINI_OPTIONS, "toyvec": _TOYVEC_OPTIONS},
    ),
    "opengemm": BackendProfile(
        name="opengemm",
        accelerators=("opengemm", "toyvec"),
        pools=(*_OPENGEMM_POOLS, *_TOYVEC_POOLS),
        options={"opengemm": _OPENGEMM_OPTIONS, "toyvec": _TOYVEC_OPTIONS},
    ),
}


# ---------------------------------------------------------------------------
# Program specs: a typed AST the shrinker can transform structurally
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldWrite:
    """One field of a partial setup: ``choice`` indexes the option's legal
    values; ``dynamic`` derives the value from the loop induction variable
    instead (only honored for ``dynamic_mod`` fields inside a loop)."""

    name: str
    choice: int
    dynamic: bool = False


@dataclass(frozen=True)
class Invoke:
    """One setup (optionally + launch + await) with a subset of fields."""

    accelerator: str
    fields: tuple[FieldWrite, ...]
    launch: bool = True


@dataclass(frozen=True)
class Loop:
    """``scf.for``; ``trips == ZERO_TRIPS`` emits an opaque zero-trip loop
    (upper bound is a runtime argument that is always 0), so hoisting guards
    stay exercised."""

    trips: int
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Branch:
    """``scf.if %cond`` on the opaque runtime condition argument."""

    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()


Stmt = Union[Invoke, Loop, Branch]

#: Sentinel trip count for a loop whose bound is the opaque runtime zero.
ZERO_TRIPS = -1


@dataclass(frozen=True)
class ProgramSpec:
    """A complete generated program for one backend."""

    backend: str
    stmts: tuple[Stmt, ...]
    cond_value: bool = True

    def count_invokes(self) -> int:
        return sum(1 for _ in walk_invokes(self.stmts))

    def zero_trip_sites(self) -> int:
        def count(stmts: tuple[Stmt, ...]) -> int:
            total = 0
            for stmt in stmts:
                if isinstance(stmt, Loop):
                    total += (stmt.trips == ZERO_TRIPS) + count(stmt.body)
                elif isinstance(stmt, Branch):
                    total += count(stmt.then) + count(stmt.orelse)
            return total

        return count(self.stmts)


def walk_invokes(stmts: tuple[Stmt, ...]):
    for stmt in stmts:
        if isinstance(stmt, Invoke):
            yield stmt
        elif isinstance(stmt, Loop):
            yield from walk_invokes(stmt.body)
        elif isinstance(stmt, Branch):
            yield from walk_invokes(stmt.then)
            yield from walk_invokes(stmt.orelse)


# ---------------------------------------------------------------------------
# Seeded generation
# ---------------------------------------------------------------------------


def generate_spec(
    rng: random.Random,
    backend: str,
    max_stmts: int = 6,
    max_depth: int = 2,
) -> ProgramSpec:
    """Draw one random-but-valid program spec for ``backend``."""
    profile = PROFILES[backend]

    def gen_invoke() -> Invoke:
        # The primary target dominates; secondaries keep multi-accelerator
        # interleavings in the mix.
        if rng.random() < 0.65 or len(profile.accelerators) == 1:
            accelerator = profile.accelerators[0]
        else:
            accelerator = rng.choice(profile.accelerators[1:])
        options = profile.options[accelerator]
        count = rng.randint(0, min(4, len(options)))
        chosen = rng.sample(range(len(options)), count)
        fields = []
        for option_index in sorted(chosen):
            option = options[option_index]
            n_choices = len(option.values) + (
                _pool_count(profile, option.pool) if option.pool else 0
            ) + (1 if option.include_zero else 0)
            dynamic = bool(option.dynamic_mod) and rng.random() < 0.3
            fields.append(
                FieldWrite(option.name, rng.randrange(max(1, n_choices)), dynamic)
            )
        return Invoke(accelerator, tuple(fields), launch=rng.random() < 0.75)

    def gen_stmts(budget: int, depth: int) -> tuple[Stmt, ...]:
        stmts: list[Stmt] = []
        n = rng.randint(1, max(1, budget))
        for _ in range(n):
            roll = rng.random()
            if depth < max_depth and roll < 0.18:
                trips = rng.choice([ZERO_TRIPS, 1, 2, 3])
                stmts.append(Loop(trips, gen_stmts(max(1, budget // 2), depth + 1)))
            elif depth < max_depth and roll < 0.36:
                then = gen_stmts(max(1, budget // 2), depth + 1)
                orelse = (
                    gen_stmts(max(1, budget // 3), depth + 1)
                    if rng.random() < 0.4
                    else ()
                )
                stmts.append(Branch(then, orelse))
            else:
                stmts.append(gen_invoke())
        return tuple(stmts)

    return ProgramSpec(
        backend=backend,
        stmts=gen_stmts(max_stmts, 0),
        cond_value=rng.random() < 0.5,
    )


def _pool_count(profile: BackendProfile, label: str | None) -> int:
    for pool in profile.pools:
        if pool.label == label:
            return pool.count
    raise KeyError(f"profile '{profile.name}' has no buffer pool '{label}'")


# ---------------------------------------------------------------------------
# Building: memory image + IR emission
# ---------------------------------------------------------------------------

_DTYPES = {"int8": np.int8, "int32": np.int32}

#: (backend, memory_seed) -> the generated buffer contents, in allocation
#: order (None = zero-filled).  The oracles rebuild the same image several
#: times per fuzzed program (one per executed pipeline plus the
#: trace-vs-tree cross-check); copying cached arrays is a memcpy where
#: regenerating them pays RNG setup and sampling.  Entries for past
#: programs are useless, so the cache stays tiny.
_IMAGE_CACHE: dict[tuple[str, int], list["np.ndarray | None"]] = {}


def build_memory(
    backend: str, memory_seed: int = 0
) -> tuple[Memory, dict[str, list[Buffer]]]:
    """A fresh, deterministic memory image for ``backend``.

    Buffer addresses depend only on the profile (allocation order and
    alignment), and contents only on ``memory_seed`` — which is what makes
    textual ``.mlir`` reproducers self-contained: replaying rebuilds an
    identical image from ``(backend, memory_seed)`` alone.
    """
    profile = PROFILES[backend]
    key = (backend, memory_seed)
    arrays = _IMAGE_CACHE.get(key)
    if arrays is None:
        from ..engine.cache import active_persistent_store

        store = active_persistent_store()
        if store is not None:
            loaded = store.load("image", f"{backend}-{memory_seed}")
            if isinstance(loaded, list):
                arrays = loaded
        if arrays is None:
            rng = np.random.default_rng(memory_seed)
            arrays = []
            for pool in profile.pools:
                dtype = _DTYPES[pool.dtype]
                for _ in range(pool.count):
                    if pool.fill == "zero":
                        arrays.append(None)
                    else:
                        arrays.append(
                            rng.integers(-20, 20, pool.shape).astype(dtype)
                        )
            if store is not None:
                store.save("image", f"{backend}-{memory_seed}", arrays)
        if len(_IMAGE_CACHE) >= 16:
            _IMAGE_CACHE.clear()
        _IMAGE_CACHE[key] = arrays
    memory = Memory()
    pools: dict[str, list[Buffer]] = {}
    index = 0
    for pool in profile.pools:
        dtype = _DTYPES[pool.dtype]
        buffers = []
        for _ in range(pool.count):
            array = arrays[index]
            index += 1
            if array is None:
                buffers.append(memory.alloc(pool.shape, dtype))
            else:
                buffers.append(memory.place(array.copy()))
        pools[pool.label] = buffers
    return memory, pools


@dataclass
class BuiltFuzzProgram:
    """A spec lowered to IR plus the memory image it runs against."""

    spec: ProgramSpec
    module: "ModuleOp"
    memory: Memory
    pools: dict[str, list[Buffer]]
    args: list[int] = field(default_factory=list)

    @property
    def zero_trip_sites(self) -> int:
        return self.spec.zero_trip_sites()


def _option_for(profile: BackendProfile, accelerator: str, name: str) -> FieldOption:
    for option in profile.options[accelerator]:
        if option.name == name:
            return option
    raise KeyError(f"accelerator '{accelerator}' has no generated field '{name}'")


def _static_value(
    option: FieldOption, choice: int, pools: dict[str, list[Buffer]]
) -> int:
    choices: list[int] = []
    if option.include_zero:
        choices.append(0)
    if option.pool is not None:
        choices.extend(buffer.addr for buffer in pools[option.pool])
    choices.extend(option.values)
    return choices[choice % len(choices)]


def build_spec(spec: ProgramSpec, memory_seed: int = 0) -> BuiltFuzzProgram:
    """Emit the IR module for ``spec`` over a fresh memory image."""
    profile = PROFILES[spec.backend]
    memory, pools = build_memory(spec.backend, memory_seed)
    module = new_module()

    with build_function(module, "main", input_types=[i1, index]) as (gen, args):
        cond, rt_zero = args
        # A full initial configuration per accelerator, so later partial
        # updates always act on defined registers (register retention).
        for accelerator in profile.accelerators:
            gen.setup(
                accelerator,
                [
                    (option.name, gen.const(_static_value(option, 0, pools), i64))
                    for option in profile.options[accelerator]
                ],
            )
        zero = gen.const(0)
        one = gen.const(1)

        def emit_invoke(gen: IRGen, invoke: Invoke, iv: "SSAValue | None") -> None:
            fields = []
            for write in invoke.fields:
                option = _option_for(profile, invoke.accelerator, write.name)
                if write.dynamic and option.dynamic_mod and iv is not None:
                    # value = (iv + choice) mod m — loop-variant on purpose.
                    shifted = gen.add(iv, gen.const(write.choice))
                    value = gen.rem(shifted, gen.const(option.dynamic_mod))
                else:
                    value = gen.const(_static_value(option, write.choice, pools), i64)
                fields.append((write.name, value))
            state = gen.setup(invoke.accelerator, fields)
            if invoke.launch:
                gen.await_(gen.launch(state))

        def emit_stmts(
            gen: IRGen, stmts: tuple[Stmt, ...], iv: "SSAValue | None"
        ) -> None:
            from ..dialects import scf
            from ..ir.builder import Builder

            for stmt in stmts:
                if isinstance(stmt, Invoke):
                    emit_invoke(gen, stmt, iv)
                elif isinstance(stmt, Loop):
                    ub = (
                        rt_zero
                        if stmt.trips == ZERO_TRIPS
                        else gen.const(stmt.trips)
                    )
                    with gen.loop(zero, ub, one) as (_, inner_iv):
                        emit_stmts(gen, stmt.body, inner_iv)
                elif isinstance(stmt, Branch):
                    from ..ir.block import Block

                    if_op = gen.builder.insert(
                        scf.IfOp.create(
                            cond,
                            else_block=Block() if stmt.orelse else None,
                        )
                    )
                    then_gen = IRGen(Builder.at_end(if_op.then_block))
                    emit_stmts(then_gen, stmt.then, iv)
                    then_gen.builder.insert(scf.YieldOp.create())
                    if stmt.orelse:
                        else_gen = IRGen(Builder.at_end(if_op.else_block))
                        emit_stmts(else_gen, stmt.orelse, iv)
                        else_gen.builder.insert(scf.YieldOp.create())

        emit_stmts(gen, spec.stmts, None)

    return BuiltFuzzProgram(
        spec=spec,
        module=module,
        memory=memory,
        pools=pools,
        args=[int(spec.cond_value), 0],
    )


# ---------------------------------------------------------------------------
# The promoted property-test generator (toyvec, hypothesis-based)
# ---------------------------------------------------------------------------

VECTOR_LENGTH = 16
FIELD_NAMES = ("ptr_x", "ptr_y", "ptr_out", "n", "op")


@dataclass(frozen=True)
class Invocation:
    """One setup(+launch+await) with a subset of fields."""

    fields: tuple[tuple[str, int], ...]  # name -> symbolic value index
    launch: bool
    # 0 = straight-line; >0 = loop with that many trips; -1 = a loop whose
    # bounds make it execute ZERO times (registers must stay untouched).
    loop_trips: int
    guarded: bool = False  # wrapped in `scf.if %cond`
    accelerator: str = "toyvec"  # or the sequential twin "toyvec-seq"


@dataclass
class GeneratedProgram:
    invocations: tuple[Invocation, ...]
    cond_value: bool = True  # runtime value of the opaque branch condition


def invocations():
    """Hypothesis strategy for one :class:`Invocation` (lazy import)."""
    from hypothesis import strategies as st

    @st.composite
    def _invocations(draw) -> Invocation:
        chosen = draw(
            st.lists(
                st.sampled_from(FIELD_NAMES), min_size=0, max_size=5, unique=True
            )
        )
        fields = tuple(
            (name, draw(st.integers(min_value=0, max_value=2))) for name in chosen
        )
        launch = draw(st.booleans())
        loop_trips = draw(st.sampled_from([0, 0, 0, 1, 2, 3, -1]))
        guarded = draw(st.sampled_from([False, False, False, True]))
        accelerator = draw(st.sampled_from(["toyvec", "toyvec", "toyvec-seq"]))
        return Invocation(fields, launch, loop_trips, guarded, accelerator)

    return _invocations()


def programs():
    """Hypothesis strategy for whole :class:`GeneratedProgram` values."""
    from hypothesis import strategies as st

    return st.builds(
        GeneratedProgram,
        st.lists(invocations(), min_size=1, max_size=6).map(tuple),
        st.booleans(),
    )


@dataclass
class BuiltProgram:
    module: object
    memory: Memory
    buffers: list
    out_buffers: list


def build(program: GeneratedProgram, seed: int = 0) -> BuiltProgram:
    """Emit the IR for a generated program, with a fresh memory image."""
    memory = Memory()
    rng = np.random.default_rng(seed)
    buffers = [
        memory.place(rng.integers(-100, 100, VECTOR_LENGTH, dtype=np.int32))
        for _ in range(2)
    ]
    out_buffers = [memory.alloc(VECTOR_LENGTH, np.int32) for _ in range(2)]
    module = new_module()

    def field_value(gen: IRGen, name: str, value_index: int) -> object:
        if name == "ptr_x" or name == "ptr_y":
            return gen.const(buffers[value_index % len(buffers)].addr, i64)
        if name == "ptr_out":
            return gen.const(out_buffers[value_index % len(out_buffers)].addr, i64)
        if name == "n":
            return gen.const((4, 8, VECTOR_LENGTH)[value_index % 3], i64)
        return gen.const(value_index % 3, i64)  # op

    # main(%cond : i1, %rt_zero : index) — %rt_zero is always 0 at runtime
    # but opaque to the optimizer (used as a zero-trip loop bound).
    with build_function(module, "main", input_types=[i1, index]) as (gen, args):
        (cond, rt_zero) = args
        # A safe initial full configuration (per accelerator) so partial
        # updates always act on defined registers.
        for accel in ("toyvec", "toyvec-seq"):
            gen.setup(
                accel,
                [
                    ("ptr_x", gen.const(buffers[0].addr, i64)),
                    ("ptr_y", gen.const(buffers[1].addr, i64)),
                    ("ptr_out", gen.const(out_buffers[0].addr, i64)),
                    ("n", gen.const(VECTOR_LENGTH, i64)),
                    ("op", gen.const(0, i64)),
                ],
            )
        zero = gen.const(0)
        one = gen.const(1)
        for invocation in program.invocations:
            def emit_body(gen: IRGen) -> None:
                fields = [
                    (name, field_value(gen, name, value_index))
                    for name, value_index in invocation.fields
                ]
                inner = gen.setup(invocation.accelerator, fields)
                if invocation.launch:
                    token = gen.launch(inner)
                    gen.await_(token)

            def emit_maybe_looped(gen: IRGen) -> None:
                if invocation.loop_trips == -1:
                    # A zero-trip loop: ub = the opaque runtime zero, so the
                    # optimizer cannot prove the trip count and the hoisting
                    # guards stay exercised.
                    with gen.loop(zero, rt_zero, one):
                        emit_body(gen)
                elif invocation.loop_trips:
                    trips = gen.const(invocation.loop_trips)
                    with gen.loop(zero, trips, one):
                        emit_body(gen)
                else:
                    emit_body(gen)

            if invocation.guarded:
                from ..dialects import scf
                from ..ir.builder import Builder

                if_op = gen.builder.insert(scf.IfOp.create(cond))
                inner_gen = IRGen(Builder.at_end(if_op.then_block))
                emit_maybe_looped(inner_gen)
                inner_gen.builder.insert(scf.YieldOp.create())
            else:
                emit_maybe_looped(gen)
    return BuiltProgram(module, memory, buffers, out_buffers)


def golden_result(program: GeneratedProgram, seed: int = 0) -> list[np.ndarray]:
    """Reference semantics: simulate the register file in plain Python."""
    built = build(program, seed)  # fresh image, never executed
    memory = built.memory
    register_files = {
        accel: {
            "ptr_x": built.buffers[0].addr,
            "ptr_y": built.buffers[1].addr,
            "ptr_out": built.out_buffers[0].addr,
            "n": VECTOR_LENGTH,
            "op": 0,
        }
        for accel in ("toyvec", "toyvec-seq")
    }

    def value_of(name: str, value_index: int) -> int:
        if name in ("ptr_x", "ptr_y"):
            return built.buffers[value_index % 2].addr
        if name == "ptr_out":
            return built.out_buffers[value_index % 2].addr
        if name == "n":
            return (4, 8, VECTOR_LENGTH)[value_index % 3]
        return value_index % 3

    def do_launch(registers: dict) -> None:
        n = registers["n"]
        x = memory.read_matrix(registers["ptr_x"], 1, n, n, np.int32)[0]
        y = memory.read_matrix(registers["ptr_y"], 1, n, n, np.int32)[0]
        op = registers["op"]
        out = x + y if op == 0 else x * y if op == 1 else np.maximum(x, y)
        memory.write_matrix(registers["ptr_out"], out.reshape(1, n), n)

    for invocation in program.invocations:
        if invocation.guarded and not program.cond_value:
            continue
        if invocation.loop_trips == -1:
            continue  # a zero-trip loop never runs its body
        registers = register_files[invocation.accelerator]
        trips = invocation.loop_trips if invocation.loop_trips else 1
        for _ in range(trips):
            for name, value_index in invocation.fields:
                registers[name] = value_of(name, value_index)
            if invocation.launch:
                do_launch(registers)
    return [buf.array.copy() for buf in built.out_buffers]
