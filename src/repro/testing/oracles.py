"""Differential equivalence oracles.

A :class:`Subject` is a program under test: a factory that produces a *fresh*
``(module, memory, args)`` triple on every call (pass pipelines mutate
modules in place, so each pipeline runs against its own build).  For every
registered pipeline, :func:`check_subject` asserts three things the paper
claims its optimizations guarantee:

* **functional** — function results, final memory image, and per-device
  launch counts match the unoptimized (``none``) run bit-exactly
  (Section 5: the passes never change program semantics);
* **timing** — optimized total cycles never materially exceed the
  cleanups-only ``baseline`` run (Eq. 2/3 accounting: removing configuration
  work cannot slow the program down).  A small additive slack covers the
  ``lb < ub`` guards hoisting inserts around possibly-zero-trip loops, and
  the comparison is skipped for the baseline pipelines themselves;
* **lint** — pipelines never *introduce* error-severity ACCFG diagnostics
  (reusing :mod:`repro.analysis`, the same gate as
  ``PassManager(lint=True)``).

A fourth oracle, **static-cost**, holds the static cost engine
(:mod:`repro.analysis.cost`) to the simulator on every executed run: the
symbolic prediction of instruction counts, configuration bytes, and launch
counts — evaluated at the run's concrete arguments — must *bound* what the
simulator measured, and on programs whose trip counts the engine resolves
exactly the bounds collapse to equality.  Programs containing ops the
engine does not model are skipped (the model makes no claim about them).

Any crash while optimizing or executing is reported as a ``crash``
oracle finding; ``trace-vs-tree`` cross-checks the trace-compiled
execution engine against the reference tree interpreter (see *Engines*
below).  A ``driver-divergence`` oracle activates under
``REPRO_REWRITE_DRIVER=both``: every pipeline is replayed on a fresh clone
with the legacy sweep pattern driver and both optimized modules must have
identical structural keys — the worklist driver's normal form is the sweep
driver's normal form, on every fuzzed program.

Hot-path structure
------------------

``check_subject`` builds and verifies the subject **once**, then clones the
module per pipeline (cloning is far cheaper than rebuilding, and dodges the
41%-of-wall re-verification the old build-per-pipeline flow paid).
Pipelines run with per-pass verification off and a single post-pipeline
verify; when that verify fails, the pipeline is re-run on a fresh clone with
per-pass verification to attribute the corruption to the offending pass.
Optimized modules are then keyed by :func:`repro.ir.structural_key` (an
exact, hashable structural key — no text formatting or hashing): distinct
pipelines routinely converge to identical IR, and key hits skip execution
and linting entirely — the key is also handed to the engine's
compiled-trace cache so the module is never serialized twice.

Engines
-------

``engine`` selects how modules execute:

* ``"tree"``  — the reference tree-walking interpreter only;
* ``"trace"`` (default) — the trace-compiled engine (:mod:`repro.engine`),
  with the unoptimized run of every subject *also* executed by the tree
  interpreter and compared bit-for-bit (results, memory image, launch
  counts, instruction trace, timeline spans, total cycles) — any mismatch
  is a ``trace-vs-tree`` failure;
* ``"both"``  — cross-check every pipeline's run, not just ``none``;
* ``"batch"`` — like ``"trace"``, plus a ``batch-vs-scalar`` oracle on
  every trace-executed run: the module is re-run through the lockstep batch
  executor (:mod:`repro.engine.batch`) on two lanes — the subject's own
  ``(memory, args)`` and a control-flow-flipped sibling — and each lane
  must match an independent scalar run bit-for-bit (results, memory image,
  launch counts, total cycles, and exact error strings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from ..analysis import error_code_counts, run_lints
from ..interp import run_module
from ..ir import structural_key, verify_operation
from ..ir.rewriter import active_driver, use_driver
from ..passes import PIPELINES, PassManager
from ..sim import CoSimulator
from ..sim.memory import Memory, MemorySnapshot
from .generator import ProgramSpec, build_memory, build_spec

#: Pipelines that make no faster-than-baseline promise: the timing oracle
#: does not apply to them.  ``volatile-baseline`` deliberately withholds LICM
#: and ``licm`` withholds CSE — each runs a strict subset of ``baseline``'s
#: cleanups, so either may legitimately be slower than it.
BASELINE_PIPELINES = frozenset({"none", "baseline", "volatile-baseline", "licm"})

#: Multiplicative tolerance of the timing oracle.
TIMING_EPSILON = 0.001

#: The error-severity lint rules (ACCFG002 double-await, ACCFG003
#: use-after-reset, ACCFG004/005 linearity).  The lint oracle compares
#: error counts only, so oracle runs skip the warning-only rules — the
#: diagnostics they would add are filtered out by ``error_code_counts``
#: anyway.
ERROR_LINT_CODES = frozenset({"ACCFG002", "ACCFG003", "ACCFG004", "ACCFG005"})

#: Default execution engine for oracle runs (see module docstring).
DEFAULT_ENGINE = "trace"

ENGINES = ("tree", "trace", "both", "batch")


@dataclass(frozen=True)
class OracleFailure:
    """One oracle violation for one pipeline."""

    #: "functional" | "timing" | "lint" | "static-cost" | "crash"
    #: | "trace-vs-tree" | "batch-vs-scalar" | "driver-divergence"
    oracle: str
    pipeline: str
    message: str

    def format(self) -> str:
        return f"[{self.oracle}] pipeline '{self.pipeline}': {self.message}"


@dataclass
class RunOutcome:
    """Everything one (build, optimize, execute) run observed."""

    results: list[int]
    image: MemorySnapshot | list[np.ndarray]
    total_cycles: float
    launch_counts: dict[str, int]
    lint_errors: dict[str, int]


@dataclass
class Subject:
    """A program under differential test.

    ``fresh()`` must return an independent build each time: a verified
    module, the memory image it references, and the ``main`` arguments.
    ``fresh_memory()``, when provided, rebuilds just the ``(memory, args)``
    pair — the fast path for re-executing an already-optimized module
    without rebuilding its IR; without it the oracles fall back to
    ``fresh()`` and discard the module.
    """

    fresh: Callable[[], tuple[object, Memory, list[int]]]
    zero_trip_sites: int = 0
    name: str = "<subject>"
    fresh_memory: Callable[[], tuple[Memory, list[int]]] | None = None


def subject_for_spec(spec: ProgramSpec, memory_seed: int = 0) -> Subject:
    """Wrap a generated program spec as an oracle subject."""

    def fresh():
        built = build_spec(spec, memory_seed)
        return built.module, built.memory, built.args

    def fresh_memory():
        # Addresses and contents are a pure function of (backend,
        # memory_seed); building the module is not needed to rebuild them.
        memory, _ = build_memory(spec.backend, memory_seed)
        return memory, [int(spec.cond_value), 0]

    return Subject(
        fresh=fresh,
        zero_trip_sites=spec.zero_trip_sites(),
        name=f"spec:{spec.backend}",
        fresh_memory=fresh_memory,
    )


def _fresh_memory(subject: Subject) -> tuple[Memory, list[int]]:
    if subject.fresh_memory is not None:
        return subject.fresh_memory()
    _module, memory, args = subject.fresh()
    return memory, args


def _pass_state_key(pass_) -> tuple | None:
    """A hashable fingerprint of a pass's behavior, or None when opaque.

    Two passes with equal keys are the same class in the same configuration,
    so they transform any given module identically — the property pipeline
    prefix sharing rests on.  Any attribute we cannot fingerprint faithfully
    (callables, IR references, ...) disables sharing for that pass.
    """
    items: list[tuple] = []
    for attr, value in sorted(vars(pass_).items()):
        if value is None or isinstance(value, (bool, int, float, str)):
            items.append((attr, value))
        elif isinstance(value, (set, frozenset)) and all(
            isinstance(v, str) for v in value
        ):
            items.append((attr, ("set", tuple(sorted(value)))))
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, (bool, int, float, str)) for v in value
        ):
            items.append((attr, ("seq", tuple(value))))
        else:
            return None
    return (type(pass_), tuple(items))


def _shared_prefixes(
    pipelines: Mapping[str, Callable[[], PassManager]]
) -> tuple[frozenset[tuple], dict[tuple, int]]:
    """Pass-key prefixes shared by at least two of the given pipelines.

    These are the (and the only) intermediate pipeline states worth
    snapshotting: the preset pipelines all open with the same cleanup
    sequence, and dedup/overlap/full additionally share state tracing (and
    dedup), so most of their pass executions are redundant across pipelines.

    Returns ``(resume_points, resume_counts)``: ``resume_counts`` maps each
    resume point to the number of pipelines it is the resume point *of*, so
    the runner can hand the snapshot to its final sharer by move instead of
    by clone.
    """
    counts: dict[tuple, int] = {}
    key_lists: list[list[tuple]] = []
    for factory in pipelines.values():
        try:
            pipeline = factory()
        except Exception:  # noqa: BLE001 - the runner will report it
            continue
        if pipeline.lint or pipeline.instrument:
            continue
        keys = [_pass_state_key(p) for p in pipeline.passes]
        if any(key is None for key in keys):
            continue
        key_lists.append(keys)
        for length in range(1, len(keys) + 1):
            prefix = tuple(keys[:length])
            counts[prefix] = counts.get(prefix, 0) + 1
    # Snapshot only each pipeline's *longest* shared prefix (its resume
    # point); shorter shared prefixes would be cloned but never resumed
    # from, since every sharer prefers the longer state.
    resume_counts: dict[tuple, int] = {}
    for keys in key_lists:
        for length in range(len(keys), 0, -1):
            prefix = tuple(keys[:length])
            if counts.get(prefix, 0) >= 2:
                resume_counts[prefix] = resume_counts.get(prefix, 0) + 1
                break
    return frozenset(resume_counts), resume_counts


def _execute(module, memory, args, engine, key=None):
    """Run ``module`` under the selected engine.

    Returns ``(results, sim, used_trace)``; ``used_trace`` is False when the
    tree interpreter ran (either by request or as the fallback for modules
    the trace compiler rejects).  ``key`` is an optional precomputed
    structural key for the trace cache.
    """
    sim = CoSimulator(memory=memory)
    if engine != "tree":
        from ..engine import TRACE_CACHE, TraceCompileError, TraceExecutor

        try:
            compiled = TRACE_CACHE.get_or_compile(module, key=key)
        except TraceCompileError:
            pass
        else:
            return TraceExecutor(compiled, sim).run("main", args), sim, True
    return run_module(module, sim, args=args)[0], sim, False


def _first_mismatch(xs, ys) -> int:
    for index, (x, y) in enumerate(zip(xs, ys)):
        if x != y:
            return index
    return min(len(xs), len(ys))


def _engine_divergences(
    trace_results, trace_sim, trace_memory, tree_results, tree_sim, tree_memory
) -> list[str]:
    """Every observable difference between a trace-engine run and a
    tree-interpreter run of the same module (empty = bit-identical)."""
    problems: list[str] = []
    if trace_results != tree_results:
        problems.append(f"results {trace_results} != {tree_results}")
    if trace_sim.total_cycles != tree_sim.total_cycles:
        problems.append(
            f"total cycles {trace_sim.total_cycles:g} != "
            f"{tree_sim.total_cycles:g}"
        )
    trace_launches = {
        name: device.launch_count for name, device in trace_sim.devices.items()
    }
    tree_launches = {
        name: device.launch_count for name, device in tree_sim.devices.items()
    }
    if trace_launches != tree_launches:
        problems.append(f"launch counts {trace_launches} != {tree_launches}")
    if trace_sim.trace.instrs != tree_sim.trace.instrs:
        index = _first_mismatch(trace_sim.trace.instrs, tree_sim.trace.instrs)
        problems.append(
            f"instruction traces diverge at #{index} "
            f"({len(trace_sim.trace.instrs)} vs "
            f"{len(tree_sim.trace.instrs)} instrs)"
        )
    if trace_sim.timeline.spans != tree_sim.timeline.spans:
        index = _first_mismatch(
            trace_sim.timeline.spans, tree_sim.timeline.spans
        )
        problems.append(f"timelines diverge at span #{index}")
    for i, (a, b) in enumerate(zip(trace_memory.buffers, tree_memory.buffers)):
        if a.array.shape != b.array.shape or not (a.array == b.array).all():
            problems.append(f"memory images diverge in buffer #{i}")
            break
    return problems


def _cross_check(
    name: str, module, subject: Subject, results, sim, memory
) -> OracleFailure | None:
    """Re-run ``module`` under the tree interpreter and compare."""
    try:
        tree_memory, tree_args = _fresh_memory(subject)
        tree_sim = CoSimulator(memory=tree_memory)
        tree_results = run_module(module, tree_sim, args=tree_args)[0]
    except Exception as error:  # noqa: BLE001 - any asymmetry is the finding
        return OracleFailure(
            "trace-vs-tree",
            name,
            f"tree interpreter raised {type(error).__name__}: {error} "
            "where the trace engine succeeded",
        )
    problems = _engine_divergences(
        results, sim, memory, tree_results, tree_sim, tree_memory
    )
    if problems:
        return OracleFailure("trace-vs-tree", name, "; ".join(problems))
    return None


def _batch_lane_divergences(
    lane, results, error, sim, memory
) -> list[str]:
    """Observable differences between one batch lane and its scalar run.

    ``error`` is ``None`` when the scalar run succeeded, else the
    ``(type name, message)`` pair it raised — batch lanes must reproduce
    errors exactly, message and all.
    """
    problems: list[str] = []
    if error is None:
        if not lane.ok:
            return [
                f"batch lane raised {lane.error_type}: {lane.error} "
                "where the scalar engine succeeded"
            ]
        if lane.results != results:
            problems.append(f"results {lane.results} != {results}")
    else:
        if lane.ok:
            return [
                f"batch lane succeeded where the scalar engine raised "
                f"{error[0]}: {error[1]}"
            ]
        if (lane.error_type, lane.error) != error:
            problems.append(
                f"errors diverge: {lane.error_type}: {lane.error} != "
                f"{error[0]}: {error[1]}"
            )
    if lane.total_cycles != sim.total_cycles:
        problems.append(
            f"total cycles {lane.total_cycles:g} != {sim.total_cycles:g}"
        )
    scalar_launches = {
        name: device.launch_count for name, device in sim.devices.items()
    }
    if lane.launch_counts != scalar_launches:
        problems.append(
            f"launch counts {lane.launch_counts} != {scalar_launches}"
        )
    for i, (a, b) in enumerate(zip(lane.memory.buffers, memory.buffers)):
        if a.array.shape != b.array.shape or not (a.array == b.array).all():
            problems.append(f"memory images diverge in buffer #{i}")
            break
    return problems


def _batch_cross_check(
    name: str, module, subject: Subject, results, sim, memory, key
) -> list[OracleFailure]:
    """Re-run ``module`` through the batch executor and compare per lane.

    Lane 0 replays the subject's own ``(memory, args)`` against the scalar
    run just performed; when the first argument is an ``i1``, lane 1 flips
    it (forcing the lanes down different control-flow paths, so group
    splitting is exercised) and is held to an independent scalar run —
    including crashing with the identical error message when that run does.
    """
    from ..engine import TRACE_CACHE, TraceExecutor
    from ..engine.batch import BatchExecutor, BatchLane

    try:
        compiled = TRACE_CACHE.get_or_compile(module, key=key)
        lane_memory, lane_args = _fresh_memory(subject)
        lanes = [BatchLane(memory=lane_memory, args=list(lane_args))]
        expected = [(results, None, sim, memory)]
        if lane_args and isinstance(lane_args[0], int) and lane_args[0] in (0, 1):
            flipped = [1 - lane_args[0], *lane_args[1:]]
            scalar_memory, _ = _fresh_memory(subject)
            scalar_sim = CoSimulator(memory=scalar_memory)
            try:
                scalar_results = TraceExecutor(compiled, scalar_sim).run(
                    "main", list(flipped)
                )
                scalar_error = None
            except Exception as error:  # noqa: BLE001 - lanes must match it
                scalar_results = None
                scalar_error = (type(error).__name__, str(error))
            batch_memory, _ = _fresh_memory(subject)
            lanes.append(BatchLane(memory=batch_memory, args=list(flipped)))
            expected.append(
                (scalar_results, scalar_error, scalar_sim, scalar_memory)
            )
        lane_results = BatchExecutor(compiled, module=module).run(lanes)
    except Exception as error:  # noqa: BLE001 - any asymmetry is the finding
        return [
            OracleFailure(
                "batch-vs-scalar",
                name,
                f"batch executor raised {type(error).__name__}: {error} "
                "where the scalar engine succeeded",
            )
        ]
    failures = []
    for index, (lane, exp) in enumerate(zip(lane_results, expected)):
        problems = _batch_lane_divergences(lane, *exp)
        if problems:
            failures.append(
                OracleFailure(
                    "batch-vs-scalar",
                    name,
                    f"lane {index}: " + "; ".join(problems),
                )
            )
    return failures


def run_one(
    subject: Subject,
    pipeline: PassManager | None,
    engine: str = DEFAULT_ENGINE,
) -> RunOutcome | OracleFailure:
    """Build the subject, optionally optimize it, execute, and measure."""
    stage = "build"
    try:
        module, memory, args = subject.fresh()
        if pipeline is not None:
            stage = "optimize"
            pipeline.run(module)
            verify_operation(module)
        stage = "execute"
        results, sim, _ = _execute(module, memory, args, engine)
        stage = "lint"
        lint_errors = error_code_counts(
            run_lints(module, codes=set(ERROR_LINT_CODES))
        )
    except Exception as error:  # noqa: BLE001 - every crash is a finding
        return OracleFailure(
            "crash", "?", f"{stage}: {type(error).__name__}: {error}"
        )
    return RunOutcome(
        results=results,
        image=memory.snapshot(),
        total_cycles=sim.total_cycles,
        launch_counts={
            name: device.launch_count for name, device in sim.devices.items()
        },
        lint_errors=lint_errors,
    )


def timing_slack(zero_trip_sites: int, cycles_per_instr: float = 3.0) -> float:
    """Additive cycles the optimized program may pay for soundness guards.

    Hoisting a setup out of a possibly-zero-trip loop inserts an ``lb < ub``
    guard (compare + branch, and the hoisted constants execute once even
    when the loop would not have run); each such site is allowed a small
    constant, never anything proportional to trip counts.
    """
    return 16.0 * cycles_per_instr * (zero_trip_sites + 1)


def _functional_failures(
    name: str, base: RunOutcome, out: RunOutcome
) -> Iterable[OracleFailure]:
    if out.results != base.results:
        yield OracleFailure(
            "functional",
            name,
            f"results diverge: {out.results} != {base.results}",
        )
        return
    for i, (a, b) in enumerate(zip(base.image, out.image)):
        if a.shape != b.shape or not (a == b).all():
            diverging = int((a != b).sum()) if a.shape == b.shape else -1
            yield OracleFailure(
                "functional",
                name,
                f"memory image diverges in buffer #{i} "
                f"({diverging} element(s) differ)",
            )
            return
    if out.launch_counts != base.launch_counts:
        yield OracleFailure(
            "functional",
            name,
            f"launch counts diverge: {out.launch_counts} != {base.launch_counts}",
        )


class _SubjectRunner:
    """Runs pipelines over clones of one verified base module, deduplicating
    identical optimized outputs through a per-subject outcome cache."""

    def __init__(
        self,
        subject: Subject,
        base_module,
        engine: str,
        shared_prefixes: frozenset[tuple] = frozenset(),
        resume_counts: dict[tuple, int] | None = None,
    ) -> None:
        self.subject = subject
        self.base_module = base_module
        self.engine = engine
        self.outcomes: dict[tuple, RunOutcome] = {}
        #: pipeline prefixes (see :func:`_shared_prefixes`) worth caching
        self.shared_prefixes = shared_prefixes
        #: resume point -> how many pipelines have yet to resume there; when
        #: a count is exhausted, the snapshot moves to its last sharer
        self._resume_counts = dict(resume_counts or {})
        #: prefix key tuple -> module state after running that prefix
        self._prefix_states: dict[tuple, object] = {}

    def _run_pipeline(self, pipeline: PassManager):
        """Optimize a clone of the base module, reusing shared prefix states.

        Resumes from the longest already-computed shared prefix and
        snapshots the module at each shared-prefix boundary it newly
        crosses, so pass sequences common to several pipelines execute once
        per subject instead of once per pipeline.
        """
        passes = pipeline.passes
        keys = [_pass_state_key(p) for p in passes]
        if (
            pipeline.lint
            or pipeline.instrument
            or any(key is None for key in keys)
        ):
            module = self.base_module.clone()
            pipeline.verify_each = False
            pipeline.run(module)
            return module
        count = len(passes)
        start, source = 0, self.base_module
        for length in range(count, 0, -1):
            cached = self._prefix_states.get(tuple(keys[:length]))
            if cached is not None:
                start, source = length, cached
                break
        # Account this pipeline against its resume point; when the count is
        # exhausted and we are resuming exactly there, the snapshot has no
        # future reader and moves to us instead of being cloned.
        moved = False
        for length in range(count, 0, -1):
            resume = tuple(keys[:length])
            if resume in self._resume_counts:
                remaining = self._resume_counts[resume] - 1
                self._resume_counts[resume] = remaining
                if (
                    remaining <= 0
                    and start == length
                    and source is not self.base_module
                ):
                    self._prefix_states.pop(resume, None)
                    moved = True
                break
        module = source if moved else source.clone()
        analyses = pipeline.analyses
        while start < count:
            stop = count
            for boundary in range(start + 1, count):
                prefix = tuple(keys[:boundary])
                if (
                    prefix not in self._prefix_states
                    and self._resume_counts.get(prefix, 0) > 0
                ):
                    stop = boundary
                    break
            PassManager(
                passes[start:stop], verify_each=False, analyses=analyses
            ).run(module)
            if stop < count:
                # Mid-pipeline snapshot: later passes keep mutating
                # ``module``, so the cached state must be an isolated clone.
                self._prefix_states[tuple(keys[:stop])] = module.clone()
            start = stop
        full = tuple(keys)
        if (
            full not in self._prefix_states
            and self._resume_counts.get(full, 0) > 0
        ):
            # The finished module is only read from here on (execute, lint,
            # snapshot sources are cloned or moved), so it is cached as-is.
            self._prefix_states[full] = module
        return module

    def _check_driver_equivalence(
        self, name: str, factory: Callable[[], PassManager], fingerprint
    ) -> OracleFailure | None:
        """Re-run the pipeline under the legacy sweep driver and compare.

        The worklist driver's tentpole claim is that it reaches the *same
        normal form* as fixpoint-of-full-sweeps, just without the re-walks;
        under ``REPRO_REWRITE_DRIVER=both`` every pipeline run is replayed
        on a fresh clone with the sweep driver and the two optimized modules
        are compared by exact structural key.
        """
        try:
            sweep_module = self.base_module.clone()
            with use_driver("sweep"):
                factory().run(sweep_module)
            verify_operation(sweep_module)
        except Exception as error:  # noqa: BLE001 - asymmetry is the finding
            return OracleFailure(
                "driver-divergence",
                name,
                f"sweep driver raised {type(error).__name__}: {error} "
                "where the worklist driver succeeded",
            )
        if structural_key(sweep_module) != fingerprint:
            return OracleFailure(
                "driver-divergence",
                name,
                "worklist and sweep drivers reached different normal forms",
            )
        return None

    def run(
        self,
        name: str,
        factory: Callable[[], PassManager] | None,
        cross_check: bool,
        memory: Memory | None = None,
        args: list[int] | None = None,
    ) -> tuple[RunOutcome | OracleFailure, list[OracleFailure]]:
        """One pipeline's outcome plus any cross-check divergences
        (trace-vs-tree, worklist-vs-sweep)."""
        extras: list[OracleFailure] = []
        stage = "optimize"
        try:
            pipeline = factory() if factory is not None else None
            ran_passes = pipeline is not None and (
                pipeline.passes or pipeline.lint
            )
            if ran_passes:
                module = self._run_pipeline(pipeline)
            else:
                # No passes to run: the base module *is* this pipeline's
                # output (it is never mutated, so no clone is needed).
                module = self.base_module
            fingerprint = structural_key(module)
            if ran_passes and factory is not None and active_driver() == "both":
                failure = self._check_driver_equivalence(
                    name, factory, fingerprint
                )
                if failure is not None:
                    extras.append(failure)
            cached = self.outcomes.get(fingerprint)
            if cached is not None:
                # An identical module already verified, executed, and linted
                # for this subject — nothing about this run can differ.
                return cached, extras
            if ran_passes:
                try:
                    verify_operation(module)
                except Exception:
                    # Attribute the corruption to the pass that introduced
                    # it: re-run on a fresh clone with per-pass verification
                    # (the slow path only failing pipelines pay).
                    factory().run(self.base_module.clone())
                    raise
            stage = "execute"
            if memory is None or args is None:
                memory, args = _fresh_memory(self.subject)
            results, sim, used_trace = _execute(
                module, memory, args, self.engine, fingerprint
            )
            if cross_check and used_trace:
                divergence = _cross_check(
                    name, module, self.subject, results, sim, memory
                )
                if divergence is not None:
                    extras.append(divergence)
            if self.engine == "batch" and used_trace:
                extras.extend(
                    _batch_cross_check(
                        name, module, self.subject, results, sim, memory,
                        fingerprint,
                    )
                )
            stage = "static-cost"
            from ..analysis.cost import compare_with_simulation

            mismatches = compare_with_simulation(module, sim, args)
            if mismatches:
                extras.append(
                    OracleFailure("static-cost", name, "; ".join(mismatches))
                )
            stage = "lint"
            lint_errors = error_code_counts(
                run_lints(module, codes=set(ERROR_LINT_CODES))
            )
        except Exception as error:  # noqa: BLE001 - every crash is a finding
            return (
                OracleFailure(
                    "crash", name, f"{stage}: {type(error).__name__}: {error}"
                ),
                extras,
            )
        outcome = RunOutcome(
            results=results,
            image=memory.snapshot(),
            total_cycles=sim.total_cycles,
            launch_counts={
                name_: device.launch_count
                for name_, device in sim.devices.items()
            },
            lint_errors=lint_errors,
        )
        self.outcomes[fingerprint] = outcome
        return outcome, extras


def check_subject(
    subject: Subject,
    pipelines: Mapping[str, Callable[[], PassManager]] | None = None,
    timing: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> list[OracleFailure]:
    """Run every pipeline over the subject and collect oracle violations.

    ``pipelines`` maps pipeline names to :class:`PassManager` factories and
    defaults to every registered pipeline; a ``none`` entry (or an implicit
    unoptimized run) is the functional baseline, ``baseline`` the timing
    baseline.  ``engine`` selects trace/tree execution and the
    ``trace-vs-tree`` cross-check policy (see the module docstring).
    """
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ValueError(f"unknown engine '{engine}' (known: {known})")
    pipelines = dict(pipelines if pipelines is not None else PIPELINES)
    failures: list[OracleFailure] = []

    # One build + one verification; every pipeline optimizes its own clone.
    stage = "build"
    try:
        base_module, base_memory, base_args = subject.fresh()
        stage = "optimize"
        verify_operation(base_module)
    except Exception as error:  # noqa: BLE001
        return [
            OracleFailure(
                "crash", "none", f"{stage}: {type(error).__name__}: {error}"
            )
        ]

    shared_prefixes, resume_counts = _shared_prefixes(pipelines)
    runner = _SubjectRunner(
        subject, base_module, engine, shared_prefixes, resume_counts
    )

    base, extras = runner.run(
        "none",
        pipelines.get("none"),
        cross_check=engine != "tree",
        memory=base_memory,
        args=base_args,
    )
    if isinstance(base, OracleFailure):
        # The *unoptimized* program crashed: either a generator bug or a
        # genuine interpreter/simulator defect — either way, report it.
        return [base]
    failures.extend(extras)

    # Run the timing baseline first so its cycle count is available no
    # matter where other pipeline names sort.
    baseline_out: RunOutcome | OracleFailure | None = None
    if "baseline" in pipelines:
        baseline_out, extras = runner.run(
            "baseline", pipelines["baseline"], cross_check=engine == "both"
        )
        if isinstance(baseline_out, OracleFailure):
            failures.append(baseline_out)
        failures.extend(extras)
    timing_base = (
        baseline_out if timing and isinstance(baseline_out, RunOutcome) else None
    )

    for name, factory in sorted(pipelines.items()):
        if name == "none":
            continue
        if name == "baseline":
            if not isinstance(baseline_out, RunOutcome):
                continue  # its crash is already reported
            out = baseline_out
        else:
            out, extras = runner.run(
                name, factory, cross_check=engine == "both"
            )
            failures.extend(extras)
            if isinstance(out, OracleFailure):
                failures.append(out)
                continue
        failures.extend(_functional_failures(name, base, out))
        introduced = {
            code: count - base.lint_errors.get(code, 0)
            for code, count in out.lint_errors.items()
            if count > base.lint_errors.get(code, 0)
        }
        if introduced:
            detail = ", ".join(
                f"{code} (+{delta})" for code, delta in sorted(introduced.items())
            )
            failures.append(
                OracleFailure("lint", name, f"introduced lint errors: {detail}")
            )
        if (
            timing
            and timing_base is not None
            and name not in BASELINE_PIPELINES
        ):
            budget = timing_base.total_cycles * (1 + TIMING_EPSILON) + timing_slack(
                subject.zero_trip_sites
            )
            if out.total_cycles > budget:
                failures.append(
                    OracleFailure(
                        "timing",
                        name,
                        f"{out.total_cycles:.0f} cycles > baseline "
                        f"{timing_base.total_cycles:.0f} (+ slack, budget "
                        f"{budget:.0f})",
                    )
                )
    return failures
