"""Differential equivalence oracles.

A :class:`Subject` is a program under test: a factory that produces a *fresh*
``(module, memory, args)`` triple on every call (pass pipelines mutate
modules in place, so each pipeline runs against its own build).  For every
registered pipeline, :func:`check_subject` asserts three things the paper
claims its optimizations guarantee:

* **functional** — function results, final memory image, and per-device
  launch counts match the unoptimized (``none``) run bit-exactly
  (Section 5: the passes never change program semantics);
* **timing** — optimized total cycles never materially exceed the
  cleanups-only ``baseline`` run (Eq. 2/3 accounting: removing configuration
  work cannot slow the program down).  A small additive slack covers the
  ``lb < ub`` guards hoisting inserts around possibly-zero-trip loops, and
  the comparison is skipped for the baseline pipelines themselves;
* **lint** — pipelines never *introduce* error-severity ACCFG diagnostics
  (reusing :mod:`repro.analysis`, the same gate as
  ``PassManager(lint=True)``).

Any crash while optimizing or executing is reported as a fourth oracle,
``crash``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from ..analysis import error_code_counts, run_lints
from ..interp import run_module
from ..ir import verify_operation
from ..passes import PIPELINES, PassManager
from ..sim import CoSimulator
from ..sim.memory import Memory
from .generator import ProgramSpec, build_spec

#: Pipelines that make no faster-than-baseline promise: the timing oracle
#: does not apply to them.  ``volatile-baseline`` deliberately withholds LICM
#: and ``licm`` withholds CSE — each runs a strict subset of ``baseline``'s
#: cleanups, so either may legitimately be slower than it.
BASELINE_PIPELINES = frozenset({"none", "baseline", "volatile-baseline", "licm"})

#: Multiplicative tolerance of the timing oracle.
TIMING_EPSILON = 0.001


@dataclass(frozen=True)
class OracleFailure:
    """One oracle violation for one pipeline."""

    oracle: str  # "functional" | "timing" | "lint" | "crash"
    pipeline: str
    message: str

    def format(self) -> str:
        return f"[{self.oracle}] pipeline '{self.pipeline}': {self.message}"


@dataclass
class RunOutcome:
    """Everything one (build, optimize, execute) run observed."""

    results: list[int]
    image: list[np.ndarray]
    total_cycles: float
    launch_counts: dict[str, int]
    lint_errors: dict[str, int]


@dataclass
class Subject:
    """A program under differential test.

    ``fresh()`` must return an independent build each time: a verified
    module, the memory image it references, and the ``main`` arguments.
    """

    fresh: Callable[[], tuple[object, Memory, list[int]]]
    zero_trip_sites: int = 0
    name: str = "<subject>"


def subject_for_spec(spec: ProgramSpec, memory_seed: int = 0) -> Subject:
    """Wrap a generated program spec as an oracle subject."""

    def fresh():
        built = build_spec(spec, memory_seed)
        return built.module, built.memory, built.args

    return Subject(
        fresh=fresh,
        zero_trip_sites=spec.zero_trip_sites(),
        name=f"spec:{spec.backend}",
    )


def run_one(
    subject: Subject, pipeline: PassManager | None
) -> RunOutcome | OracleFailure:
    """Build the subject, optionally optimize it, execute, and measure."""
    stage = "build"
    try:
        module, memory, args = subject.fresh()
        if pipeline is not None:
            stage = "optimize"
            pipeline.run(module)
            verify_operation(module)
        stage = "execute"
        sim = CoSimulator(memory=memory)
        results = run_module(module, sim, args=args)[0]
        stage = "lint"
        lint_errors = error_code_counts(run_lints(module))
    except Exception as error:  # noqa: BLE001 - every crash is a finding
        return OracleFailure(
            "crash", "?", f"{stage}: {type(error).__name__}: {error}"
        )
    return RunOutcome(
        results=results,
        image=[buffer.array.copy() for buffer in memory.buffers],
        total_cycles=sim.total_cycles,
        launch_counts={
            name: device.launch_count for name, device in sim.devices.items()
        },
        lint_errors=lint_errors,
    )


def timing_slack(zero_trip_sites: int, cycles_per_instr: float = 3.0) -> float:
    """Additive cycles the optimized program may pay for soundness guards.

    Hoisting a setup out of a possibly-zero-trip loop inserts an ``lb < ub``
    guard (compare + branch, and the hoisted constants execute once even
    when the loop would not have run); each such site is allowed a small
    constant, never anything proportional to trip counts.
    """
    return 16.0 * cycles_per_instr * (zero_trip_sites + 1)


def _functional_failures(
    name: str, base: RunOutcome, out: RunOutcome
) -> Iterable[OracleFailure]:
    if out.results != base.results:
        yield OracleFailure(
            "functional",
            name,
            f"results diverge: {out.results} != {base.results}",
        )
        return
    for i, (a, b) in enumerate(zip(base.image, out.image)):
        if a.shape != b.shape or not (a == b).all():
            diverging = int((a != b).sum()) if a.shape == b.shape else -1
            yield OracleFailure(
                "functional",
                name,
                f"memory image diverges in buffer #{i} "
                f"({diverging} element(s) differ)",
            )
            return
    if out.launch_counts != base.launch_counts:
        yield OracleFailure(
            "functional",
            name,
            f"launch counts diverge: {out.launch_counts} != {base.launch_counts}",
        )


def check_subject(
    subject: Subject,
    pipelines: Mapping[str, Callable[[], PassManager]] | None = None,
    timing: bool = True,
) -> list[OracleFailure]:
    """Run every pipeline over the subject and collect oracle violations.

    ``pipelines`` maps pipeline names to :class:`PassManager` factories and
    defaults to every registered pipeline; a ``none`` entry (or an implicit
    unoptimized run) is the functional baseline, ``baseline`` the timing
    baseline.
    """
    pipelines = dict(pipelines if pipelines is not None else PIPELINES)
    failures: list[OracleFailure] = []

    none_factory = pipelines.get("none")
    base = run_one(subject, none_factory() if none_factory else None)
    if isinstance(base, OracleFailure):
        # The *unoptimized* program crashed: either a generator bug or a
        # genuine interpreter/simulator defect — either way, report it.
        return [OracleFailure(base.oracle, "none", base.message)]

    timing_base: RunOutcome | None = None
    if timing and "baseline" in pipelines:
        outcome = run_one(subject, pipelines["baseline"]())
        if isinstance(outcome, OracleFailure):
            failures.append(OracleFailure(outcome.oracle, "baseline", outcome.message))
        else:
            timing_base = outcome

    for name, factory in sorted(pipelines.items()):
        if name == "none":
            continue
        out = run_one(subject, factory())
        if isinstance(out, OracleFailure):
            failures.append(OracleFailure(out.oracle, name, out.message))
            continue
        failures.extend(_functional_failures(name, base, out))
        introduced = {
            code: count - base.lint_errors.get(code, 0)
            for code, count in out.lint_errors.items()
            if count > base.lint_errors.get(code, 0)
        }
        if introduced:
            detail = ", ".join(
                f"{code} (+{delta})" for code, delta in sorted(introduced.items())
            )
            failures.append(
                OracleFailure("lint", name, f"introduced lint errors: {detail}")
            )
        if (
            timing
            and timing_base is not None
            and name not in BASELINE_PIPELINES
        ):
            budget = timing_base.total_cycles * (1 + TIMING_EPSILON) + timing_slack(
                subject.zero_trip_sites
            )
            if out.total_cycles > budget:
                failures.append(
                    OracleFailure(
                        "timing",
                        name,
                        f"{out.total_cycles:.0f} cycles > baseline "
                        f"{timing_base.total_cycles:.0f} (+ slack, budget "
                        f"{budget:.0f})",
                    )
                )
    return failures
