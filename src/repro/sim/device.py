"""Accelerator device model.

Wraps an :class:`~repro.backends.base.AcceleratorSpec` with the dynamic
behaviour the co-simulation needs: a configuration register file, the
sequential-vs-concurrent write semantics of Section 2.2, launch timing, and
functional execution of macro-operations against simulated memory.

* **Sequential configuration** (e.g. Gemmini): configuration writes to a busy
  device stall the host until the device is idle; there is a single register
  file.
* **Concurrent configuration** (e.g. OpenGeMM): writes land in *staging*
  registers at any time; a launch first waits for the device to go idle,
  then commits the staged values and starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.base import AcceleratorSpec
from .memory import Memory


class SimulationError(Exception):
    """Raised on illegal device interactions (e.g. double-await)."""


class FaultError(SimulationError):
    """An injected hardware fault that was detected but not repaired.

    Raised by the co-simulator when fault injection is active and either
    recovery is disabled or a bounded-retry recovery strategy ran out of
    attempts.  Both execution engines convert it into a loc-tagged
    ``InterpreterError`` so faulted runs fail loudly at the offending op
    instead of silently corrupting results.
    """


@dataclass(frozen=True)
class LaunchToken:
    """Handle of one in-flight launch."""

    device: "AcceleratorDevice"
    index: int
    start: float
    end: float
    ops: int


class AcceleratorDevice:
    """Dynamic state of one accelerator instance during co-simulation."""

    def __init__(self, spec: AcceleratorSpec, memory: Memory) -> None:
        self.spec = spec
        self.memory = memory
        self.registers: dict[str, int] = {}
        self.staged: dict[str, int] = {}
        self.busy_until: float = 0.0
        self.launch_count = 0
        self.total_ops = 0
        self.total_memory_bytes = 0
        self.busy_cycles = 0.0
        self.config_write_count = 0
        self._launch_ends: list[float] = []
        #: bumped by :meth:`power_cycle`; a host-visible epoch register that
        #: lets the recovery runtime detect spontaneous state loss
        self.hw_epoch = 0
        #: degraded mode: treat a concurrent-configuration device as
        #: sequential (recovery runtime flips this when the staged path
        #: keeps faulting)
        self.force_sequential = False

    @property
    def name(self) -> str:
        return self.spec.name

    def is_busy(self, now: float) -> bool:
        return now < self.busy_until

    @property
    def concurrent_now(self) -> bool:
        """Effective configuration concurrency (degradation-aware)."""
        return self.spec.concurrent_config and not self.force_sequential

    # -- configuration -------------------------------------------------------

    def write_fields(self, fields: dict[str, int], now: float) -> float:
        """Apply configuration writes arriving at time ``now``.

        Returns the time at which the host may *begin* issuing the writes —
        later than ``now`` when a sequential device is still computing (the
        host stalls; paper Figure 2's idle region).
        """
        start = now
        if not self.concurrent_now and self.is_busy(now):
            start = self.busy_until
        target = self.staged if self.concurrent_now else self.registers
        for name, value in fields.items():
            target[name] = int(value)
        self.config_write_count += len(fields)
        return start

    def effective_config(self) -> dict[str, int]:
        """Registers as they would be committed by a launch right now."""
        merged = dict(self.registers)
        merged.update(self.staged)
        return merged

    def power_cycle(self) -> None:
        """Spontaneous device state loss (reset / power-gate).

        Clears both the committed register file and any staged writes —
        exactly the retention assumption the dedup pass leans on — and bumps
        the host-visible :attr:`hw_epoch` so read-back detection works.  The
        compute plane is unaffected: an in-flight launch already snapshotted
        its configuration, so ``busy_until`` and the launch queue survive.
        """
        self.registers.clear()
        self.staged.clear()
        self.hw_epoch += 1

    # -- launch / completion ---------------------------------------------

    def accept_time(self, now: float) -> float:
        """When the interface can take one more launch.

        With the default single-level staging (queue depth 1) this is the
        end of the in-flight computation — a launch is a barrier.  Deeper
        launch queues (FIFO-based schemes, Section 8 outlook) let the host
        enqueue ``depth`` launches before it must wait for the oldest
        outstanding one to retire.
        """
        depth = (
            max(1, self.spec.launch_queue_depth)
            if self.concurrent_now
            else 1
        )
        if len(self._launch_ends) < depth:
            return now
        return max(now, self._launch_ends[-depth])

    def launch(
        self,
        now: float,
        launch_fields: dict[str, int] | None = None,
        functional: bool = True,
    ) -> LaunchToken:
        """Start the accelerator; returns the completion token.

        Start time is ``max(now, busy_until)`` — a launch is a barrier even
        on concurrent-configuration devices (only one computation in flight;
        Section 2.2 models single-level staging).
        """
        start = max(now, self.busy_until)
        if self.spec.concurrent_config and self.staged:
            self.registers.update(self.staged)
            self.staged.clear()
        if launch_fields:
            for name, value in launch_fields.items():
                self.registers[name] = int(value)
        config = dict(self.registers)
        cycles = self.spec.compute_cycles(config)
        ops = self.spec.launch_ops(config)
        self.total_memory_bytes += self.spec.launch_memory_bytes(config)
        if functional:
            self.spec.execute(config, self.memory)
        end = start + cycles
        self.busy_until = end
        self.launch_count += 1
        self.total_ops += ops
        self.busy_cycles += cycles
        self._launch_ends.append(end)
        return LaunchToken(self, self.launch_count, start, end, ops)

    def completion_time(self, token: LaunchToken) -> float:
        if token.device is not self:
            raise SimulationError("token belongs to a different device")
        return token.end
