"""Run metrics: everything the roofline analysis and the experiments read
out of one co-simulated program execution."""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import InstrCategory
from ..isa.trace import TraceStats
from .cosim import CoSimulator


@dataclass(frozen=True)
class RunMetrics:
    """Aggregated measurements of one program run on one accelerator."""

    accelerator: str
    peak_ops_per_cycle: float
    total_cycles: float
    total_ops: int
    config_bytes: int
    memory_bytes: int
    setup_instrs: int
    calc_instrs: int
    setup_cycles: float
    calc_cycles: float
    launch_count: int
    accel_busy_cycles: float
    host_stall_cycles: float

    # -- derived roofline quantities ----------------------------------------

    @property
    def performance(self) -> float:
        """Achieved ops/cycle."""
        return self.total_ops / self.total_cycles if self.total_cycles else 0.0

    @property
    def utilization(self) -> float:
        """Achieved fraction of peak performance."""
        return self.performance / self.peak_ops_per_cycle

    @property
    def operational_intensity(self) -> float:
        """Measured I_operational in ops/byte of data movement (Eq. 1/5);
        infinite when the workload moves no modeled memory traffic."""
        if self.memory_bytes == 0:
            return float("inf")
        return self.total_ops / self.memory_bytes

    @property
    def operation_to_config_intensity(self) -> float:
        """Measured I_OC in ops/byte."""
        if self.config_bytes == 0:
            return float("inf")
        return self.total_ops / self.config_bytes

    @property
    def effective_config_bandwidth(self) -> float:
        """Measured BW_config,eff (Eq. 4) in bytes/cycle."""
        denominator = self.setup_cycles + self.calc_cycles
        if denominator == 0:
            return float("inf")
        return self.config_bytes / denominator

    @property
    def theoretical_config_bandwidth(self) -> float:
        if self.setup_cycles == 0:
            return float("inf")
        return self.config_bytes / self.setup_cycles

    @property
    def config_cycles(self) -> float:
        return self.setup_cycles + self.calc_cycles


def collect_metrics(sim: CoSimulator, accelerator: str) -> RunMetrics:
    """Summarize a finished co-simulation for one accelerator."""
    device = sim.device(accelerator)
    stats: TraceStats = sim.trace.stats(sim.cost_model, accelerator)
    launch_cycles = stats.cycles_by_category.get(InstrCategory.LAUNCH, 0.0)
    from .timeline import SpanKind

    stall = sim.timeline.busy_time("host", SpanKind.STALL)
    return RunMetrics(
        accelerator=accelerator,
        peak_ops_per_cycle=device.spec.peak_ops_per_cycle,
        total_cycles=sim.total_cycles,
        total_ops=device.total_ops,
        config_bytes=sim.trace.config_bytes(accelerator),
        memory_bytes=device.total_memory_bytes,
        setup_instrs=stats.setup_instrs,
        calc_instrs=stats.calc_instrs,
        # Launch instructions convey (launch-semantic) configuration and are
        # counted as configuration time, as the paper does for Gemmini's
        # launch-semantic RoCC sequences.
        setup_cycles=stats.setup_cycles + launch_cycles,
        calc_cycles=stats.calc_cycles,
        launch_count=device.launch_count,
        accel_busy_cycles=device.busy_cycles,
        host_stall_cycles=stall,
    )
