"""Host/accelerator co-simulation: memory, devices, the discrete-event
engine, timelines, and run metrics."""

from .cosim import CoSimulator
from .device import AcceleratorDevice, LaunchToken, SimulationError
from .memory import Buffer, Memory, MemoryError_
from .metrics import RunMetrics, collect_metrics
from .timeline import Span, SpanKind, Timeline

__all__ = [
    "CoSimulator",
    "AcceleratorDevice",
    "LaunchToken",
    "SimulationError",
    "Buffer",
    "Memory",
    "MemoryError_",
    "RunMetrics",
    "collect_metrics",
    "Span",
    "SpanKind",
    "Timeline",
]
