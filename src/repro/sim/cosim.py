"""Host–accelerator co-simulation engine.

The :class:`CoSimulator` advances a single host-time cursor as the IR
interpreter executes operations, charging host instructions against the cost
model, driving accelerator devices (which run asynchronously until their
``busy_until`` time), recording a timeline, and accumulating the instruction
trace the roofline analysis consumes.

This replaces the paper's spike (instruction-accurate) and Verilator
(cycle-accurate) substrates with a discrete-event model that captures the
same first-order interaction: configuration cycles, stalls, and overlap.
"""

from __future__ import annotations

from ..backends.base import get_accelerator
from ..isa.instructions import HostCostModel, Instr, InstrCategory
from ..isa.trace import Trace
from .device import AcceleratorDevice, LaunchToken
from .memory import Memory
from .timeline import Span, SpanKind, Timeline

_SPAN_FOR_CATEGORY = {
    InstrCategory.SETUP: SpanKind.SETUP,
    InstrCategory.CALC: SpanKind.CALC,
    InstrCategory.COMPUTE: SpanKind.COMPUTE,
    InstrCategory.CONTROL: SpanKind.COMPUTE,
    InstrCategory.LAUNCH: SpanKind.SETUP,
    InstrCategory.SYNC: SpanKind.STALL,
}


class CoSimulator:
    """Discrete-event co-simulation of one host plus its accelerators."""

    def __init__(
        self,
        memory: Memory | None = None,
        cost_model: HostCostModel | None = None,
        functional: bool = True,
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.cost_model = cost_model or HostCostModel()
        self.functional = functional
        self.host_time = 0.0
        self.trace = Trace()
        self.timeline = Timeline()
        self._devices: dict[str, AcceleratorDevice] = {}
        #: category -> cycles, resolved lazily against the cost model (the
        #: model is caller-provided, so resolution waits until first charge)
        self._cycles_by_category: dict[InstrCategory, float] | None = None

    # -- devices ---------------------------------------------------------

    def device(self, accelerator: str) -> AcceleratorDevice:
        if accelerator not in self._devices:
            self._devices[accelerator] = AcceleratorDevice(
                get_accelerator(accelerator), self.memory
            )
        return self._devices[accelerator]

    @property
    def devices(self) -> dict[str, AcceleratorDevice]:
        return dict(self._devices)

    # -- host instruction charging -----------------------------------------

    def charge(self, instrs: list[Instr], label: str = "") -> None:
        """Execute host instructions back to back at the current time."""
        if not instrs:
            return
        # Inlined Timeline.record / Trace.append: this loop runs once per
        # simulated host instruction and dominates execution time.
        time = self.host_time
        spans = self.timeline.spans
        record = self.trace.instrs.append
        cycles_by_category = self._cycles_by_category
        if cycles_by_category is None:
            model = self.cost_model
            cycles_by_category = self._cycles_by_category = {
                category: model.category_overrides.get(
                    category, model.cycles_per_instr
                )
                for category in InstrCategory
            }
        for instr in instrs:
            cycles = cycles_by_category[instr.category]
            if cycles > 0:
                spans.append(
                    Span(
                        "host",
                        _SPAN_FOR_CATEGORY[instr.category],
                        time,
                        time + cycles,
                        label,
                    )
                )
            record(instr)
            time += cycles
        self.host_time = time

    def charge_one(self, instr: Instr, label: str = "") -> None:
        self.charge([instr], label)

    def stall_until(self, when: float, label: str = "") -> None:
        if when > self.host_time:
            self.timeline.record("host", SpanKind.STALL, self.host_time, when, label)
            self.host_time = when

    # -- accfg semantics -------------------------------------------------

    def exec_setup(self, accelerator: str, fields: dict[str, int]) -> None:
        """Perform one ``accfg.setup``: stall if required, then write."""
        device = self.device(accelerator)
        start = device.write_fields(fields, self.host_time)
        self.stall_until(start, "sequential-config stall")
        instrs = device.spec.setup_instrs_cached(tuple(fields))
        self.charge(instrs, f"setup {accelerator}")

    def exec_launch(
        self, accelerator: str, launch_fields: dict[str, int] | None = None
    ) -> LaunchToken:
        """Perform one ``accfg.launch``; returns the completion token."""
        device = self.device(accelerator)
        # The host must wait until the interface can accept a new launch:
        # with single-level staging that means the device is idle; deeper
        # launch queues only require a free queue slot.
        self.stall_until(device.accept_time(self.host_time), "launch barrier")
        if launch_fields:
            self.charge(
                device.spec.launch_field_instrs_cached(tuple(launch_fields)),
                f"launch-config {accelerator}",
            )
        self.charge(device.spec.launch_instrs_cached(), f"launch {accelerator}")
        token = device.launch(
            self.host_time, launch_fields or {}, functional=self.functional
        )
        self.timeline.record(
            accelerator, SpanKind.ACCEL, token.start, token.end, "macro-op"
        )
        return token

    def exec_await(self, token: LaunchToken) -> None:
        """Perform one ``accfg.await``: poll until the launch completes."""
        device = token.device
        self.charge(device.spec.sync_instrs_cached(), f"await {device.name}")
        self.stall_until(token.end, f"await {device.name}")

    # -- results ------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        device_end = max(
            (device.busy_until for device in self._devices.values()), default=0.0
        )
        return max(self.host_time, device_end)

    @property
    def total_ops(self) -> int:
        return sum(device.total_ops for device in self._devices.values())

    def performance(self) -> float:
        """Achieved throughput in ops/cycle."""
        cycles = self.total_cycles
        return self.total_ops / cycles if cycles else 0.0
