"""Host–accelerator co-simulation engine.

The :class:`CoSimulator` advances a single host-time cursor as the IR
interpreter executes operations, charging host instructions against the cost
model, driving accelerator devices (which run asynchronously until their
``busy_until`` time), recording a timeline, and accumulating the instruction
trace the roofline analysis consumes.

This replaces the paper's spike (instruction-accurate) and Verilator
(cycle-accurate) substrates with a discrete-event model that captures the
same first-order interaction: configuration cycles, stalls, and overlap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..backends.base import get_accelerator
from ..isa.instructions import HostCostModel, Instr, InstrCategory, sync_instr
from ..isa.trace import Trace
from .device import AcceleratorDevice, FaultError, LaunchToken
from .memory import Memory
from .timeline import Span, SpanKind, Timeline

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.model import FaultInjector
    from ..faults.recovery import RecoveryPolicy, ReliancePlan
    from ..ir.operation import Operation

_SPAN_FOR_CATEGORY = {
    InstrCategory.SETUP: SpanKind.SETUP,
    InstrCategory.CALC: SpanKind.CALC,
    InstrCategory.COMPUTE: SpanKind.COMPUTE,
    InstrCategory.CONTROL: SpanKind.COMPUTE,
    InstrCategory.LAUNCH: SpanKind.SETUP,
    InstrCategory.SYNC: SpanKind.STALL,
}


def resolve_category_cycles(
    cost_model: HostCostModel,
) -> dict[InstrCategory, float]:
    """Per-category cycle costs under ``cost_model``.

    The vectorizable charge hook: :meth:`CoSimulator.charge` resolves this
    table lazily per simulator, and the batch executor
    (:mod:`repro.engine.batch`) uses the same table to charge whole
    instruction runs as one ``k * cycles`` numpy bump per lane — identical
    totals, since per-instr costs depend only on the category.
    """
    return {
        category: cost_model.category_overrides.get(
            category, cost_model.cycles_per_instr
        )
        for category in InstrCategory
    }


class CoSimulator:
    """Discrete-event co-simulation of one host plus its accelerators."""

    def __init__(
        self,
        memory: Memory | None = None,
        cost_model: HostCostModel | None = None,
        functional: bool = True,
        faults: "FaultInjector | None" = None,
        recovery: "RecoveryPolicy | None" = None,
        reliance: "ReliancePlan | None" = None,
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.cost_model = cost_model or HostCostModel()
        self.functional = functional
        self.host_time = 0.0
        self.trace = Trace()
        self.timeline = Timeline()
        self._devices: dict[str, AcceleratorDevice] = {}
        #: category -> cycles, resolved lazily against the cost model (the
        #: model is caller-provided, so resolution waits until first charge)
        self._cycles_by_category: dict[InstrCategory, float] | None = None
        # -- fault injection / recovery runtime (repro.faults) -------------
        #: attached fault injector; None keeps the fault-free fast paths
        self.faults = faults
        if faults is not None and recovery is None:
            from ..faults.recovery import RecoveryPolicy as _Policy

            recovery = _Policy()
        self.recovery = recovery
        #: static minimal-re-setup planner (None falls back to full re-setup)
        self.reliance = reliance
        self.recovery_stats = None
        if faults is not None:
            from ..faults.recovery import RecoveryStats as _Stats

            self.recovery_stats = _Stats()
        #: host-side belief of every device's register file: all fields the
        #: host has successfully written (verified) — the re-setup source
        self._shadow: dict[str, dict[str, int]] = {}
        #: last hardware epoch the host observed per device
        self._epoch_seen: dict[str, int] = {}
        #: staged-path write faults per device, for degradation
        self._staged_faults: dict[str, int] = {}

    # -- devices ---------------------------------------------------------

    def device(self, accelerator: str) -> AcceleratorDevice:
        if accelerator not in self._devices:
            self._devices[accelerator] = AcceleratorDevice(
                get_accelerator(accelerator), self.memory
            )
        return self._devices[accelerator]

    @property
    def devices(self) -> dict[str, AcceleratorDevice]:
        return dict(self._devices)

    # -- host instruction charging -----------------------------------------

    def charge(self, instrs: list[Instr], label: str = "") -> None:
        """Execute host instructions back to back at the current time."""
        if not instrs:
            return
        # Inlined Timeline.record / Trace.append: this loop runs once per
        # simulated host instruction and dominates execution time.
        time = self.host_time
        spans = self.timeline.spans
        record = self.trace.instrs.append
        cycles_by_category = self._cycles_by_category
        if cycles_by_category is None:
            model = self.cost_model
            cycles_by_category = self._cycles_by_category = {
                category: model.category_overrides.get(
                    category, model.cycles_per_instr
                )
                for category in InstrCategory
            }
        for instr in instrs:
            cycles = cycles_by_category[instr.category]
            if cycles > 0:
                spans.append(
                    Span(
                        "host",
                        _SPAN_FOR_CATEGORY[instr.category],
                        time,
                        time + cycles,
                        label,
                    )
                )
            record(instr)
            time += cycles
        self.host_time = time

    def charge_one(self, instr: Instr, label: str = "") -> None:
        self.charge([instr], label)

    def stall_until(self, when: float, label: str = "") -> None:
        if when > self.host_time:
            self.timeline.record("host", SpanKind.STALL, self.host_time, when, label)
            self.host_time = when

    # -- accfg semantics -------------------------------------------------

    def exec_setup(
        self,
        accelerator: str,
        fields: dict[str, int],
        site: "Operation | None" = None,
    ) -> None:
        """Perform one ``accfg.setup``: stall if required, then write.

        ``site`` is the originating IR op when an engine can provide it;
        the recovery runtime uses it to plan minimal re-setup after state
        loss.  It is ignored on the fault-free fast path.
        """
        device = self.device(accelerator)
        if self.faults is not None:
            self._faulty_setup(device, fields, site)
            return
        start = device.write_fields(fields, self.host_time)
        self.stall_until(start, "sequential-config stall")
        instrs = device.spec.setup_instrs_cached(tuple(fields))
        self.charge(instrs, f"setup {accelerator}")

    def exec_launch(
        self,
        accelerator: str,
        launch_fields: dict[str, int] | None = None,
        site: "Operation | None" = None,
    ) -> LaunchToken:
        """Perform one ``accfg.launch``; returns the completion token."""
        device = self.device(accelerator)
        # The host must wait until the interface can accept a new launch:
        # with single-level staging that means the device is idle; deeper
        # launch queues only require a free queue slot.
        self.stall_until(device.accept_time(self.host_time), "launch barrier")
        if self.faults is not None:
            # The launch command is a config-plane interaction too: it reads
            # the hardware epoch, so a power cycle since the last interaction
            # is detected here — the exact point where a setup-hoisted
            # program relies on register retention.
            self._check_state_loss(device, site)
            self._faulty_launch_command(device, launch_fields)
        else:
            if launch_fields:
                self.charge(
                    device.spec.launch_field_instrs_cached(tuple(launch_fields)),
                    f"launch-config {accelerator}",
                )
            self.charge(device.spec.launch_instrs_cached(), f"launch {accelerator}")
        token = device.launch(
            self.host_time, launch_fields or {}, functional=self.functional
        )
        if self.faults is not None and launch_fields:
            # Launch-carried fields land in the register file and persist;
            # they are part of what a re-setup must be able to restore.
            self._shadow.setdefault(device.name, {}).update(
                {name: int(value) for name, value in launch_fields.items()}
            )
        self.timeline.record(
            accelerator, SpanKind.ACCEL, token.start, token.end, "macro-op"
        )
        return token

    def exec_await(self, token: LaunchToken) -> None:
        """Perform one ``accfg.await``: poll until the launch completes."""
        device = token.device
        self.charge(device.spec.sync_instrs_cached(), f"await {device.name}")
        if self.faults is not None:
            self._watchdog_await(device)
        self.stall_until(token.end, f"await {device.name}")

    # -- fault injection and the recovery runtime ---------------------------
    #
    # Everything below runs identically under the tree interpreter and the
    # compiled trace engine — the protocol lives here, in the simulator, so
    # the two engines cannot diverge on fault schedules or recovery actions.

    def exec_reset(self, accelerator: str) -> None:
        """An intentional ``accfg.reset``: the host *chose* to forget the
        register contents, so the recovery shadow forgets them too."""
        if accelerator in self._shadow:
            self._shadow[accelerator].clear()
        device = self._devices.get(accelerator)
        if device is not None:
            device.registers.clear()
            device.staged.clear()

    def _faulty_setup(
        self,
        device: AcceleratorDevice,
        fields: dict[str, int],
        site: "Operation | None",
    ) -> None:
        self._check_state_loss(device, site)
        self._verified_write(device, fields, f"setup {device.name}")

    def _check_state_loss(
        self, device: AcceleratorDevice, site: "Operation | None"
    ) -> None:
        """Draw, detect, and (when enabled) repair spontaneous state loss.

        Every configuration-plane interaction — a setup's register writes or
        the launch command itself — is a detection point: the device may
        have power-cycled at any time since the host last talked to it, and
        the epoch read surfaces that now.
        """
        from ..faults.model import FaultKind

        if self.faults.should(FaultKind.STATE_LOSS, device.name):
            device.power_cycle()
        self.charge_one(
            sync_instr("epoch", device.name), f"epoch-check {device.name}"
        )
        self.recovery_stats.verify_reads += 1
        if self._epoch_seen.get(device.name, 0) != device.hw_epoch:
            self._epoch_seen[device.name] = device.hw_epoch
            self.recovery_stats.state_losses += 1
            if not self.recovery.enabled:
                self.recovery_stats.unrecovered += 1
                raise FaultError(
                    f"state loss detected on '{device.name}' "
                    f"(hardware epoch advanced to {device.hw_epoch})"
                )
            self._resetup(device, site)

    def _resetup(self, device: AcceleratorDevice, site: "Operation | None") -> None:
        """Re-issue lost configuration after a detected power cycle."""
        shadow = self._shadow.get(device.name, {})
        strategy = self.recovery.resetup
        if strategy == "minimal" and site is not None and self.reliance is not None:
            restore = self.reliance.restore_set(site)
            names = sorted(name for name in shadow if restore.contains(name))
            known = self.reliance.known_retained(site)
        else:
            # Full re-setup: replay the host's entire shadow register file.
            names = sorted(shadow)
            known = frozenset()
        if not names:
            return
        stats = self.recovery_stats
        stats.resetup_fields += len(names)
        stats.resetup_known_fields += sum(1 for name in names if name in known)
        stats.resetup_bytes += device.spec.config_bytes(list(names))
        self._verified_write(
            device,
            {name: shadow[name] for name in names},
            f"re-setup {device.name}",
        )

    def _verified_write(
        self,
        device: AcceleratorDevice,
        fields: dict[str, int],
        label: str,
    ) -> None:
        """Write fields with read-back verification and bounded retry."""
        from ..faults.model import FaultKind

        faults = self.faults
        policy = self.recovery
        stats = self.recovery_stats
        spec = device.spec
        pending = {name: int(value) for name, value in fields.items()}
        attempt = 0
        while True:
            landed: dict[str, int] = {}
            injected = 0
            for name, value in pending.items():
                if faults.should(FaultKind.DROP_WRITE, device.name, name):
                    injected += 1
                    continue
                if faults.should(FaultKind.CORRUPT_WRITE, device.name, name):
                    injected += 1
                    field_spec = spec.fields.get(name)
                    bits = field_spec.bits if field_spec is not None else 64
                    landed[name] = faults.corrupt(value, bits)
                else:
                    landed[name] = value
            stats.write_faults += injected
            # The host issues every write instruction either way; faults are
            # in what *lands* in the registers.
            start = device.write_fields(landed, self.host_time)
            self.stall_until(start, "sequential-config stall")
            self.charge(spec.setup_instrs_cached(tuple(pending)), label)
            # Read-back verification: one status/register read per field.
            self.charge(
                [sync_instr("verify", device.name)] * len(pending),
                f"verify {device.name}",
            )
            stats.verify_reads += len(pending)
            effective = device.effective_config()
            failed = {
                name: value
                for name, value in pending.items()
                if effective.get(name) != value
            }
            if not failed:
                break
            if not policy.enabled:
                stats.unrecovered += 1
                raise FaultError(
                    f"configuration write verification failed on "
                    f"'{device.name}' (fields {', '.join(sorted(failed))})"
                )
            if attempt >= policy.max_retries:
                stats.unrecovered += 1
                raise FaultError(
                    f"unrecoverable configuration writes on '{device.name}' "
                    f"after {attempt} retries "
                    f"(fields {', '.join(sorted(failed))})"
                )
            stats.write_retries += 1
            if device.concurrent_now:
                count = self._staged_faults.get(device.name, 0) + 1
                self._staged_faults[device.name] = count
                if count >= policy.degrade_after:
                    self._degrade(device)
            self.stall_until(
                self.host_time + policy.backoff(attempt),
                f"write-retry backoff {device.name}",
            )
            pending = failed
            attempt += 1
        self._shadow.setdefault(device.name, {}).update(
            {name: int(value) for name, value in fields.items()}
        )

    def _degrade(self, device: AcceleratorDevice) -> None:
        """Concurrent -> sequential degradation after repeated staged-path
        faults: wait out the in-flight computation, commit what staging
        holds, then treat the device as sequentially configured."""
        self.stall_until(device.busy_until, f"degrade {device.name}")
        device.registers.update(device.staged)
        device.staged.clear()
        device.force_sequential = True
        self.recovery_stats.degradations += 1

    def _faulty_launch_command(
        self,
        device: AcceleratorDevice,
        launch_fields: dict[str, int] | None,
    ) -> None:
        """Issue the launch command, re-issuing on interface rejection."""
        from ..faults.model import FaultKind

        policy = self.recovery
        stats = self.recovery_stats
        attempt = 0
        while True:
            if launch_fields:
                self.charge(
                    device.spec.launch_field_instrs_cached(tuple(launch_fields)),
                    f"launch-config {device.name}",
                )
            self.charge(
                device.spec.launch_instrs_cached(), f"launch {device.name}"
            )
            # Acknowledge read: did the interface accept the command?
            self.charge_one(
                sync_instr("launch-ack", device.name),
                f"launch-ack {device.name}",
            )
            stats.verify_reads += 1
            if not self.faults.should(FaultKind.LAUNCH_REJECT, device.name):
                return
            stats.launch_rejects += 1
            if not policy.enabled:
                stats.unrecovered += 1
                raise FaultError(f"launch rejected on '{device.name}'")
            if attempt >= policy.max_retries:
                stats.unrecovered += 1
                raise FaultError(
                    f"launch on '{device.name}' rejected "
                    f"{attempt + 1} times (giving up)"
                )
            self.stall_until(
                self.host_time + policy.backoff(attempt),
                f"launch-retry backoff {device.name}",
            )
            attempt += 1

    def _watchdog_await(self, device: AcceleratorDevice) -> None:
        """Bounded-retry watchdog for a stalled completion poll."""
        from ..faults.model import FaultKind

        if not self.faults.should(FaultKind.AWAIT_STALL, device.name):
            return
        policy = self.recovery
        stats = self.recovery_stats
        stats.await_stalls += 1
        if not policy.enabled:
            stats.unrecovered += 1
            raise FaultError(
                f"await on '{device.name}' stalled "
                "(completion poll kept reading busy)"
            )
        polls = self.faults.stall_polls()
        for attempt in range(min(polls, policy.max_retries)):
            self.stall_until(
                self.host_time + policy.backoff(attempt),
                f"watchdog backoff {device.name}",
            )
            self.charge(
                device.spec.sync_instrs_cached(), f"watchdog poll {device.name}"
            )
            stats.watchdog_polls += 1
        if polls > policy.max_retries:
            stats.unrecovered += 1
            raise FaultError(
                f"await watchdog timeout on '{device.name}' after "
                f"{policy.max_retries} polls"
            )

    # -- results ------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        device_end = max(
            (device.busy_until for device in self._devices.values()), default=0.0
        )
        return max(self.host_time, device_end)

    @property
    def total_ops(self) -> int:
        return sum(device.total_ops for device in self._devices.values())

    def performance(self) -> float:
        """Achieved throughput in ops/cycle."""
        cycles = self.total_cycles
        return self.total_ops / cycles if cycles else 0.0
