"""Simulated memory.

A flat byte-addressed space backed by numpy arrays.  Workload generators
allocate buffers here and embed the returned base addresses into the IR as
integer constants; accelerator specs read and write matrices through the
same addresses during functional execution, so end-to-end numerics can be
checked against numpy references.

Addresses are bytes; row strides are in *elements* (matching how accelerator
stride registers are usually specified).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class MemoryError_(Exception):
    """Raised on bad simulated-memory accesses."""


@dataclass(frozen=True)
class Buffer:
    """An allocated region: base address plus its numpy backing store."""

    addr: int
    array: np.ndarray

    @property
    def end(self) -> int:
        return self.addr + self.array.nbytes


class MemorySnapshot:
    """A copy-on-write image of every buffer at snapshot time.

    Replaces the eager full-image copies the differential oracles used to
    take: creating a snapshot is O(#buffers) bookkeeping, and a buffer's
    bytes are duplicated only if something writes to it *after* the snapshot
    (via :meth:`Memory.write_matrix`, the sole runtime mutation path).  The
    oracles snapshot after execution finishes, so the common case copies
    nothing at all.  Iterating yields one array per buffer in allocation
    order, exactly like the old list of copies.

    Direct writes to ``buffer.array`` bypass the write barrier; workloads
    that scribble on their own arrays must do so before snapshotting.
    """

    def __init__(self, memory: "Memory") -> None:
        self._live: list[Buffer | None] = list(memory._buffers)
        self._copies: dict[int, np.ndarray] = {}
        memory._snapshots.append(self)

    def _before_write(self, buffer: Buffer) -> None:
        """Materialize ``buffer``'s bytes before they change underneath us."""
        for index, live in enumerate(self._live):
            if live is buffer:
                self._copies[index] = live.array.copy()
                self._live[index] = None

    def __len__(self) -> int:
        return len(self._live)

    def __getitem__(self, index: int) -> np.ndarray:
        live = self._live[index]
        if live is not None:
            return live.array
        return self._copies[index if index >= 0 else index + len(self._live)]

    def __iter__(self):
        for index in range(len(self._live)):
            yield self[index]


class Memory:
    """Byte-addressed memory composed of allocated numpy regions."""

    def __init__(self, base: int = 0x1000, alignment: int = 64) -> None:
        self._next = base
        self._alignment = alignment
        self._buffers: list[Buffer] = []
        self._snapshots: list[MemorySnapshot] = []

    def alloc(self, shape: tuple[int, ...] | int, dtype) -> Buffer:
        """Allocate a zeroed region and return its buffer."""
        array = np.zeros(shape, dtype=dtype)
        addr = self._next
        buffer = Buffer(addr, array)
        self._buffers.append(buffer)
        size = max(array.nbytes, 1)
        self._next = self._align(addr + size)
        return buffer

    def place(self, array: np.ndarray) -> Buffer:
        """Allocate a region initialized with (a copy of) ``array``."""
        buffer = self.alloc(array.shape, array.dtype)
        buffer.array[...] = array
        return buffer

    @property
    def buffers(self) -> tuple[Buffer, ...]:
        """Every allocated region, in allocation order (used by differential
        oracles to snapshot the whole image)."""
        return tuple(self._buffers)

    def snapshot(self) -> MemorySnapshot:
        """A copy-on-write image of the current buffer contents."""
        return MemorySnapshot(self)

    def duplicate(self) -> "Memory":
        """An independent memory with identical layout and contents.

        The batch executor fans one built image out to N lanes with this:
        addresses and allocation order are preserved exactly (the IR embeds
        them as constants), contents are copied buffer-by-buffer, and live
        snapshots are *not* carried over — the clone starts with none.
        """
        clone = Memory.__new__(Memory)
        clone._next = self._next
        clone._alignment = self._alignment
        clone._buffers = [
            Buffer(buffer.addr, buffer.array.copy()) for buffer in self._buffers
        ]
        clone._snapshots = []
        return clone

    def _align(self, addr: int) -> int:
        mask = self._alignment - 1
        return (addr + mask) & ~mask

    def buffer_at(self, addr: int) -> Buffer:
        """The buffer containing byte address ``addr``."""
        for buffer in self._buffers:
            if buffer.addr <= addr < buffer.end:
                return buffer
        raise MemoryError_(f"address {addr:#x} is not inside any allocation")

    def _flat_view(self, addr: int, dtype) -> tuple[np.ndarray, int]:
        buffer = self.buffer_at(addr)
        if np.dtype(dtype) != buffer.array.dtype:
            raise MemoryError_(
                f"access at {addr:#x} with dtype {np.dtype(dtype)} but region "
                f"holds {buffer.array.dtype}"
            )
        offset_bytes = addr - buffer.addr
        itemsize = buffer.array.dtype.itemsize
        if offset_bytes % itemsize:
            raise MemoryError_(f"misaligned access at {addr:#x}")
        return buffer.array.reshape(-1), offset_bytes // itemsize

    def read_matrix(
        self, addr: int, rows: int, cols: int, row_stride: int, dtype
    ) -> np.ndarray:
        """Read a ``rows x cols`` matrix; ``row_stride`` in elements."""
        flat, offset = self._flat_view(addr, dtype)
        out = np.empty((rows, cols), dtype=dtype)
        for r in range(rows):
            start = offset + r * row_stride
            if start + cols > flat.size:
                raise MemoryError_(
                    f"matrix read at {addr:#x} overruns its region "
                    f"(row {r}, stride {row_stride})"
                )
            out[r] = flat[start : start + cols]
        return out

    def write_matrix(
        self, addr: int, values: np.ndarray, row_stride: int
    ) -> None:
        """Write a matrix; ``row_stride`` in elements of the region dtype."""
        if self._snapshots:
            buffer = self.buffer_at(addr)
            for snap in self._snapshots:
                snap._before_write(buffer)
        flat, offset = self._flat_view(addr, values.dtype)
        rows, cols = values.shape
        for r in range(rows):
            start = offset + r * row_stride
            if start + cols > flat.size:
                raise MemoryError_(
                    f"matrix write at {addr:#x} overruns its region (row {r})"
                )
            flat[start : start + cols] = values[r]
