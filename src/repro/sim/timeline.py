"""Execution timelines.

Records what the host and each accelerator were doing over time, enabling
Figure-2/Figure-7-style visualizations of configuration overhead: host spans
for configuration, parameter calculation and stalls; accelerator spans for
macro-op execution; and the idle gaps in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SpanKind(str, Enum):
    SETUP = "setup"  # host writing configuration registers
    CALC = "calc"  # host computing configuration parameters
    COMPUTE = "compute"  # host payload computation / control
    STALL = "stall"  # host waiting for the accelerator
    ACCEL = "accel"  # accelerator executing a macro-op


_GLYPHS = {
    SpanKind.SETUP: "C",
    SpanKind.CALC: "c",
    SpanKind.COMPUTE: "h",
    SpanKind.STALL: ".",
    SpanKind.ACCEL: "X",
}


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open interval ``[start, end)`` of activity by one actor."""

    actor: str  # "host" or accelerator name
    kind: SpanKind
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Append-only list of spans with aggregation and ASCII rendering."""

    spans: list[Span] = field(default_factory=list)

    def record(
        self, actor: str, kind: SpanKind, start: float, end: float, label: str = ""
    ) -> None:
        if end > start:
            self.spans.append(Span(actor, kind, start, end, label))

    @property
    def end_time(self) -> float:
        return max((span.end for span in self.spans), default=0.0)

    def actors(self) -> list[str]:
        seen: list[str] = []
        for span in self.spans:
            if span.actor not in seen:
                seen.append(span.actor)
        return seen

    def busy_time(self, actor: str, kind: SpanKind | None = None) -> float:
        return sum(
            span.duration
            for span in self.spans
            if span.actor == actor and (kind is None or span.kind is kind)
        )

    def idle_time(self, actor: str) -> float:
        """Time within [0, end_time) the actor spent doing nothing at all."""
        intervals = sorted(
            (span.start, span.end) for span in self.spans if span.actor == actor
        )
        covered = 0.0
        cursor = 0.0
        for start, end in intervals:
            if end <= cursor:
                continue
            covered += end - max(start, cursor)
            cursor = max(cursor, end)
        return self.end_time - covered

    def render_ascii(self, width: int = 72) -> str:
        """Render the timeline as one text row per actor.

        Glyphs: ``C`` config writes, ``c`` parameter calculation, ``h`` other
        host work, ``.`` stall, ``X`` accelerator compute, space = idle.
        """
        total = self.end_time
        if total <= 0:
            return "(empty timeline)"
        lines = []
        name_width = max(len(a) for a in self.actors())
        for actor in self.actors():
            row = [" "] * width
            for span in self.spans:
                if span.actor != actor:
                    continue
                lo = int(span.start / total * width)
                hi = max(lo + 1, int(span.end / total * width))
                glyph = _GLYPHS[span.kind]
                for i in range(lo, min(hi, width)):
                    row[i] = glyph
            lines.append(f"{actor:<{name_width}} |{''.join(row)}|")
        scale = f"{'':<{name_width}}  0{'':{width - 2}}{total:.0f} cycles"
        lines.append(scale)
        return "\n".join(lines)
