"""Tests for the output-stationary outlook experiment."""

import pytest

from repro.experiments import outlook_os_gemmini
from repro.experiments.common import run_workload
from repro.ir import verify_operation
from repro.workloads.matmul import build_gemmini_os_matmul


class TestOsWorkload:
    def test_ir_verifies(self):
        verify_operation(build_gemmini_os_matmul(32).module)

    @pytest.mark.parametrize("pipeline", ["none", "volatile-baseline", "full"])
    def test_numerics(self, pipeline):
        result = run_workload(build_gemmini_os_matmul(32), pipeline)
        assert result.correct

    def test_os_carries_more_config_than_ws(self):
        from repro.workloads import build_gemmini_matmul

        os_run = run_workload(
            build_gemmini_os_matmul(32), "volatile-baseline", functional=False
        )
        ws_run = run_workload(
            build_gemmini_matmul(32), "volatile-baseline", functional=False
        )
        assert os_run.metrics.config_bytes > ws_run.metrics.config_bytes


class TestPrediction:
    @pytest.fixture(scope="class")
    def result(self):
        return outlook_os_gemmini.run(sizes=(32, 64), functional=False)

    def test_paper_prediction_holds(self, result):
        assert result.prediction_holds
        assert result.os_geomean > result.ws_geomean

    def test_uplifts_positive(self, result):
        for row in result.rows:
            assert row.ws_uplift >= 1.0
            assert row.os_uplift >= 1.0
