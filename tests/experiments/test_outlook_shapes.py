"""Tests for the matrix-shape outlook experiment."""

import pytest

from repro.core.roofline import Boundness
from repro.experiments import outlook_shapes


@pytest.fixture(scope="module")
def result():
    return outlook_shapes.run(functional=False)


class TestShapeSweep:
    def test_intensity_rises_with_inner_dimension(self, result):
        intensities = [row.baseline_i_oc for row in result.rows]
        assert intensities == sorted(intensities)

    def test_speedup_falls_with_intensity(self, result):
        """Deeper in the configuration-bound region -> more to gain."""
        speedups = [row.speedup for row in result.rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_regions_transition(self, result):
        regions = [result.boundness(row) for row in result.rows]
        assert regions[0] is Boundness.CONFIG_BOUND
        assert regions[-1] is Boundness.COMPUTE_BOUND

    def test_all_speedups_positive(self, result):
        for row in result.rows:
            assert row.speedup > 1.0

    def test_constant_volume(self, result):
        volumes = {
            row.shape[0] * row.shape[1] * row.shape[2] for row in result.rows
        }
        assert len(volumes) == 1
