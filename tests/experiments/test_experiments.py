"""Integration tests over the experiment harnesses (small sizes)."""

import pytest

from repro.core import Boundness
from repro.experiments import (
    example_4_6,
    fig10_gemmini,
    fig11_opengemm,
    fig12_roofline,
    figure4_rooflines,
    table1_fields,
)


class TestTable1:
    def test_matches_paper(self):
        result = table1_fields.run()
        assert len(result.fields) == 17
        assert result.total_bits == 616
        widths = {f.name: f.bits for f in result.fields}
        assert widths == {
            "A": 64, "B": 64, "D": 64, "C": 64,
            "I": 16, "J": 16, "K": 16,
            "pad_I": 16, "pad_J": 16, "pad_K": 16,
            "stride_A": 64, "stride_B": 64, "stride_D": 64, "stride_C": 64,
            "act": 6, "A_transpose": 1, "B_transpose": 1,
        }

    def test_grouped_rows_cover_every_field(self):
        assert sum(
            row[0].count(",") + 1 for row in table1_fields.TABLE1_ROWS
        ) == 17


class TestExample46:
    def test_reproduces_paper_numbers(self):
        result = example_4_6.run()
        assert result.config_bandwidth == pytest.approx(1.78, abs=0.01)
        assert result.i_oc == pytest.approx(205.19, abs=0.01)
        assert result.utilization_theoretical == pytest.approx(0.4149, abs=0.005)
        assert result.effective_bandwidth == pytest.approx(0.913, abs=0.001)
        assert result.utilization_effective == pytest.approx(0.2678, abs=0.001)


class TestFigure4:
    def test_sequential_strictly_below_concurrent(self):
        result = figure4_rooflines.run()
        for _, sequential, concurrent in result.samples:
            assert sequential < concurrent

    def test_gap_maximal_near_knee(self):
        result = figure4_rooflines.run(points=201)
        assert result.max_gap_location() == pytest.approx(result.knee, rel=0.05)

    def test_roofsurface_monotone(self):
        surface = figure4_rooflines.run_roofsurface()
        for row in surface.surface:
            assert all(b >= a for a, b in zip(row, row[1:]))


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_gemmini.run(sizes=(16, 32, 64))

    def test_paper_claim_no_gain_at_single_tile(self, result):
        assert result.rows[0].uplift == pytest.approx(1.0, abs=0.02)

    def test_paper_claim_accfg_never_slower(self, result):
        for row in result.rows:
            assert row.uplift >= 0.99

    def test_paper_claim_positive_geomean(self, result):
        # Paper: ~11% geomean; we accept the 0-50% band (shape, not number).
        assert 1.0 <= result.geomean_uplift <= 1.5

    def test_utilization_rises_with_size(self, result):
        utils = [row.baseline_utilization for row in result.rows]
        assert utils == sorted(utils)

    def test_utilization_in_band(self, result):
        # Paper reports 26.78% attainable at size 64 for the baseline.
        size64 = next(r for r in result.rows if r.size == 64)
        assert 0.08 <= size64.baseline_utilization <= 0.45


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_opengemm.run(sizes=(16, 32, 64))

    def test_paper_claim_dedup_helps(self, result):
        for row in result.rows:
            assert row.speedup("dedup") > 1.1

    def test_paper_claim_overlap_helps(self, result):
        for row in result.rows:
            assert row.speedup("overlap") > 1.0

    def test_paper_claim_both_best(self, result):
        for row in result.rows:
            assert row.speedup("full") >= row.speedup("dedup") * 0.99
            assert row.speedup("full") >= row.speedup("overlap") * 0.99

    def test_paper_claim_geomean_band(self, result):
        # Paper: 1.99x geomean (full sweep); small-size subset stays in band.
        assert 1.5 <= result.geomean_speedup() <= 3.0

    def test_performance_monotone_in_size(self, result):
        perfs = [row.performance("full") for row in result.rows]
        assert perfs == sorted(perfs)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_roofline.run(sizes=(32, 64))

    def test_dedup_moves_right_and_up(self, result):
        for size in (32, 64):
            base = result.point(size, "baseline")
            dedup = result.point(size, "dedup")
            assert dedup.i_oc > base.i_oc * 2
            assert dedup.performance > base.performance

    def test_overlap_moves_up_not_right(self, result):
        for size in (32, 64):
            base = result.point(size, "baseline")
            overlap = result.point(size, "overlap")
            assert overlap.performance > base.performance
            # I_OC roughly unchanged (one extra pipelined setup per loop).
            assert overlap.i_oc == pytest.approx(base.i_oc, rel=0.15)

    def test_paper_claim_dedup_exits_config_bound_region(self, result):
        assert result.boundness(64, "baseline") is Boundness.CONFIG_BOUND
        assert result.boundness(64, "dedup") is Boundness.COMPUTE_BOUND

    def test_points_below_concurrent_roofline(self, result):
        roofline = result.roofline
        for point in result.points:
            assert point.performance <= roofline.attainable_concurrent(point.i_oc) * 1.05
