"""Tests for the Figure 2/7 timeline experiment."""

import pytest

from repro.experiments import fig2_timeline


@pytest.fixture(scope="module")
def result():
    return fig2_timeline.run(size=16)


class TestOverheadDefinition:
    def test_accelerator_idle_is_overhead(self, result):
        baseline = result.breakdown("baseline")
        # Figure 2's claim: a configuration-bound program spends most of its
        # time with the accelerator idle.
        assert baseline.overhead_fraction > 0.5

    def test_accounting_consistent(self, result):
        for breakdown in result.breakdowns.values():
            assert (
                breakdown.accel_busy_cycles + breakdown.accel_idle_cycles
                == pytest.approx(breakdown.total_cycles)
            )
            assert breakdown.config_cycles < breakdown.total_cycles


class TestOptimizationEffects:
    def test_dedup_shrinks_config_bursts(self, result):
        assert (
            result.breakdown("dedup").config_cycles
            < result.breakdown("baseline").config_cycles
        )

    def test_overlap_shrinks_idle_not_config(self, result):
        dedup = result.breakdown("dedup")
        full = result.breakdown("full")
        # Overlap does not remove configuration work; it hides it.
        assert full.accel_idle_cycles < dedup.accel_idle_cycles
        assert full.host_stall_cycles < dedup.host_stall_cycles

    def test_overhead_strictly_decreasing(self, result):
        fractions = [
            result.breakdown(v).overhead_fraction
            for v in ("baseline", "dedup", "full")
        ]
        assert fractions[0] > fractions[1] > fractions[2]

    def test_accelerator_work_is_invariant(self, result):
        busy = {
            v: result.breakdown(v).accel_busy_cycles
            for v in ("baseline", "dedup", "full")
        }
        assert busy["baseline"] == busy["dedup"] == busy["full"]

    def test_render(self, result):
        art = result.breakdown("full").timeline.render_ascii(width=60)
        assert "host" in art and "opengemm" in art
