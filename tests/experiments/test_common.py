"""Tests for the shared experiment plumbing."""

import pytest

from repro.experiments.common import ExperimentRun, run_workload
from repro.workloads import build_opengemm_matmul


class TestRunWorkload:
    def test_functional_run_checks_numerics(self):
        run = run_workload(build_opengemm_matmul(16), "full")
        assert isinstance(run, ExperimentRun)
        assert run.correct
        assert run.accelerator == "opengemm"
        assert run.size == 16
        assert run.pipeline == "full"

    def test_timing_only_run_skips_check(self):
        run = run_workload(build_opengemm_matmul(16), "full", functional=False)
        assert run.correct  # vacuously true: no numerics executed
        assert run.cycles > 0

    def test_host_cost_model_comes_from_spec(self):
        """OpenGeMM runs with the 1-cycle Snitch model, not the default 3."""
        run = run_workload(build_opengemm_matmul(16), "baseline", functional=False)
        stats_cycles = run.metrics.setup_cycles
        # 25 CSRs + launch per tile at 1 cycle each; with the default
        # 3-cycle model this would be 3x larger.
        tiles = (16 // 8) ** 2
        assert stats_cycles == pytest.approx(tiles * (25 + 2))

    def test_performance_property(self):
        run = run_workload(build_opengemm_matmul(16), "full", functional=False)
        assert run.performance == pytest.approx(
            run.metrics.total_ops / run.metrics.total_cycles
        )

    def test_pipeline_actually_applied(self):
        base = run_workload(build_opengemm_matmul(16), "baseline", functional=False)
        full = run_workload(build_opengemm_matmul(16), "full", functional=False)
        assert full.cycles < base.cycles
