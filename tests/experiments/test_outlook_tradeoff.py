"""Tests for the reconfigurability trade-off experiment (Figure 1's claim)."""

import pytest

from repro.experiments import outlook_tradeoff


@pytest.fixture(scope="module")
def result():
    return outlook_tradeoff.run(knob_counts=(0, 8, 24))


class TestTradeoffCurve:
    def test_baseline_utilization_decays_with_knobs(self, result):
        utils = [row.baseline_utilization for row in result.rows]
        assert utils == sorted(utils, reverse=True)
        assert utils[-1] < utils[0]  # strictly worse with more knobs

    def test_optimized_flow_decays_much_less(self, result):
        assert result.optimized_decay > result.baseline_decay

    def test_compiler_recovery_grows_with_flexibility(self, result):
        """The more knobs, the more the optimizer has to win back."""
        recoveries = [row.recovered for row in result.rows]
        assert recoveries == sorted(recoveries)

    def test_optimized_always_at_least_baseline(self, result):
        for row in result.rows:
            assert row.optimized_utilization >= row.baseline_utilization

    def test_zero_knob_point_matches_plain_toyvec_shape(self, result):
        base = result.rows[0]
        assert 0 < base.baseline_utilization < base.optimized_utilization <= 1
