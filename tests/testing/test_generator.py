"""Tests for the typed random-program generator (repro.testing.generator)."""

import random

import numpy as np

from repro.interp import run_module
from repro.ir import verify_operation
from repro.sim import CoSimulator
from repro.testing import (
    PROFILES,
    Branch,
    Invoke,
    Loop,
    ProgramSpec,
    ZERO_TRIPS,
    build_memory,
    build_spec,
    generate_spec,
    walk_invokes,
)


def specs_for(backend: str, count: int, start_seed: int = 0):
    return [
        generate_spec(random.Random(start_seed + i), backend)
        for i in range(count)
    ]


class TestDeterminism:
    def test_same_seed_same_spec(self):
        for backend in PROFILES:
            a = generate_spec(random.Random(42), backend)
            b = generate_spec(random.Random(42), backend)
            assert a == b

    def test_same_spec_same_module_text(self):
        spec = generate_spec(random.Random(7), "gemmini")
        assert str(build_spec(spec, 3).module) == str(build_spec(spec, 3).module)

    def test_memory_image_is_pure_function_of_backend_and_seed(self):
        for backend in PROFILES:
            mem_a, pools_a = build_memory(backend, 99)
            mem_b, pools_b = build_memory(backend, 99)
            for label, buffers in pools_a.items():
                for buf_a, buf_b in zip(buffers, pools_b[label]):
                    assert buf_a.addr == buf_b.addr
                    assert (buf_a.array == buf_b.array).all()

    def test_different_memory_seed_changes_contents_not_addresses(self):
        _, pools_a = build_memory("toyvec", 0)
        _, pools_b = build_memory("toyvec", 1)
        some_content_differs = False
        for label, buffers in pools_a.items():
            for buf_a, buf_b in zip(buffers, pools_b[label]):
                assert buf_a.addr == buf_b.addr
                if not (buf_a.array == buf_b.array).all():
                    some_content_differs = True
        assert some_content_differs


class TestDialectCoverage:
    """Over a modest seed range the generator must exercise the whole
    surface the fuzzer claims to cover."""

    def test_nested_control_flow_appears(self):
        found_loop = found_branch = found_zero_trip = found_else = False
        for spec in specs_for("toyvec", 150):
            for stmt in spec.stmts:
                if isinstance(stmt, Loop):
                    found_loop = True
                    if stmt.trips == ZERO_TRIPS:
                        found_zero_trip = True
                if isinstance(stmt, Branch):
                    found_branch = True
                    if stmt.orelse:
                        found_else = True
        assert found_loop and found_branch
        assert found_zero_trip and found_else

    def test_multi_accelerator_modules_appear(self):
        for backend, profile in PROFILES.items():
            if len(profile.accelerators) < 2:
                continue
            accelerators_seen = set()
            for spec in specs_for(backend, 100):
                accelerators_seen |= {
                    inv.accelerator for inv in walk_invokes(spec.stmts)
                }
            assert set(profile.accelerators) <= accelerators_seen

    def test_partial_setups_and_launchless_setups_appear(self):
        partial = launchless = dynamic = False
        for spec in specs_for("gemmini", 150):
            for invoke in walk_invokes(spec.stmts):
                if 0 < len(invoke.fields) < len(
                    PROFILES["gemmini"].options[invoke.accelerator]
                ):
                    partial = True
                if not invoke.launch:
                    launchless = True
                if any(f.dynamic for f in invoke.fields):
                    dynamic = True
        assert partial and launchless and dynamic


class TestBuiltProgramsExecute:
    def test_every_backend_builds_verified_runnable_modules(self):
        for backend in PROFILES:
            for i in range(10):
                spec = generate_spec(random.Random(i), backend)
                built = build_spec(spec, memory_seed=i)
                verify_operation(built.module)
                sim = CoSimulator(memory=built.memory)
                run_module(built.module, sim, args=built.args)

    def test_launch_count_matches_spec(self):
        """With cond True and no loops/branches, each launching invoke fires
        exactly once."""
        spec = ProgramSpec(
            backend="toyvec",
            stmts=(
                Invoke("toyvec", (), launch=True),
                Invoke("toyvec", (), launch=False),
                Loop(3, (Invoke("toyvec", (), launch=True),)),
                Loop(ZERO_TRIPS, (Invoke("toyvec", (), launch=True),)),
                Branch((Invoke("toyvec", (), launch=True),)),
            ),
            cond_value=True,
        )
        built = build_spec(spec)
        sim = CoSimulator(memory=built.memory)
        run_module(built.module, sim, args=built.args)
        # 1 straight-line + 3 loop trips + 0 zero-trip + 1 taken branch
        assert sim.device("toyvec").launch_count == 5

    def test_false_condition_skips_branch_bodies(self):
        spec = ProgramSpec(
            backend="toyvec",
            stmts=(Branch((Invoke("toyvec", (), launch=True),)),),
            cond_value=False,
        )
        built = build_spec(spec)
        sim = CoSimulator(memory=built.memory)
        run_module(built.module, sim, args=built.args)
        assert sim.devices.get("toyvec") is None or (
            sim.device("toyvec").launch_count == 0
        )


class TestLegacySurface:
    """The promoted hypothesis API stays importable from the package (the
    property tests import it through the tests/properties shim)."""

    def test_legacy_names_available(self):
        from repro.testing.generator import (
            FIELD_NAMES,
            VECTOR_LENGTH,
            GeneratedProgram,
            Invocation,
            build,
            golden_result,
        )

        assert VECTOR_LENGTH == 16
        assert "ptr_x" in FIELD_NAMES
        program = GeneratedProgram(
            invocations=(Invocation((("op", 1),), True, 0),)
        )
        built = build(program)
        verify_operation(built.module)
        golden = golden_result(program)
        assert all(isinstance(arr, np.ndarray) for arr in golden)
