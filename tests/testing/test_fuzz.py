"""Tests for the fuzz driver and its selftest (repro.testing.fuzz)."""

import os

from repro.passes import PIPELINES
from repro.testing import (
    broken_dedup_pipeline,
    fuzz,
    program_seed,
    replay,
    run_selftest,
)


class TestProgramSeed:
    def test_process_independent_and_distinct(self):
        # Values are a stable contract: reproducer seeds must mean the same
        # thing in every interpreter session (no salted hash()).
        assert program_seed(0, "toyvec", 0) == program_seed(0, "toyvec", 0)
        seeds = {
            program_seed(s, backend, i)
            for s in range(3)
            for backend in ("toyvec", "gemmini", "opengemm")
            for i in range(10)
        }
        assert len(seeds) == 90

    def test_backend_changes_the_stream(self):
        assert program_seed(0, "toyvec", 1) != program_seed(0, "gemmini", 1)


class TestCleanFuzz:
    def test_registered_pipelines_survive_smoke_run(self):
        report = fuzz(seed=0, iterations=8, corpus_dir=None)
        assert report.ok, report.summary()
        assert report.programs_run == 8 * 3  # three backend profiles

    def test_backend_filter(self):
        report = fuzz(seed=0, iterations=2, backends=("gemmini",), corpus_dir=None)
        assert report.backends == ("gemmini",)
        assert report.programs_run == 2

    def test_unknown_backend_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown backend"):
            fuzz(backends=("not-a-backend",), corpus_dir=None)


class TestBrokenPassDetection:
    def test_broken_dedup_caught_shrunk_and_replayable(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        pipelines = {
            "none": PIPELINES["none"],
            "baseline": PIPELINES["baseline"],
            "dedup-broken": broken_dedup_pipeline,
        }
        report = fuzz(
            seed=0,
            iterations=25,
            backends=("toyvec",),
            pipelines=pipelines,
            corpus_dir=corpus,
            max_failures=1,
        )
        assert not report.ok
        finding = report.failures[0]
        assert finding.failure.pipeline == "dedup-broken"
        assert finding.failure.oracle == "functional"
        # Shrinking got it down to a handful of invocations.
        assert finding.spec.count_invokes() <= 3
        # The reproducer exists and replays to the same failure.
        assert finding.reproducer_path and os.path.exists(finding.reproducer_path)
        observed = replay(
            finding.reproducer_path,
            pipelines={"dedup-broken": broken_dedup_pipeline},
        )
        assert any(
            f.oracle == finding.failure.oracle
            and f.pipeline == finding.failure.pipeline
            for f in observed
        )

    def test_selftest_end_to_end(self, tmp_path):
        result = run_selftest(corpus_dir=str(tmp_path / "corpus"))
        assert result.caught
        assert result.replayed
        assert result.ok
        assert "CAUGHT" in result.summary()

    def test_max_failures_stops_early(self):
        pipelines = {
            "none": PIPELINES["none"],
            "baseline": PIPELINES["baseline"],
            "dedup-broken": broken_dedup_pipeline,
        }
        report = fuzz(
            seed=0,
            iterations=50,
            backends=("toyvec",),
            pipelines=pipelines,
            corpus_dir=None,
            shrink=False,
            max_failures=2,
        )
        assert len(report.failures) == 2
        assert report.programs_run < 50
