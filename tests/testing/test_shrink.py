"""Tests for greedy structural shrinking (repro.testing.shrink)."""

import random

from repro.testing import (
    Branch,
    FieldWrite,
    Invoke,
    Loop,
    ProgramSpec,
    generate_spec,
    shrink_candidates,
    shrink_spec,
    walk_invokes,
)


def _size(spec: ProgramSpec) -> tuple[int, int, int, int]:
    def nodes(stmts) -> int:
        total = 0
        for stmt in stmts:
            total += 1
            if isinstance(stmt, Loop):
                total += nodes(stmt.body)
            elif isinstance(stmt, Branch):
                total += nodes(stmt.then) + nodes(stmt.orelse)
        return total

    def trips(stmts) -> int:
        total = 0
        for stmt in stmts:
            if isinstance(stmt, Loop):
                total += max(stmt.trips, 0) + trips(stmt.body)
            elif isinstance(stmt, Branch):
                total += trips(stmt.then) + trips(stmt.orelse)
        return total

    fields = sum(len(inv.fields) for inv in walk_invokes(spec.stmts))
    flags = sum(
        inv.launch + sum(f.dynamic for f in inv.fields)
        for inv in walk_invokes(spec.stmts)
    )
    return (nodes(spec.stmts), fields, flags, trips(spec.stmts))


NESTED = ProgramSpec(
    backend="toyvec",
    stmts=(
        Invoke("toyvec", (FieldWrite("op", 1),), launch=True),
        Loop(
            3,
            (
                Invoke("toyvec", (FieldWrite("n", 0), FieldWrite("op", 2)),),
                Branch((Invoke("toyvec-seq", (), launch=True),)),
            ),
        ),
    ),
)


class TestCandidates:
    def test_every_candidate_is_strictly_smaller(self):
        for seed in range(20):
            spec = generate_spec(random.Random(seed), "toyvec")
            original = _size(spec)
            for candidate in shrink_candidates(spec):
                assert _size(candidate) < original

    def test_candidates_preserve_backend_and_condition(self):
        for candidate in shrink_candidates(NESTED):
            assert candidate.backend == NESTED.backend
            assert candidate.cond_value == NESTED.cond_value

    def test_deletion_comes_before_field_dropping(self):
        first = next(shrink_candidates(NESTED))
        # The first candidate deletes a whole top-level statement.
        assert len(first.stmts) == len(NESTED.stmts) - 1


class TestShrinkSpec:
    def test_shrinks_to_single_relevant_invoke(self):
        """A predicate caring only about one accelerator's invocation
        reduces the nested program to just that."""

        def still_fails(spec: ProgramSpec) -> bool:
            return any(
                inv.accelerator == "toyvec-seq"
                for inv in walk_invokes(spec.stmts)
            )

        shrunk = shrink_spec(NESTED, still_fails)
        assert still_fails(shrunk)
        invokes = list(walk_invokes(shrunk.stmts))
        assert len(invokes) == 1
        assert invokes[0].accelerator == "toyvec-seq"
        assert _size(shrunk) <= _size(NESTED)

    def test_predicate_never_true_returns_original(self):
        shrunk = shrink_spec(NESTED, lambda spec: False)
        assert shrunk == NESTED

    def test_respects_attempt_budget(self):
        calls = 0

        def expensive(spec: ProgramSpec) -> bool:
            nonlocal calls
            calls += 1
            return True

        shrink_spec(NESTED, expensive, max_attempts=5)
        assert calls <= 6

    def test_terminates_on_generated_programs(self):
        for seed in range(10):
            spec = generate_spec(random.Random(seed), "gemmini")
            shrunk = shrink_spec(spec, lambda s: s.count_invokes() >= 1)
            assert shrunk.count_invokes() == 1
