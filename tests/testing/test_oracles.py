"""Tests for the differential oracles (repro.testing.oracles)."""

import random

from repro.dialects import accfg
from repro.passes import PIPELINES, PassManager
from repro.passes.pass_manager import ModulePass
from repro.testing import (
    BASELINE_PIPELINES,
    broken_dedup_pipeline,
    check_subject,
    generate_spec,
    run_one,
    subject_for_spec,
    timing_slack,
)


def subject(seed: int = 0, backend: str = "toyvec"):
    spec = generate_spec(random.Random(seed), backend)
    return subject_for_spec(spec, memory_seed=seed)


class _PessimizePass(ModulePass):
    """Chain N redundant copies of the first non-empty setup: functionally
    a no-op (same values rewritten), but strictly slower."""

    name = "test-pessimize"

    def __init__(self, copies: int = 64) -> None:
        self.copies = copies

    def apply(self, module) -> None:
        for op in module.walk():
            if isinstance(op, accfg.SetupOp) and op.fields:
                prev = op
                for _ in range(self.copies):
                    clone = accfg.SetupOp.create(
                        op.accelerator, list(op.fields), in_state=prev.out_state
                    )
                    op.parent.insert_op_after(prev, clone)
                    prev = clone
                return


class _ForkStatePass(ModulePass):
    """Clone the first chained setup with the SAME input state: introduces a
    forked state chain (ACCFG004, error severity) without changing any
    register value the program observes."""

    name = "test-fork-state"

    def apply(self, module) -> None:
        for op in module.walk():
            if isinstance(op, accfg.SetupOp) and op.in_state is not None:
                clone = accfg.SetupOp.create(
                    op.accelerator, list(op.fields), in_state=op.in_state
                )
                op.parent.insert_op_after(op, clone)
                return


class TestCleanSubjects:
    def test_registered_pipelines_all_pass(self):
        for seed in range(5):
            for backend in ("toyvec", "gemmini", "opengemm"):
                failures = check_subject(subject(seed, backend))
                assert failures == [], [f.format() for f in failures]

    def test_run_one_returns_outcome_for_unoptimized(self):
        outcome = run_one(subject(), None)
        assert not hasattr(outcome, "oracle")
        assert outcome.total_cycles > 0
        assert outcome.image


class TestFunctionalOracle:
    def test_broken_dedup_is_caught(self):
        pipelines = {
            "none": PIPELINES["none"],
            "baseline": PIPELINES["baseline"],
            "dedup-broken": broken_dedup_pipeline,
        }
        caught = False
        for seed in range(30):
            failures = check_subject(subject(seed), pipelines)
            if any(
                f.oracle == "functional" and f.pipeline == "dedup-broken"
                for f in failures
            ):
                caught = True
                break
        assert caught, "functional oracle never fired on the broken dedup"


class TestTimingOracle:
    def test_pessimizing_pipeline_is_caught(self):
        pipelines = {
            "none": PIPELINES["none"],
            "baseline": PIPELINES["baseline"],
            "pessimized": lambda: PassManager([_PessimizePass()]),
        }
        caught = False
        for seed in range(10):
            failures = check_subject(subject(seed), pipelines)
            if any(
                f.oracle == "timing" and f.pipeline == "pessimized"
                for f in failures
            ):
                caught = True
                break
        assert caught, "timing oracle never fired on the pessimizer"

    def test_baseline_class_pipelines_are_exempt(self):
        assert {"none", "baseline", "volatile-baseline", "licm"} <= set(
            BASELINE_PIPELINES
        )

    def test_slack_scales_with_zero_trip_sites(self):
        assert timing_slack(0) < timing_slack(1) < timing_slack(2)


class TestLintOracle:
    def test_introduced_fork_error_is_caught(self):
        pipelines = {
            "none": PIPELINES["none"],
            "baseline": PIPELINES["baseline"],
            "forked": lambda: PassManager(
                [*PIPELINES["dedup"]().passes, _ForkStatePass()]
            ),
        }
        caught = False
        for seed in range(20):
            failures = check_subject(subject(seed), pipelines, timing=False)
            if any(
                f.oracle == "lint"
                and f.pipeline == "forked"
                and "ACCFG004" in f.message
                for f in failures
            ):
                caught = True
                break
        assert caught, "lint oracle never fired on the forked state chain"


class TestCrashOracle:
    def test_crashing_pass_reported_with_stage(self):
        class Boom(ModulePass):
            name = "test-boom"

            def apply(self, module) -> None:
                raise RuntimeError("kaboom")

        pipelines = {
            "none": PIPELINES["none"],
            "boom": lambda: PassManager([Boom()]),
        }
        failures = check_subject(subject(), pipelines, timing=False)
        crash = [f for f in failures if f.pipeline == "boom"]
        assert len(crash) == 1
        assert crash[0].oracle == "crash"
        assert "optimize" in crash[0].message
        assert "kaboom" in crash[0].message


class TestDriverDivergenceOracle:
    def test_divergent_pass_is_caught(self):
        from repro.dialects import arith
        from repro.ir import active_driver, i64, use_driver

        class DriverSensitive(ModulePass):
            """Leaves an extra (dead, harmless) constant behind, but only
            under the sweep driver: the two normal forms must differ."""

            name = "test-driver-sensitive"

            def apply(self, module) -> None:
                if active_driver() != "sweep":
                    return
                for op in module.walk():
                    if op.parent is not None:
                        op.parent.insert_op_before(
                            op, arith.ConstantOp.create(1234, i64)
                        )
                        return

        pipelines = {
            "none": PIPELINES["none"],
            "divergent": lambda: PassManager([DriverSensitive()]),
        }
        with use_driver("both"):
            failures = check_subject(subject(), pipelines, timing=False)
        assert any(
            f.oracle == "driver-divergence" and f.pipeline == "divergent"
            for f in failures
        ), [f.format() for f in failures]

    def test_registered_pipelines_have_no_divergence(self):
        from repro.ir import use_driver

        with use_driver("both"):
            failures = check_subject(subject(), timing=False)
        assert failures == [], [f.format() for f in failures]

    def test_check_only_runs_in_both_mode(self):
        # The sweep replay doubles pipeline cost, so it is pay-to-play:
        # outside REPRO_REWRITE_DRIVER=both the default run stays clean
        # without ever cloning for a second driver.
        from repro.ir import active_driver

        assert active_driver() == "worklist"
        failures = check_subject(subject(), timing=False)
        assert failures == [], [f.format() for f in failures]
