"""Tests for the reproducer corpus (repro.testing.corpus)."""

import os

import pytest

from repro.ir import parse_module
from repro.testing import (
    ReproducerMeta,
    broken_dedup_pipeline,
    build_spec,
    load_reproducer,
    replay,
    run_one,
    subject_for_reproducer,
    write_reproducer,
)
from repro.testing.generator import Invoke, Loop, ProgramSpec


def sample_meta(**overrides) -> ReproducerMeta:
    values = dict(
        backend="toyvec",
        pipeline="dedup",
        oracle="functional",
        seed=123,
        memory_seed=123,
        args=(1, 0),
        zero_trip_sites=0,
        message="memory image diverges in buffer #0 (1 element(s) differ)",
    )
    values.update(overrides)
    return ReproducerMeta(**values)


def sample_module_text() -> str:
    spec = ProgramSpec(
        backend="toyvec",
        stmts=(Loop(2, (Invoke("toyvec", (), launch=True),)),),
    )
    return str(build_spec(spec, memory_seed=123).module)


class TestRoundTrip:
    def test_write_then_load_preserves_everything(self, tmp_path):
        meta = sample_meta()
        text = sample_module_text()
        path = write_reproducer(str(tmp_path), meta, text)
        assert os.path.basename(path) == "toyvec-dedup-functional-s123.mlir"
        loaded = load_reproducer(path)
        assert loaded.meta == meta
        assert text in loaded.module_text

    def test_reproducer_is_plain_parseable_mlir(self, tmp_path):
        """The file must load with the stock parser — comment header and
        all — so it can be fed straight to `python -m repro opt`."""
        path = write_reproducer(str(tmp_path), sample_meta(), sample_module_text())
        with open(path) as handle:
            parse_module(handle.read(), path)

    def test_non_reproducer_file_rejected(self, tmp_path):
        path = tmp_path / "stray.mlir"
        path.write_text("builtin.module { }\n")
        with pytest.raises(ValueError, match="missing meta line"):
            load_reproducer(str(path))


class TestReplaySubject:
    def test_subject_rebuilds_identical_runs(self, tmp_path):
        path = write_reproducer(str(tmp_path), sample_meta(), sample_module_text())
        subject = subject_for_reproducer(load_reproducer(path))
        a = run_one(subject, None)
        b = run_one(subject, None)
        assert not hasattr(a, "oracle") and not hasattr(b, "oracle")
        assert a.total_cycles == b.total_cycles
        assert a.launch_counts == b.launch_counts
        for x, y in zip(a.image, b.image):
            assert (x == y).all()

    def test_replay_clean_for_fixed_pipeline(self, tmp_path):
        """A reproducer recorded against a (now fixed) pipeline replays to
        zero failures."""
        path = write_reproducer(str(tmp_path), sample_meta(), sample_module_text())
        assert replay(path) == []

    def test_replay_unknown_pipeline_raises(self, tmp_path):
        meta = sample_meta(pipeline="nonexistent-pass")
        path = write_reproducer(str(tmp_path), meta, sample_module_text())
        with pytest.raises(ValueError, match="not registered"):
            replay(path)

    def test_replay_accepts_pipeline_overrides(self, tmp_path):
        meta = sample_meta(pipeline="custom-broken")
        path = write_reproducer(str(tmp_path), meta, sample_module_text())
        failures = replay(path, pipelines={"custom-broken": broken_dedup_pipeline})
        # This module has no multi-field setups, so even the broken dedup
        # passes — the point is the override resolves and runs.
        assert failures == []
