"""Tests for the ``python -m repro fuzz`` subcommand."""

import os

import pytest

from repro.__main__ import main
from repro.testing import ReproducerMeta, write_reproducer
from repro.testing.generator import Invoke, ProgramSpec, build_spec


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--seed",
                "0",
                "--iterations",
                "3",
                "--backend",
                "toyvec",
                "--corpus-dir",
                str(tmp_path / "corpus"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "failures     : 0" in out

    def test_pipeline_filter_always_includes_references(self, capsys):
        code = main(
            [
                "fuzz",
                "--iterations",
                "1",
                "--backend",
                "toyvec",
                "--pipeline",
                "full",
                "--no-corpus",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pipelines: baseline, full, none" in out

    def test_unknown_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--backend", "bogus"])

    def test_selftest_exits_zero_and_reports_catch(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--selftest",
                "--corpus-dir",
                str(tmp_path / "corpus"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CAUGHT" in out
        assert "replays to the same failure" in out


class TestReplayCommand:
    def _write_clean_reproducer(self, tmp_path) -> str:
        spec = ProgramSpec(
            backend="toyvec", stmts=(Invoke("toyvec", (), launch=True),)
        )
        built = build_spec(spec, memory_seed=5)
        meta = ReproducerMeta(
            backend="toyvec",
            pipeline="full",
            oracle="functional",
            seed=5,
            memory_seed=5,
            args=tuple(built.args),
            message="stale failure",
        )
        return write_reproducer(str(tmp_path), meta, str(built.module))

    def test_replay_of_fixed_bug_reports_clean(self, tmp_path, capsys):
        path = self._write_clean_reproducer(tmp_path)
        code = main(["fuzz", "--replay", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "replays clean" in out

    def test_replay_missing_file_exits_two(self, capsys):
        code = main(["fuzz", "--replay", "/does/not/exist.mlir"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_replay_of_still_failing_bug_exits_one(
        self, tmp_path, capsys, monkeypatch
    ):
        """When the recorded failure still reproduces the command exits 1
        and prints it (a clean tree has no genuinely failing reproducer for
        a registered pipeline, so stub the replay result)."""
        import repro.testing as testing
        from repro.testing import OracleFailure

        path = self._write_clean_reproducer(tmp_path)
        monkeypatch.setattr(
            testing,
            "replay",
            lambda p: [OracleFailure("functional", "full", "still diverges")],
        )
        code = main(["fuzz", "--replay", path])
        out = capsys.readouterr().out
        assert code == 1
        assert "still diverges" in out

    def test_corpus_files_written_on_failure_are_replayable(self, tmp_path):
        """End-to-end through the CLI: selftest writes a corpus file whose
        name encodes the coordinates."""
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--selftest", "--corpus-dir", str(corpus)]) == 0
        files = os.listdir(corpus)
        assert len(files) == 1
        assert files[0].startswith("toyvec-dedup-broken-functional-s")
        assert files[0].endswith(".mlir")
