"""Tests for seed-range sharding and the parallel fuzz/experiment drivers."""

from repro.testing import fuzz, fuzz_sharded, parallel_map, shard_ranges
from repro.testing.parallel import _run_shard


def _square(value: int) -> int:
    return value * value


class TestShardRanges:
    def test_partitions_the_whole_range(self):
        for total in (0, 1, 7, 16, 100):
            for jobs in (1, 2, 3, 8):
                shards = shard_ranges(total, jobs)
                assert sum(count for _, count in shards) == total
                # Contiguous and in order: shard i starts where i-1 ended.
                cursor = 0
                for start, count in shards:
                    assert start == cursor
                    assert count > 0
                    cursor += count

    def test_even_split(self):
        assert shard_ranges(10, 2) == [(0, 5), (5, 5)]
        # The remainder spreads over the leading shards, one each.
        assert shard_ranges(10, 3) == [(0, 4), (4, 3), (7, 3)]

    def test_more_jobs_than_work(self):
        assert shard_ranges(2, 8) == [(0, 1), (1, 1)]
        assert shard_ranges(0, 4) == []


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [i * i for i in items]

    def test_single_job_runs_in_process(self):
        assert parallel_map(_square, [3], jobs=1) == [9]
        assert parallel_map(_square, [], jobs=4) == []


class TestShardedFuzz:
    def test_matches_sequential_run(self):
        sequential = fuzz(
            seed=0, iterations=9, backends=("toyvec",), corpus_dir=None
        )
        sharded = fuzz_sharded(
            jobs=3, seed=0, iterations=9, backends=("toyvec",), corpus_dir=None
        )
        assert sharded.programs_run == sequential.programs_run == 9
        assert sharded.ok == sequential.ok
        assert [
            (f.iteration, f.backend, f.failure.pipeline)
            for f in sharded.failures
        ] == [
            (f.iteration, f.backend, f.failure.pipeline)
            for f in sequential.failures
        ]

    def test_single_job_path(self):
        report = fuzz_sharded(
            jobs=1, seed=0, iterations=3, backends=("toyvec",), corpus_dir=None
        )
        assert report.jobs == 1
        assert report.programs_run == 3

    def test_reports_job_count(self):
        report = fuzz_sharded(
            jobs=2, seed=0, iterations=4, backends=("toyvec",), corpus_dir=None
        )
        assert report.jobs == 2
        assert "2 job(s)" in report.summary()

    def test_batch_engine_shards_match_sequential(self):
        # `fuzz --jobs N --engine batch` together: the batch-vs-scalar
        # lockstep cross-check must survive sharding with an identical
        # merged report (same programs, same verdicts, same failure list).
        sequential = fuzz(
            seed=0,
            iterations=8,
            backends=("toyvec",),
            corpus_dir=None,
            engine="batch",
        )
        sharded = fuzz_sharded(
            jobs=2,
            seed=0,
            iterations=8,
            backends=("toyvec",),
            corpus_dir=None,
            engine="batch",
        )
        assert sharded.jobs == 2
        assert sharded.programs_run == sequential.programs_run == 8
        assert sharded.ok == sequential.ok
        assert [
            (f.iteration, f.backend, f.failure.pipeline)
            for f in sharded.failures
        ] == [
            (f.iteration, f.backend, f.failure.pipeline)
            for f in sequential.failures
        ]

    def test_shards_generate_the_sequential_programs(self):
        # The generator must key programs on the *absolute* iteration index,
        # or shard boundaries would change what gets tested.
        whole = fuzz(
            seed=0, iterations=4, backends=("toyvec",), corpus_dir=None
        )
        tail = _run_shard(
            dict(
                seed=0,
                iterations=2,
                start_iteration=2,
                backends=("toyvec",),
                pipeline_names=None,
                corpus_dir=None,
            )
        )
        assert whole.programs_run == 4
        assert tail.programs_run == 2
        assert tail.ok == whole.ok


class TestShardedExperiments:
    def test_fig10_rows_match_sequential(self):
        from repro.experiments import fig10_gemmini

        sequential = fig10_gemmini.run(sizes=(16, 32), jobs=1)
        parallel = fig10_gemmini.run(sizes=(16, 32), jobs=2)
        assert [row.size for row in parallel.rows] == [16, 32]
        for seq_row, par_row in zip(sequential.rows, parallel.rows):
            assert seq_row.uplift == par_row.uplift
            assert seq_row.baseline.cycles == par_row.baseline.cycles
