"""Fuzzer robustness: per-iteration timeouts and worker crash isolation.

The hooks under test (``inject_hang`` / ``inject_crash``) exist precisely so
these paths can be exercised deterministically: a hang must become a
``timeout`` finding and let the run continue; a worker process that dies
must become a ``worker-crash`` finding instead of hanging the merge.
"""

from repro.testing import fuzz
from repro.testing.parallel import fuzz_sharded, shard_ranges


class TestIterationTimeout:
    def test_hang_becomes_timeout_finding(self):
        report = fuzz(
            seed=0,
            iterations=1,
            backends=("toyvec",),
            corpus_dir=None,
            iteration_timeout=0.2,
            inject_hang=0,
        )
        assert not report.ok
        [finding] = report.failures
        assert finding.failure.oracle == "timeout"
        assert "wall-clock budget" in finding.failure.message
        assert finding.backend == "toyvec"

    def test_run_continues_after_a_timeout(self):
        report = fuzz(
            seed=0,
            iterations=3,
            backends=("toyvec",),
            corpus_dir=None,
            iteration_timeout=0.2,
            inject_hang=1,
        )
        # Iterations 0 and 2 ran normally; only iteration 1 timed out.
        assert report.programs_run == 3
        assert [f.iteration for f in report.failures] == [1]

    def test_no_timeout_without_budget(self):
        report = fuzz(
            seed=0, iterations=2, backends=("toyvec",), corpus_dir=None
        )
        assert report.ok


class TestShardedCrashIsolation:
    def test_crashed_worker_becomes_finding(self):
        report = fuzz_sharded(
            jobs=2,
            seed=0,
            iterations=2,
            backends=("toyvec",),
            corpus_dir=None,
            inject_crash=1,
        )
        # Shard 0 (iteration 0) is clean; shard 1 (iteration 1) hard-exits.
        assert report.programs_run == 1
        [finding] = report.failures
        assert finding.failure.oracle == "worker-crash"
        assert "exit code 86" in finding.failure.message

    def test_worker_exception_becomes_finding(self):
        # An exception inside the worker (not a hard crash) is shipped back
        # over the queue and surfaced with its type and message.
        report = fuzz_sharded(
            jobs=2,
            seed=0,
            iterations=2,
            backends=("no-such-backend",),
            corpus_dir=None,
        )
        assert len(report.failures) == 2
        for finding in report.failures:
            assert finding.failure.oracle == "worker-crash"
            assert "ValueError" in finding.failure.message

    def test_hang_in_worker_surfaces_as_timeout(self):
        report = fuzz_sharded(
            jobs=2,
            seed=0,
            iterations=2,
            backends=("toyvec",),
            corpus_dir=None,
            iteration_timeout=0.2,
            inject_hang=0,
        )
        assert [f.failure.oracle for f in report.failures] == ["timeout"]
        assert report.programs_run == 2

    def test_single_shard_path_stays_in_process(self):
        report = fuzz_sharded(
            jobs=1, seed=0, iterations=2, backends=("toyvec",), corpus_dir=None
        )
        assert report.ok
        assert report.jobs == 1


class TestShardRanges:
    def test_covers_range_without_overlap(self):
        for total, jobs in ((10, 3), (2, 8), (7, 7), (1, 1)):
            shards = shard_ranges(total, jobs)
            seen = []
            for start, count in shards:
                seen.extend(range(start, start + count))
            assert seen == list(range(total))
