"""Tests for state tracing (paper, Section 5.3)."""

from repro.dialects import accfg, scf
from repro.ir import parse_module, verify_operation
from repro.passes import TraceStatesPass


def traced(text: str):
    module = parse_module(text)
    TraceStatesPass().apply(module)
    verify_operation(module)
    return module


def setups(module):
    return [op for op in module.walk() if isinstance(op, accfg.SetupOp)]


class TestStraightLine:
    def test_consecutive_setups_chained(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2 = setups(module)
        assert s2.in_state is s1.out_state

    def test_existing_chain_untouched(self):
        text = """
        func.func @f(%x : i64) -> () {
          %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          %s2 = accfg.setup on "toyvec" from %s1 ("op" = %x : i64) : !accfg.state<"toyvec">
          func.return
        }
        """
        module = traced(text)
        s1, s2 = setups(module)
        assert s2.in_state is s1.out_state
        # idempotency
        TraceStatesPass().apply(module)
        assert s2.in_state is s1.out_state
        assert len(setups(module)) == 2

    def test_distinct_accelerators_independent(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "gemmini" ("I" = %x : i64) : !accfg.state<"gemmini">
              %s3 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2, s3 = setups(module)
        assert s3.in_state is s1.out_state
        assert s2.in_state is None

    def test_unknown_op_clobbers(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              "foreign.mystery"() : () -> ()
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2 = setups(module)
        assert s2.in_state is None

    def test_effects_none_preserves(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              "foreign.print"() {accfg.effects = "none"} : () -> ()
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2 = setups(module)
        assert s2.in_state is s1.out_state

    def test_reset_clobbers(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              accfg.reset %s1
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2 = setups(module)
        assert s2.in_state is None

    def test_launch_await_preserve_state(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s1 : !accfg.token<"toyvec">
              accfg.await %t
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2 = setups(module)
        assert s2.in_state is s1.out_state


class TestLoops:
    def test_state_threaded_through_loop(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.for %i = %c0 to %c4 step %c1 {
                %s = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                %t = accfg.launch %s : !accfg.token<"toyvec">
                accfg.await %t
                scf.yield
              }
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        # One iter arg of state type was added, initialized with %s0.
        assert len(loop.iter_args) == 1
        assert isinstance(loop.iter_args[0].type, accfg.StateType)
        s0 = setups(module)[0]
        assert loop.iter_inits[0] is s0.out_state
        inner = setups(module)[1]
        assert inner.in_state is loop.iter_args[0]
        # The final state is yielded.
        assert loop.yield_op.operands[-1] is inner.out_state

    def test_anchor_materialized_when_no_prior_state(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                %s = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """
        )
        all_setups = setups(module)
        assert len(all_setups) == 2
        anchor = all_setups[0]
        assert anchor.fields == ()
        assert anchor.parent.parent_op.name == "func.func"

    def test_clobbering_loop_not_threaded(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.for %i = %c0 to %c4 step %c1 {
                %s = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                "foreign.mystery"() : () -> ()
                scf.yield
              }
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert len(loop.iter_args) == 0
        # The post-loop setup has unknown input state.
        assert setups(module)[-1].in_state is None

    def test_loop_without_accfg_preserves_state(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.for %i = %c0 to %c4 step %c1 {
                %v = arith.addi %x, %x : i64
                scf.yield
              }
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s0, s2 = setups(module)
        assert s2.in_state is s0.out_state

    def test_nested_loops_threaded(self):
        module = traced(
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.for %i = %c0 to %c4 step %c1 {
                scf.for %j = %c0 to %c4 step %c1 {
                  %s = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                  scf.yield
                }
                scf.yield
              }
              func.return
            }
            """
        )
        loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
        assert all(len(loop.iter_args) == 1 for loop in loops)
        verify_operation(module)


class TestBranches:
    def test_if_with_setups_joined(self):
        module = traced(
            """
            func.func @f(%c : i1, %x : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                scf.yield
              } else {
                scf.yield
              }
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        if_op = next(op for op in module.walk() if isinstance(op, scf.IfOp))
        assert len(if_op.results) == 1
        assert isinstance(if_op.results[0].type, accfg.StateType)
        # The branch setup chains from the incoming state.
        branch_setup = setups(module)[1]
        assert branch_setup.in_state is setups(module)[0].out_state
        # The post-if setup consumes the joined state.
        post = setups(module)[-1]
        assert post.in_state is if_op.results[0]

    def test_if_without_else_gets_one(self):
        module = traced(
            """
            func.func @f(%c : i1, %x : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """
        )
        if_op = next(op for op in module.walk() if isinstance(op, scf.IfOp))
        assert if_op.has_else
        verify_operation(module)

    def test_clobbering_branch_pessimizes(self):
        module = traced(
            """
            func.func @f(%c : i1, %x : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                "foreign.mystery"() : () -> ()
                scf.yield
              } else {
                scf.yield
              }
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        post = setups(module)[-1]
        assert post.in_state is None
