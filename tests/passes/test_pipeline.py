"""Tests for pass manager and preset pipelines."""

import pytest

from repro.dialects import accfg
from repro.ir import parse_module
from repro.passes import (
    ModulePass,
    PASS_REGISTRY,
    PassManager,
    pipeline_by_name,
    register_pass,
)

PROGRAM = """
func.func @f(%x : i64) -> () {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %c8 = arith.constant 8 : index
  scf.for %i = %c0 to %c8 step %c1 {
    %s = accfg.setup on "toyvec" ("ptr_x" = %x : i64, "n" = %i : index) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    scf.yield
  }
  func.return
}
"""


class TestPassManager:
    def test_from_pipeline_string(self):
        pm = PassManager.from_pipeline("canonicalize, cse, dce")
        assert [p.name for p in pm.passes] == ["canonicalize", "cse", "dce"]

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            PassManager.from_pipeline("no-such-pass")

    def test_verify_each_catches_corruption(self):
        class CorruptingPass(ModulePass):
            name = "corrupting-test-pass"

            def apply(self, module):
                # Move a terminator to a non-terminal position.
                fn = module.body_block.ops[0]
                body = fn.regions[0].block
                ret = body.ops[-1]
                body.detach_op(ret)
                body.insert_op_at(0, ret)

        module = parse_module(PROGRAM)
        pm = PassManager([CorruptingPass()], verify_each=True)
        with pytest.raises(RuntimeError, match="verification failed after"):
            pm.run(module)

    def test_register_duplicate_name_rejected(self):
        class Dup(ModulePass):
            name = "canonicalize"

            def apply(self, module):
                pass

        with pytest.raises(ValueError, match="registered twice"):
            register_pass(Dup)

    def test_registry_contains_all_documented_passes(self):
        for name in (
            "canonicalize",
            "cse",
            "dce",
            "licm",
            "accfg-trace-states",
            "accfg-dedup",
            "accfg-overlap",
        ):
            assert name in PASS_REGISTRY


class TestPresetPipelines:
    @pytest.mark.parametrize(
        "name", ["none", "baseline", "volatile-baseline", "dedup", "overlap", "full"]
    )
    def test_pipelines_run_clean(self, name):
        module = parse_module(PROGRAM)
        pipeline_by_name(name).run(module)

    def test_unknown_pipeline(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            pipeline_by_name("turbo")

    def test_full_pipeline_hoists_invariants(self):
        module = parse_module(PROGRAM)
        pipeline_by_name("full").run(module)
        # ptr_x must no longer be written inside the loop.
        from repro.dialects import scf

        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        for op in loop.body.ops:
            if isinstance(op, accfg.SetupOp):
                assert "ptr_x" not in op.field_names

    def test_baseline_pipeline_keeps_setup_fields(self):
        module = parse_module(PROGRAM)
        pipeline_by_name("baseline").run(module)
        setups = [op for op in module.walk() if isinstance(op, accfg.SetupOp)]
        assert sum(len(s.fields) for s in setups) == 2
