"""Tests for effects across function boundaries (paper, Section 8 outlook)."""

from repro.dialects import accfg
from repro.ir import parse_module
from repro.passes import TraceStatesPass


def setups(module):
    return [op for op in module.walk() if isinstance(op, accfg.SetupOp)]


def traced(text):
    module = parse_module(text)
    TraceStatesPass().apply(module)
    return module


class TestCallBoundaryEffects:
    def test_unannotated_call_is_a_barrier(self):
        module = traced(
            """
            func.func @helper() -> () {
              func.return
            }
            func.func @main(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.call @helper() : () -> ()
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        assert setups(module)[1].in_state is None

    def test_effects_none_function_preserves_state(self):
        module = traced(
            """
            func.func @log_step() -> () {
              func.return
            }
            func.func @main(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.call @log_step() : () -> ()
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        # Annotate the helper and re-trace from scratch.
        module2 = parse_module(str(module))
        helper = next(
            op
            for op in module2.walk()
            if op.name == "func.func" and op.sym_name == "log_step"
        )
        accfg.set_effects(helper, "none")
        TraceStatesPass().apply(module2)
        s1, s2 = setups(module2)
        assert s2.in_state is s1.out_state

    def test_effects_all_function_is_a_barrier(self):
        text = """
        func.func @reconfigure() -> () {
          func.return
        }
        func.func @main(%x : i64) -> () {
          %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          func.call @reconfigure() : () -> ()
          %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
          func.return
        }
        """
        module = parse_module(text)
        helper = next(
            op
            for op in module.walk()
            if op.name == "func.func" and op.sym_name == "reconfigure"
        )
        accfg.set_effects(helper, "all")
        TraceStatesPass().apply(module)
        assert setups(module)[1].in_state is None

    def test_call_annotation_on_site_still_works(self):
        """A per-call-site annotation takes precedence over callee lookup."""
        module = traced(
            """
            func.func @helper() -> () {
              func.return
            }
            func.func @main(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              "func.call"() {callee = @helper, accfg.effects = "none"} : () -> ()
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2 = setups(module)
        assert s2.in_state is s1.out_state

    def test_dedup_through_annotated_call(self):
        from repro.passes import pipeline_by_name

        text = """
        func.func @log_step() -> () {
          func.return
        }
        func.func @main(%x : i64) -> () {
          %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
          func.call @log_step() : () -> ()
          %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
          func.return
        }
        """
        module = parse_module(text)
        helper = next(
            op
            for op in module.walk()
            if op.name == "func.func" and op.sym_name == "log_step"
        )
        accfg.set_effects(helper, "none")
        pipeline_by_name("dedup").run(module)
        total_fields = sum(len(s.fields) for s in setups(module))
        assert total_fields == 1  # the redundant rewrite disappeared
