"""Tests for function inlining and its interaction with accfg passes."""

import numpy as np
import pytest

from repro.dialects import accfg, func
from repro.interp import run_module
from repro.ir import parse_module, verify_operation
from repro.passes import (
    DedupPass,
    InlinePass,
    PassManager,
    TraceStatesPass,
)
from repro.sim import CoSimulator, Memory


def calls_in(module):
    return [op for op in module.walk() if isinstance(op, func.CallOp)]


class TestBasicInlining:
    def test_simple_call_inlined(self):
        module = parse_module(
            """
            func.func @double(%x : i64) -> (i64) {
              %r = arith.addi %x, %x : i64
              func.return %r : i64
            }
            func.func @main(%a : i64) -> (i64) {
              %r = func.call @double(%a) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        InlinePass().apply(module)
        verify_operation(module)
        assert calls_in(module) == []
        results, _ = run_module(module, args=[21])
        assert results == [42]

    def test_nested_calls_inlined_transitively(self):
        module = parse_module(
            """
            func.func @inc(%x : i64) -> (i64) {
              %c1 = arith.constant 1 : i64
              %r = arith.addi %x, %c1 : i64
              func.return %r : i64
            }
            func.func @inc2(%x : i64) -> (i64) {
              %a = func.call @inc(%x) : (i64) -> (i64)
              %b = func.call @inc(%a) : (i64) -> (i64)
              func.return %b : i64
            }
            func.func @main(%a : i64) -> (i64) {
              %r = func.call @inc2(%a) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        InlinePass().apply(module)
        verify_operation(module)
        assert calls_in(module) == []
        results, _ = run_module(module, args=[5])
        assert results == [7]

    def test_recursive_function_not_inlined(self):
        module = parse_module(
            """
            func.func @loop(%x : i64) -> (i64) {
              %r = func.call @loop(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            func.func @main(%a : i64) -> (i64) {
              %r = func.call @loop(%a) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        InlinePass().apply(module)
        assert len(calls_in(module)) == 2

    def test_mutual_recursion_not_inlined(self):
        module = parse_module(
            """
            func.func @a(%x : i64) -> (i64) {
              %r = func.call @b(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            func.func @b(%x : i64) -> (i64) {
              %r = func.call @a(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            func.func @main(%x : i64) -> (i64) {
              %r = func.call @a(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        InlinePass().apply(module)
        # The @main call to @a could legally still be inlined once, but all
        # cyclic functions are conservatively skipped.
        assert len(calls_in(module)) >= 2

    def test_declaration_not_inlined(self):
        module = parse_module(
            """
            func.func @ext(i64) -> (i64)
            func.func @main(%a : i64) -> (i64) {
              %r = func.call @ext(%a) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        InlinePass().apply(module)
        assert len(calls_in(module)) == 1

    def test_inlined_regions_cloned(self):
        module = parse_module(
            """
            func.func @looped(%x : index) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              scf.for %i = %c0 to %x step %c1 {
                %s = accfg.setup on "toyvec" ("n" = %i : index) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            func.func @main(%a : index) -> () {
              func.call @looped(%a) : (index) -> ()
              func.call @looped(%a) : (index) -> ()
              func.return
            }
            """
        )
        InlinePass().apply(module)
        verify_operation(module)
        from repro.dialects import scf

        loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
        assert len(loops) == 3  # original + two clones


class TestInliningUnlocksDedup:
    def test_dedup_across_former_call_boundary(self):
        """A helper configuring the accelerator identically on each call:
        without inlining the call is a barrier; with inlining dedup removes
        the repeated configuration entirely."""
        text = """
        func.func @do_launch(%n : i64) -> () {
          %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
          %t = accfg.launch %s : !accfg.token<"toyvec">
          accfg.await %t
          func.return
        }
        func.func @main(%n : i64) -> () {
          func.call @do_launch(%n) : (i64) -> ()
          func.call @do_launch(%n) : (i64) -> ()
          func.call @do_launch(%n) : (i64) -> ()
          func.return
        }
        """

        def field_writes(pm):
            module = parse_module(text)
            pm.run(module)
            return sum(
                len(op.fields)
                for op in module.walk()
                if isinstance(op, accfg.SetupOp) and op.parent_op.sym_name == "main"
            )

        without = field_writes(PassManager([TraceStatesPass(), DedupPass()]))
        with_inline = field_writes(
            PassManager([InlinePass(), TraceStatesPass(), DedupPass()])
        )
        assert without == 0  # setups still hidden behind calls
        assert with_inline == 1  # inlined: one write, two dedup'd repeats

    def test_functional_equivalence_with_accfg(self):
        memory = Memory()
        x = memory.place(np.arange(8, dtype=np.int32))
        y = memory.place(np.arange(8, dtype=np.int32) * 3)
        out = memory.alloc(8, np.int32)
        text = f"""
        func.func @go(%op : i64) -> () {{
          %px = arith.constant {x.addr} : i64
          %py = arith.constant {y.addr} : i64
          %po = arith.constant {out.addr} : i64
          %n = arith.constant 8 : i64
          %s = accfg.setup on "toyvec" ("ptr_x" = %px : i64, "ptr_y" = %py : i64, "ptr_out" = %po : i64, "n" = %n : i64, "op" = %op : i64) : !accfg.state<"toyvec">
          %t = accfg.launch %s : !accfg.token<"toyvec">
          accfg.await %t
          func.return
        }}
        func.func @main() -> () {{
          %add = arith.constant 0 : i64
          func.call @go(%add) : (i64) -> ()
          func.return
        }}
        """
        module = parse_module(text)
        PassManager([InlinePass(), TraceStatesPass(), DedupPass()]).run(module)
        run_module(module, CoSimulator(memory=memory))
        assert (out.array == x.array + y.array).all()
