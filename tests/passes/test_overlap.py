"""Tests for configuration-computation overlap (paper, Section 5.5)."""

from repro.dialects import accfg, arith, scf
from repro.ir import parse_module, verify_operation
from repro.passes import OverlapPass, TraceStatesPass
from repro.passes.overlap import overlap_straight_line, pipeline_loop

CONCURRENT = {"toyvec"}


def prepared(text: str):
    module = parse_module(text)
    TraceStatesPass().apply(module)
    verify_operation(module)
    return module


LOOP_TEXT = """
func.func @f(%base : index) -> () {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %c8 = arith.constant 8 : index
  scf.for %i = %c0 to %c8 step %c1 {
    %addr = arith.addi %base, %i : index
    %s = accfg.setup on "toyvec" ("ptr_x" = %addr : index) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    scf.yield
  }
  func.return
}
"""


class TestLoopPipelining:
    def test_loop_rotated(self):
        module = prepared(LOOP_TEXT)
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert pipeline_loop(loop, CONCURRENT)
        verify_operation(module)

        # A preamble setup now exists before the loop (iv -> lb).
        func_body = loop.parent
        pre_setups = [
            op
            for op in func_body.ops
            if isinstance(op, accfg.SetupOp) and op.fields
        ]
        assert len(pre_setups) == 1  # (plus the empty anchor from tracing)
        assert loop.iter_inits[0] is pre_setups[0].out_state

        # Inside the loop: launch comes first, from the incoming state.
        body_kinds = [op.name for op in loop.body.ops]
        assert body_kinds[0] == "accfg.launch"
        launch = loop.body.ops[0]
        assert launch.state is loop.iter_args[0]
        # The setup (for i+1) sits before the await.
        setup_index = body_kinds.index("accfg.setup")
        await_index = body_kinds.index("accfg.await")
        assert setup_index < await_index

    def test_next_iteration_uses_incremented_iv(self):
        module = prepared(LOOP_TEXT)
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        pipeline_loop(loop, CONCURRENT)
        in_loop_setup = next(
            op for op in loop.body.ops if isinstance(op, accfg.SetupOp)
        )
        addr = in_loop_setup.field_values[0]
        add_chain = addr.owner
        # addr = base + (i + step): the slice was cloned onto iv+step.
        assert isinstance(add_chain, arith.AddiOp)
        iv_next = add_chain.rhs.owner
        assert isinstance(iv_next, arith.AddiOp)
        assert iv_next.lhs is loop.induction_var

    def test_sequential_accelerator_not_pipelined(self):
        module = prepared(LOOP_TEXT.replace("toyvec", "toyvec-seq"))
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert not pipeline_loop(loop, None)  # registry: toyvec-seq is sequential

    def test_explicit_concurrent_set_respected(self):
        module = prepared(LOOP_TEXT)
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert not pipeline_loop(loop, set())  # not listed -> treated sequential

    def test_impure_setup_sequence_blocks_pipelining(self):
        text = """
        func.func @f(%base : index) -> () {
          %c0 = arith.constant 0 : index
          %c1 = arith.constant 1 : index
          %c8 = arith.constant 8 : index
          scf.for %i = %c0 to %c8 step %c1 {
            %addr = "foreign.load"(%i) {accfg.effects = "none"} : (index) -> (index)
            %s = accfg.setup on "toyvec" ("ptr_x" = %addr : index) : !accfg.state<"toyvec">
            %t = accfg.launch %s : !accfg.token<"toyvec">
            accfg.await %t
            scf.yield
          }
          func.return
        }
        """
        module = prepared(text)
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert not pipeline_loop(loop, CONCURRENT)

    def test_two_launches_not_pipelined(self):
        text = """
        func.func @f(%base : index) -> () {
          %c0 = arith.constant 0 : index
          %c1 = arith.constant 1 : index
          %c8 = arith.constant 8 : index
          scf.for %i = %c0 to %c8 step %c1 {
            %s = accfg.setup on "toyvec" ("ptr_x" = %i : index) : !accfg.state<"toyvec">
            %t = accfg.launch %s : !accfg.token<"toyvec">
            accfg.await %t
            %t2 = accfg.launch %s : !accfg.token<"toyvec">
            accfg.await %t2
            scf.yield
          }
          func.return
        }
        """
        module = prepared(text)
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert not pipeline_loop(loop, CONCURRENT)


class TestStraightLineOverlap:
    def test_setup_moved_above_await(self):
        text = """
        func.func @f(%x : i64, %y : i64) -> () {
          %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
          accfg.await %t1
          %s2 = accfg.setup on "toyvec" from %s1 ("n" = %y : i64) : !accfg.state<"toyvec">
          %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
          accfg.await %t2
          func.return
        }
        """
        module = parse_module(text)
        assert overlap_straight_line(module, CONCURRENT)
        verify_operation(module)
        fn_body = next(
            op for op in module.walk() if op.name == "func.func"
        ).regions[0].block
        names = [op.name for op in fn_body.ops]
        # second setup now sits between launch 1 and await 1
        assert names.index("accfg.setup", 1) < names.index("accfg.await")

    def test_pure_producers_move_along(self):
        text = """
        func.func @f(%x : i64, %y : i64) -> () {
          %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
          accfg.await %t1
          %calc = arith.addi %y, %y : i64
          %s2 = accfg.setup on "toyvec" from %s1 ("n" = %calc : i64) : !accfg.state<"toyvec">
          func.return
        }
        """
        module = parse_module(text)
        assert overlap_straight_line(module, CONCURRENT)
        verify_operation(module)
        fn_body = next(
            op for op in module.walk() if op.name == "func.func"
        ).regions[0].block
        names = [op.name for op in fn_body.ops]
        assert names.index("arith.addi") < names.index("accfg.await")

    def test_sequential_target_untouched(self):
        text = """
        func.func @f(%x : i64, %y : i64) -> () {
          %s1 = accfg.setup on "toyvec-seq" ("n" = %x : i64) : !accfg.state<"toyvec-seq">
          %t1 = accfg.launch %s1 : !accfg.token<"toyvec-seq">
          accfg.await %t1
          %s2 = accfg.setup on "toyvec-seq" from %s1 ("n" = %y : i64) : !accfg.state<"toyvec-seq">
          func.return
        }
        """
        module = parse_module(text)
        assert not overlap_straight_line(module, None)

    def test_impure_dependency_blocks_move(self):
        text = """
        func.func @f(%x : i64) -> () {
          %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
          accfg.await %t1
          %v = "foreign.read"() {accfg.effects = "none"} : () -> (i64)
          %s2 = accfg.setup on "toyvec" from %s1 ("n" = %v : i64) : !accfg.state<"toyvec">
          func.return
        }
        """
        module = parse_module(text)
        assert not overlap_straight_line(module, CONCURRENT)


class TestNoCrossLaunchMotion:
    def test_setup_not_moved_above_intervening_launch(self):
        """Regression (found by fuzzing): a setup must not move above an
        await when another launch of the same accelerator sits in between —
        that launch would commit the moved setup's staged writes."""
        text = """
        func.func @f(%x : i64, %y : i64) -> () {
          %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
          %t1 = accfg.launch %s0 : !accfg.token<"toyvec">
          accfg.await %t1
          %t2 = accfg.launch %s0 : !accfg.token<"toyvec">
          accfg.await %t2
          %s1 = accfg.setup on "toyvec" from %s0 ("n" = %y : i64) : !accfg.state<"toyvec">
          func.return
        }
        """
        module = parse_module(text)
        overlap_straight_line(module, CONCURRENT)
        verify_operation(module)
        fn_body = next(
            op for op in module.walk() if op.name == "func.func"
        ).regions[0].block
        names = [op.name for op in fn_body.ops]
        # The setup may move above the SECOND await, but never above the
        # second launch.
        second_launch_index = [
            i for i, n in enumerate(names) if n == "accfg.launch"
        ][1]
        setup_indices = [i for i, n in enumerate(names) if n == "accfg.setup"]
        assert setup_indices[-1] > second_launch_index

    def test_semantics_preserved_on_regression_case(self):
        """The end-to-end shape of the original fuzz failure."""
        import numpy as np

        from repro.interp import run_module
        from repro.passes import pipeline_by_name
        from repro.sim import CoSimulator, Memory

        def run(pipeline):
            memory = Memory()
            x = memory.place(np.arange(16, dtype=np.int32))
            y = memory.place(np.arange(16, dtype=np.int32) * 2)
            out = memory.alloc(16, np.int32)
            text = f"""
            func.func @main() -> () {{
              %px = arith.constant {x.addr} : i64
              %py = arith.constant {y.addr} : i64
              %po = arith.constant {out.addr} : i64
              %n = arith.constant 16 : i64
              %add = arith.constant 0 : i64
              %mul = arith.constant 1 : i64
              %s0 = accfg.setup on "toyvec" ("ptr_x" = %px : i64, "ptr_y" = %py : i64, "ptr_out" = %po : i64, "n" = %n : i64, "op" = %add : i64) : !accfg.state<"toyvec">
              %t1 = accfg.launch %s0 : !accfg.token<"toyvec">
              accfg.await %t1
              %t2 = accfg.launch %s0 : !accfg.token<"toyvec">
              accfg.await %t2
              %s1 = accfg.setup on "toyvec" from %s0 ("op" = %mul : i64) : !accfg.state<"toyvec">
              func.return
            }}
            """
            module = parse_module(text)
            pipeline_by_name(pipeline).run(module)
            sim = CoSimulator(memory=memory)
            run_module(module, sim)
            return out.array.copy()

        assert (run("none") == run("full")).all()


class TestNoPhantomEpilogueWrite:
    """Regression (found by fuzzing): the rotated next-iteration setup must
    not leak out of the loop.  In the plain rotation the last iteration
    executes the setup for iteration ``ub`` — a configuration the original
    program never wrote — and a post-loop launch relying on register
    retention observes it.  When the loop's state result is used, the pass
    peels the final launch/await out of the loop instead."""

    OBSERVED_TEXT = """
    func.func @f() -> () {
      %c0 = arith.constant 0 : index
      %c1 = arith.constant 1 : index
      %c3 = arith.constant 3 : index
      %init = accfg.setup on "toyvec" () : !accfg.state<"toyvec">
      %final = scf.for %i = %c0 to %c3 step %c1 iter_args(%s0 = %init) -> (!accfg.state<"toyvec">) {
        %s = accfg.setup on "toyvec" from %s0 ("n" = %i : index) : !accfg.state<"toyvec">
        %t = accfg.launch %s : !accfg.token<"toyvec">
        accfg.await %t
        scf.yield %s : !accfg.state<"toyvec">
      }
      %tail = accfg.setup on "toyvec" from %final () : !accfg.state<"toyvec">
      %t2 = accfg.launch %tail : !accfg.token<"toyvec">
      accfg.await %t2
      func.return
    }
    """

    def test_final_iteration_peeled_when_state_observed(self):
        from repro.dialects import arith

        module = parse_module(self.OBSERVED_TEXT)
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert pipeline_loop(loop, CONCURRENT)
        verify_operation(module)
        # The loop runs one fewer trip (ub - step) and the final launch and
        # await move behind it, so no guard code runs per iteration.
        assert isinstance(loop.ub.owner, arith.SubiOp)
        assert not any(isinstance(op, scf.IfOp) for op in loop.body.ops)
        parent = loop.parent
        after = parent.ops[parent.index_of(loop) + 1 :]
        # Peeled launch + await come right after the loop, consuming its
        # state result, before the original tail setup.
        assert isinstance(after[0], accfg.LaunchOp)
        assert after[0].state is loop.results[0]
        assert isinstance(after[1], accfg.AwaitOp)

    def test_post_loop_launch_sees_last_iteration_config(self):
        from repro.interp import run_module
        from repro.sim import CoSimulator

        def final_n(pipelined: bool) -> int:
            module = parse_module(self.OBSERVED_TEXT)
            if pipelined:
                loop = next(
                    op for op in module.walk() if isinstance(op, scf.ForOp)
                )
                assert pipeline_loop(loop, CONCURRENT)
                verify_operation(module)
            sim = CoSimulator(functional=False)
            run_module(module, sim, function="f")
            return sim.device("toyvec").registers["n"]

        assert final_n(pipelined=True) == final_n(pipelined=False)

    def test_unobserved_state_keeps_plain_rotation(self):
        """When nothing after the loop reads the state, the cheaper
        unguarded rotation is still used."""
        module = prepared(LOOP_TEXT)
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert pipeline_loop(loop, CONCURRENT)
        assert any(isinstance(op, accfg.SetupOp) for op in loop.body.ops)
        assert not any(isinstance(op, scf.IfOp) for op in loop.body.ops)


class TestFullPass:
    def test_pass_is_idempotent(self):
        module = prepared(LOOP_TEXT)
        OverlapPass(CONCURRENT).apply(module)
        verify_operation(module)
        before = str(module)
        OverlapPass(CONCURRENT).apply(module)
        verify_operation(module)
        assert str(module) == before
