"""Tests for loop unrolling and its interaction with dedup."""

import numpy as np
import pytest

from repro.dialects import accfg, scf
from repro.interp import run_module
from repro.ir import parse_module, verify_operation
from repro.passes import (
    CanonicalizePass,
    DedupPass,
    PassManager,
    TraceStatesPass,
    UnrollPass,
)
from repro.passes.unroll import constant_trip_count, unroll_loop
from repro.sim import CoSimulator, Memory


def loops_in(module):
    return [op for op in module.walk() if isinstance(op, scf.ForOp)]


class TestTripCount:
    def parse_loop(self, lb, ub, step):
        module = parse_module(
            f"""
            func.func @f() -> () {{
              %lb = arith.constant {lb} : index
              %ub = arith.constant {ub} : index
              %st = arith.constant {step} : index
              scf.for %i = %lb to %ub step %st {{
                scf.yield
              }}
              func.return
            }}
            """
        )
        return loops_in(module)[0]

    @pytest.mark.parametrize(
        "lb,ub,step,expected",
        [(0, 8, 1, 8), (0, 8, 3, 3), (2, 8, 2, 3), (5, 5, 1, 0), (8, 2, 1, 0)],
    )
    def test_constant_bounds(self, lb, ub, step, expected):
        assert constant_trip_count(self.parse_loop(lb, ub, step)) == expected

    def test_runtime_bounds_unknown(self):
        module = parse_module(
            """
            func.func @f(%n : index) -> () {
              %lb = arith.constant 0 : index
              %st = arith.constant 1 : index
              scf.for %i = %lb to %n step %st {
                scf.yield
              }
              func.return
            }
            """
        )
        assert constant_trip_count(loops_in(module)[0]) is None


class TestUnrolling:
    def test_simple_loop_unrolled(self):
        module = parse_module(
            """
            func.func @f(%x : index) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c3 = arith.constant 3 : index
              scf.for %i = %c0 to %c3 step %c1 {
                %s = accfg.setup on "toyvec" ("n" = %i : index) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """
        )
        UnrollPass().apply(module)
        verify_operation(module)
        assert loops_in(module) == []
        setups = [op for op in module.walk() if isinstance(op, accfg.SetupOp)]
        assert len(setups) == 3

    def test_iter_args_threaded(self):
        module = parse_module(
            """
            func.func @f() -> (index) {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              %sum = scf.for %i = %c0 to %c4 step %c1 iter_args(%acc = %c0) -> (index) {
                %n = arith.addi %acc, %i : index
                scf.yield %n : index
              }
              func.return %sum : index
            }
            """
        )
        UnrollPass().apply(module)
        verify_operation(module)
        results, _ = run_module(module, function="f")
        assert results == [6]  # 0+1+2+3

    def test_large_loops_kept(self):
        module = parse_module(
            """
            func.func @f() -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c100 = arith.constant 100 : index
              scf.for %i = %c0 to %c100 step %c1 {
                scf.yield
              }
              func.return
            }
            """
        )
        UnrollPass(max_trips=8).apply(module)
        assert len(loops_in(module)) == 1

    def test_nested_loops_unroll_completely(self):
        module = parse_module(
            """
            func.func @f(%x : index) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c2 = arith.constant 2 : index
              scf.for %i = %c0 to %c2 step %c1 {
                scf.for %j = %c0 to %c2 step %c1 {
                  %v = arith.addi %i, %j : index
                  %s = accfg.setup on "toyvec" ("n" = %v : index) : !accfg.state<"toyvec">
                  scf.yield
                }
                scf.yield
              }
              func.return
            }
            """
        )
        UnrollPass().apply(module)
        verify_operation(module)
        assert loops_in(module) == []
        setups = [op for op in module.walk() if isinstance(op, accfg.SetupOp)]
        assert len(setups) == 4


class TestUnrollEnablesDedup:
    def test_cross_iteration_dedup_after_unroll(self):
        """Unrolling exposes cross-iteration redundancy to plain
        redundant-field elimination — no loop hoisting needed."""
        text = """
        func.func @f(%x : i64) -> () {
          %c0 = arith.constant 0 : index
          %c1 = arith.constant 1 : index
          %c4 = arith.constant 4 : index
          scf.for %i = %c0 to %c4 step %c1 {
            %s = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
            %t = accfg.launch %s : !accfg.token<"toyvec">
            accfg.await %t
            scf.yield
          }
          func.return
        }
        """
        module = parse_module(text)
        PassManager(
            [UnrollPass(), CanonicalizePass(), TraceStatesPass(), DedupPass()]
        ).run(module)
        setups = [op for op in module.walk() if isinstance(op, accfg.SetupOp)]
        # One real write remains; the three unrolled repeats deduplicated.
        assert sum(len(s.fields) for s in setups) == 1
        launches = [op for op in module.walk() if isinstance(op, accfg.LaunchOp)]
        assert len(launches) == 4

    def test_functional_equivalence(self):
        memory = Memory()
        x = memory.place(np.arange(24, dtype=np.int32))
        y = memory.place(np.arange(24, dtype=np.int32) * 5)
        out = memory.alloc(24, np.int32)
        text = f"""
        func.func @main() -> () {{
          %px = arith.constant {x.addr} : i64
          %py = arith.constant {y.addr} : i64
          %po = arith.constant {out.addr} : i64
          %n = arith.constant 24 : i64
          %op = arith.constant 0 : i64
          %c0 = arith.constant 0 : index
          %c1 = arith.constant 1 : index
          %c3 = arith.constant 3 : index
          scf.for %i = %c0 to %c3 step %c1 {{
            %s = accfg.setup on "toyvec" ("ptr_x" = %px : i64, "ptr_y" = %py : i64, "ptr_out" = %po : i64, "n" = %n : i64, "op" = %op : i64) : !accfg.state<"toyvec">
            %t = accfg.launch %s : !accfg.token<"toyvec">
            accfg.await %t
            scf.yield
          }}
          func.return
        }}
        """
        module = parse_module(text)
        PassManager([UnrollPass(), CanonicalizePass(), TraceStatesPass(), DedupPass()]).run(module)
        sim = CoSimulator(memory=memory)
        run_module(module, sim)
        assert (out.array == x.array + y.array).all()
        assert sim.device("toyvec").launch_count == 3
