"""Tests for the linalg frontend and the step-1 conversion pass."""

import numpy as np
import pytest

from repro.dialects import accfg, linalg
from repro.interp import run_module
from repro.ir import VerifyError, parse_module, verify_operation
from repro.passes import ConvertLinalgToAccfgPass, LoweringError, pipeline_by_name
from repro.sim import CoSimulator, Memory


def matmul_module(mem, m=16, k=16, n=16, seed=0):
    rng = np.random.default_rng(seed)
    a = mem.place(rng.integers(-4, 4, (m, k), dtype=np.int8))
    b = mem.place(rng.integers(-4, 4, (k, n), dtype=np.int8))
    c = mem.alloc((m, n), np.int32)
    module = parse_module(
        f"""
        func.func @main() -> () {{
          %a = arith.constant {a.addr} : index
          %b = arith.constant {b.addr} : index
          %c = arith.constant {c.addr} : index
          linalg.matmul ins(%a, %b) outs(%c) dims({m} x {k} x {n})
          func.return
        }}
        """
    )
    return module, (a, b, c)


class TestDialect:
    def test_matmul_roundtrip(self):
        mem = Memory()
        module, _ = matmul_module(mem)
        printed = str(module)
        assert "linalg.matmul ins(" in printed
        reparsed = parse_module(printed)
        assert str(reparsed) == printed

    def test_elementwise_roundtrip(self):
        module = parse_module(
            """
            func.func @main(%x : index, %y : index, %o : index) -> () {
              linalg.elementwise "mul" ins(%x, %y) outs(%o) n(100)
              func.return
            }
            """
        )
        op = next(o for o in module.walk() if isinstance(o, linalg.ElementwiseOp))
        assert op.kind == "mul"
        assert op.n == 100
        assert str(parse_module(str(module))) == str(module)

    def test_matmul_verify(self):
        mem = Memory()
        module, _ = matmul_module(mem)
        op = next(o for o in module.walk() if isinstance(o, linalg.MatmulOp))
        from repro.ir import IntegerAttr

        op.attributes["m"] = IntegerAttr(0)
        with pytest.raises(VerifyError):
            op.verify_()

    def test_elementwise_bad_kind(self):
        with pytest.raises(VerifyError):
            module = parse_module(
                """
                func.func @main(%x : index) -> () {
                  linalg.elementwise "frobnicate" ins(%x, %x) outs(%x) n(4)
                  func.return
                }
                """
            )


class TestLoweringToOpenGeMM:
    def test_produces_accfg_clusters(self):
        mem = Memory()
        module, _ = matmul_module(mem)
        ConvertLinalgToAccfgPass().apply(module)
        verify_operation(module)
        names = [op.name for op in module.walk()]
        assert "linalg.matmul" not in names
        assert "accfg.setup" in names
        assert "accfg.launch" in names
        assert "accfg.await" in names

    def test_numerics_through_full_pipeline(self):
        mem = Memory()
        module, (a, b, c) = matmul_module(mem, 16, 24, 32)
        ConvertLinalgToAccfgPass().apply(module)
        pipeline_by_name("full").run(module)
        run_module(module, CoSimulator(memory=mem))
        expected = a.array.astype(np.int32) @ b.array.astype(np.int32)
        assert (c.array == expected).all()

    def test_bad_dims_rejected(self):
        mem = Memory()
        module, _ = matmul_module(mem, 12, 16, 16)
        with pytest.raises(LoweringError, match="multiples"):
            ConvertLinalgToAccfgPass().apply(module)


class TestLoweringToGemmini:
    def test_numerics(self):
        mem = Memory()
        module, (a, b, c) = matmul_module(mem, 32, 16, 32)
        ConvertLinalgToAccfgPass(targets={"linalg.matmul": "gemmini"}).apply(module)
        verify_operation(module)
        pipeline_by_name("full").run(module)
        run_module(module, CoSimulator(memory=mem))
        expected = a.array.astype(np.int32) @ b.array.astype(np.int32)
        assert (c.array == expected).all()

    def test_unknown_target_rejected(self):
        mem = Memory()
        module, _ = matmul_module(mem)
        with pytest.raises(LoweringError, match="no matmul lowering"):
            ConvertLinalgToAccfgPass(targets={"linalg.matmul": "tpu"}).apply(module)


class TestLoweringElementwise:
    def run_elementwise(self, n, kind="add"):
        mem = Memory()
        rng = np.random.default_rng(1)
        x = mem.place(rng.integers(-9, 9, n, dtype=np.int32))
        y = mem.place(rng.integers(-9, 9, n, dtype=np.int32))
        out = mem.alloc(n, np.int32)
        module = parse_module(
            f"""
            func.func @main() -> () {{
              %x = arith.constant {x.addr} : index
              %y = arith.constant {y.addr} : index
              %o = arith.constant {out.addr} : index
              linalg.elementwise "{kind}" ins(%x, %y) outs(%o) n({n})
              func.return
            }}
            """
        )
        ConvertLinalgToAccfgPass().apply(module)
        verify_operation(module)
        pipeline_by_name("full").run(module)
        run_module(module, CoSimulator(memory=mem))
        return x.array, y.array, out.array

    def test_exact_chunks(self):
        x, y, out = self.run_elementwise(128)
        assert (out == x + y).all()

    def test_with_tail(self):
        x, y, out = self.run_elementwise(100)
        assert (out == x + y).all()

    def test_smaller_than_chunk(self):
        x, y, out = self.run_elementwise(5, kind="mul")
        assert (out == x * y).all()

    def test_max_kind(self):
        x, y, out = self.run_elementwise(64, kind="max")
        assert (out == np.maximum(x, y)).all()


class TestDedupAcrossLoweredOps:
    def test_two_matmuls_share_configuration(self):
        """Back-to-back lowered matmuls on the same shapes: dedup removes the
        second one's invariant CSR rewrites entirely."""
        mem = Memory()
        rng = np.random.default_rng(2)
        a = mem.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
        b = mem.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
        c1 = mem.alloc((16, 16), np.int32)
        c2 = mem.alloc((16, 16), np.int32)
        module = parse_module(
            f"""
            func.func @main() -> () {{
              %a = arith.constant {a.addr} : index
              %b = arith.constant {b.addr} : index
              %c1 = arith.constant {c1.addr} : index
              %c2 = arith.constant {c2.addr} : index
              linalg.matmul ins(%a, %b) outs(%c1) dims(16 x 16 x 16)
              linalg.matmul ins(%a, %b) outs(%c2) dims(16 x 16 x 16)
              func.return
            }}
            """
        )
        ConvertLinalgToAccfgPass().apply(module)
        baseline_bytes = _run_and_bytes(parse_module(str(module)), mem, "baseline")
        dedup_bytes = _run_and_bytes(parse_module(str(module)), mem, "dedup")
        assert dedup_bytes < baseline_bytes
        expected = a.array.astype(np.int32) @ b.array.astype(np.int32)
        assert (c1.array == expected).all()
        assert (c2.array == expected).all()


def _run_and_bytes(module, mem, pipeline):
    pipeline_by_name(pipeline).run(module)
    sim = CoSimulator(memory=mem)
    run_module(module, sim)
    return sim.trace.config_bytes()
