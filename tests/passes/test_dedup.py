"""Tests for configuration deduplication (paper, Section 5.4)."""

from repro.dialects import accfg, scf
from repro.ir import parse_module, verify_operation
from repro.passes import DedupPass, TraceStatesPass
from repro.passes.dedup import (
    KnownFieldsAnalysis,
    hoist_setups_into_branches,
    merge_consecutive_setups,
)


def optimized(text: str):
    module = parse_module(text)
    TraceStatesPass().apply(module)
    DedupPass().apply(module)
    verify_operation(module)
    return module


def setups(module):
    return [op for op in module.walk() if isinstance(op, accfg.SetupOp)]


def total_field_writes(module):
    return sum(len(op.fields) for op in setups(module))


class TestRedundantFieldElimination:
    def test_same_value_rewrite_removed(self):
        module = optimized(
            """
            func.func @f(%x : i64, %y : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64, "op" = %y : i64) : !accfg.state<"toyvec">
              %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
              accfg.await %t1
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64, "op" = %y : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              accfg.await %t2
              func.return
            }
            """
        )
        # The second setup is fully redundant; only the first remains.
        assert total_field_writes(module) == 2
        launches = [op for op in module.walk() if isinstance(op, accfg.LaunchOp)]
        assert len(launches) == 2

    def test_partial_redundancy(self):
        module = optimized(
            """
            func.func @f(%x : i64, %y : i64, %z : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64, "op" = %y : i64) : !accfg.state<"toyvec">
              %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64, "op" = %z : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        all_setups = setups(module)
        assert len(all_setups) == 2
        # "n" removed from the second setup, "op" kept (different value).
        assert all_setups[1].field_names == ("op",)

    def test_different_values_kept(self):
        module = optimized(
            """
            func.func @f(%x : i64, %y : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
              %s2 = accfg.setup on "toyvec" ("n" = %y : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        assert total_field_writes(module) == 2

    def test_clobber_between_prevents_dedup(self):
        module = optimized(
            """
            func.func @f(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
              "foreign.mystery"() : () -> ()
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        assert total_field_writes(module) == 2


class TestLoopFieldHoisting:
    def test_invariant_fields_hoisted(self):
        module = optimized(
            """
            func.func @f(%ptr : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c8 = arith.constant 8 : index
              scf.for %i = %c0 to %c8 step %c1 {
                %s = accfg.setup on "toyvec" ("ptr_x" = %ptr : i64, "n" = %i : index) : !accfg.state<"toyvec">
                %t = accfg.launch %s : !accfg.token<"toyvec">
                accfg.await %t
                scf.yield
              }
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        in_loop = [op for op in loop.body.ops if isinstance(op, accfg.SetupOp)]
        assert len(in_loop) == 1
        assert in_loop[0].field_names == ("n",)
        pre_loop = [s for s in setups(module) if s.parent is not loop.body]
        assert len(pre_loop) == 1
        assert pre_loop[0].field_names == ("ptr_x",)

    def test_fully_invariant_setup_leaves_empty_loop_setup(self):
        module = optimized(
            """
            func.func @f(%ptr : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c8 = arith.constant 8 : index
              scf.for %i = %c0 to %c8 step %c1 {
                %s = accfg.setup on "toyvec" ("ptr_x" = %ptr : i64) : !accfg.state<"toyvec">
                %t = accfg.launch %s : !accfg.token<"toyvec">
                accfg.await %t
                scf.yield
              }
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        in_loop = [op for op in loop.body.ops if isinstance(op, accfg.SetupOp)]
        # The in-loop setup became empty and was removed entirely.
        assert in_loop == []

    def test_two_writers_of_field_not_hoisted(self):
        module = optimized(
            """
            func.func @f(%a : i64, %b : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c8 = arith.constant 8 : index
              scf.for %i = %c0 to %c8 step %c1 {
                %s1 = accfg.setup on "toyvec" ("n" = %a : i64) : !accfg.state<"toyvec">
                %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
                accfg.await %t1
                %s2 = accfg.setup on "toyvec" ("n" = %b : i64) : !accfg.state<"toyvec">
                %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
                accfg.await %t2
                scf.yield
              }
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        in_loop = [op for op in loop.body.ops if isinstance(op, accfg.SetupOp)]
        # Neither write of "n" may leave the loop (two launches with
        # different parameters, Section 5.4.1)... but dedup may still drop
        # second-iteration rewrites; both setups must remain with "n".
        assert len(in_loop) == 2
        assert all(s.field_names == ("n",) for s in in_loop)


    def test_post_launch_writer_not_hoisted(self):
        """Regression (found by fuzzing): a loop-invariant field written
        *after* the launch supplies the next iteration — iteration 0's
        launch must keep seeing the pre-loop register contents, so the
        write must not move in front of the loop."""
        module = optimized(
            """
            func.func @f(%a : i64, %b : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c2 = arith.constant 2 : index
              %s0 = accfg.setup on "toyvec" ("op" = %a : i64) : !accfg.state<"toyvec">
              scf.for %i = %c0 to %c2 step %c1 {
                %s1 = accfg.setup on "toyvec" () : !accfg.state<"toyvec">
                %t = accfg.launch %s1 : !accfg.token<"toyvec">
                accfg.await %t
                %s2 = accfg.setup on "toyvec" ("op" = %b : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        fn = module.regions[0].block.ops[0]
        b = fn.body.args[1]
        writers = [
            s
            for s in setups(module)
            if any(name == "op" and value is b for name, value in s.fields)
        ]
        assert writers, "the op=%b write disappeared entirely"
        for writer in writers:
            assert writer.parent is loop.body
            launch = next(
                op for op in loop.body.ops if isinstance(op, accfg.LaunchOp)
            )
            assert launch.is_before_in_block(writer)


class TestBranchHoisting:
    def test_setup_after_if_hoisted_into_branches(self):
        module = parse_module(
            """
            func.func @f(%c : i1, %x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %y : i64) : !accfg.state<"toyvec">
                scf.yield
              } else {
                scf.yield
              }
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        TraceStatesPass().apply(module)
        changed = hoist_setups_into_branches(module)
        assert changed
        verify_operation(module)
        if_op = next(op for op in module.walk() if isinstance(op, scf.IfOp))
        then_setups = [
            op for op in if_op.then_block.ops if isinstance(op, accfg.SetupOp)
        ]
        else_setups = [
            op for op in if_op.else_block.ops if isinstance(op, accfg.SetupOp)
        ]
        assert len(then_setups) == 2  # original + hoisted clone
        assert len(else_setups) == 1  # hoisted clone

    def test_full_dedup_through_branches(self):
        """After hoisting, the redundant "n" write disappears from the path
        that did not change it."""
        module = optimized(
            """
            func.func @f(%c : i1, %x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t0 = accfg.launch %s0 : !accfg.token<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("n" = %y : i64) : !accfg.state<"toyvec">
                %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
                scf.yield
              } else {
                scf.yield
              }
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        if_op = next(op for op in module.walk() if isinstance(op, scf.IfOp))
        else_setups = [
            op for op in if_op.else_block.ops if isinstance(op, accfg.SetupOp)
        ]
        # In the else branch the register still holds %x: clone deduped away.
        assert sum(len(s.fields) for s in else_setups) == 0


class TestMergeAndCleanup:
    def test_consecutive_setups_merged(self):
        module = parse_module(
            """
            func.func @f(%x : i64, %y : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "toyvec" from %s1 ("op" = %y : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        changed = merge_consecutive_setups(module)
        assert changed
        verify_operation(module)
        all_setups = setups(module)
        assert len(all_setups) == 1
        assert set(all_setups[0].field_names) == {"n", "op"}

    def test_merge_override_keeps_later_value(self):
        module = parse_module(
            """
            func.func @f(%x : i64, %y : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "toyvec" from %s1 ("n" = %y : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        merge_consecutive_setups(module)
        merged = setups(module)[0]
        assert len(merged.fields) == 1
        assert merged.field_value("n").name_hint == "y"

    def test_observed_intermediate_state_not_merged(self):
        module = parse_module(
            """
            func.func @f(%x : i64, %y : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
              %s2 = accfg.setup on "toyvec" from %s1 ("n" = %y : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        assert not merge_consecutive_setups(module)
        assert len(setups(module)) == 2


class TestKnownFieldsAnalysis:
    def test_chain_accumulates(self):
        module = parse_module(
            """
            func.func @f(%x : i64, %y : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "toyvec" from %s1 ("op" = %y : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        s1, s2 = setups(module)
        analysis = KnownFieldsAnalysis("toyvec")
        known = analysis.known(s2.out_state)
        assert set(known.fields) == {"n", "op"}

    def test_loop_carried_intersection(self):
        module = parse_module(
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c8 = arith.constant 8 : index
              %s0 = accfg.setup on "toyvec" ("ptr_x" = %x : i64, "n" = %x : i64) : !accfg.state<"toyvec">
              %r = scf.for %i = %c0 to %c8 step %c1 iter_args(%st = %s0) -> (!accfg.state<"toyvec">) {
                %s = accfg.setup on "toyvec" from %st ("n" = %i : index) : !accfg.state<"toyvec">
                scf.yield %s : !accfg.state<"toyvec">
              }
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        analysis = KnownFieldsAnalysis("toyvec")
        known = analysis.known(loop.iter_args[0])
        # ptr_x survives the back edge; n is overwritten with a body value.
        assert "ptr_x" in known.fields
        assert "n" not in known.fields

    def test_query_order_does_not_poison_cache(self):
        """Regression (found by fuzzing): resolving a nested loop-carried
        state first must not cache the optimistic partial results of its
        cycle — a later query for the outer loop's result would then claim
        the body's ``ptr_y`` overwrite never happened."""
        module = parse_module(
            """
            func.func @f(%x : i64, %y : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %s0 = accfg.setup on "toyvec" ("ptr_y" = %x : i64) : !accfg.state<"toyvec">
              %r = scf.for %i = %c0 to %c1 step %c1 iter_args(%st = %s0) -> (!accfg.state<"toyvec">) {
                %s1 = accfg.setup on "toyvec" from %st ("ptr_y" = %y : i64) : !accfg.state<"toyvec">
                %r2 = scf.for %j = %c0 to %c1 step %c1 iter_args(%st2 = %s1) -> (!accfg.state<"toyvec">) {
                  %s2 = accfg.setup on "toyvec" from %st2 ("op" = %j : index) : !accfg.state<"toyvec">
                  scf.yield %s2 : !accfg.state<"toyvec">
                }
                scf.yield %r2 : !accfg.state<"toyvec">
              }
              func.return
            }
            """
        )
        loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
        outer = next(loop for loop in loops if loop.parent_op.name == "func.func")
        inner = next(loop for loop in loops if loop is not outer)
        fresh = KnownFieldsAnalysis("toyvec")
        expected = fresh.known(outer.results[0])
        assert "ptr_y" not in expected.fields  # %x vs %y disagree
        primed = KnownFieldsAnalysis("toyvec")
        primed.known(inner.iter_args[0])  # the poisoning query order
        assert primed.known(outer.results[0]).fields == expected.fields
