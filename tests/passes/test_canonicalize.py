"""Tests for canonicalization: folding, DCE of pure ops, scf simplification."""

from repro.dialects import arith, scf
from repro.ir import parse_module, verify_operation
from repro.passes import CanonicalizePass


def canonicalized(text: str):
    module = parse_module(text)
    CanonicalizePass().apply(module)
    verify_operation(module)
    return module


def op_names(module):
    return [op.name for op in module.walk() if op.name.startswith("arith")]


class TestConstantFolding:
    def test_bit_packing_ladder_folds(self):
        """Listing 1's shift/or ladder collapses when inputs are constant."""
        module = canonicalized(
            """
            func.func @f() -> (i64) {
              %i = arith.constant 3 : i64
              %j = arith.constant 5 : i64
              %k = arith.constant 7 : i64
              %c16 = arith.constant 16 : i64
              %c32 = arith.constant 32 : i64
              %sj = arith.shli %j, %c16 : i64
              %sk = arith.shli %k, %c32 : i64
              %p1 = arith.ori %i, %sj : i64
              %p2 = arith.ori %p1, %sk : i64
              func.return %p2 : i64
            }
            """
        )
        constants = [
            op for op in module.walk() if isinstance(op, arith.ConstantOp)
        ]
        assert len(constants) == 1
        assert constants[0].value == 3 | (5 << 16) | (7 << 32)

    def test_chain_folds_through(self):
        module = canonicalized(
            """
            func.func @f() -> (i64) {
              %a = arith.constant 2 : i64
              %b = arith.constant 3 : i64
              %c = arith.muli %a, %b : i64
              %d = arith.addi %c, %a : i64
              func.return %d : i64
            }
            """
        )
        constants = [
            op for op in module.walk() if isinstance(op, arith.ConstantOp)
        ]
        assert [c.value for c in constants] == [8]


class TestDeadCodeRemoval:
    def test_unused_pure_op_removed(self):
        module = canonicalized(
            """
            func.func @f() -> () {
              %a = arith.constant 2 : i64
              %b = arith.addi %a, %a : i64
              func.return
            }
            """
        )
        assert op_names(module) == []

    def test_impure_op_kept(self):
        module = canonicalized(
            """
            func.func @f() -> () {
              %a = arith.constant 2 : i64
              %s = accfg.setup on "toyvec" ("n" = %a : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        names = [op.name for op in module.walk()]
        assert "accfg.setup" in names


class TestIfSimplification:
    def test_constant_true_inlines_then(self):
        module = canonicalized(
            """
            func.func @f(%x : i64) -> (i64) {
              %t = arith.constant 1 : i1
              %r = scf.if %t -> (i64) {
                %a = arith.addi %x, %x : i64
                scf.yield %a : i64
              } else {
                scf.yield %x : i64
              }
              func.return %r : i64
            }
            """
        )
        names = [op.name for op in module.walk()]
        assert "scf.if" not in names
        assert "arith.addi" in names

    def test_constant_false_inlines_else(self):
        module = canonicalized(
            """
            func.func @f(%x : i64) -> (i64) {
              %t = arith.constant 0 : i1
              %r = scf.if %t -> (i64) {
                %a = arith.addi %x, %x : i64
                scf.yield %a : i64
              } else {
                scf.yield %x : i64
              }
              func.return %r : i64
            }
            """
        )
        names = [op.name for op in module.walk()]
        assert "scf.if" not in names
        assert "arith.addi" not in names

    def test_constant_false_no_else_erased(self):
        module = canonicalized(
            """
            func.func @f(%x : i64) -> () {
              %t = arith.constant 0 : i1
              scf.if %t {
                %s = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """
        )
        names = [op.name for op in module.walk()]
        assert "scf.if" not in names
        assert "accfg.setup" not in names


class TestLoopSimplification:
    def test_zero_trip_loop_removed(self):
        module = canonicalized(
            """
            func.func @f(%x : i64) -> (i64) {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %r = scf.for %i = %c0 to %c0 step %c1 iter_args(%acc = %x) -> (i64) {
                %n = arith.addi %acc, %acc : i64
                scf.yield %n : i64
              }
              func.return %r : i64
            }
            """
        )
        names = [op.name for op in module.walk()]
        assert "scf.for" not in names

    def test_nonzero_trip_loop_kept(self):
        module = canonicalized(
            """
            func.func @f(%x : i64) -> (i64) {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              %r = scf.for %i = %c0 to %c4 step %c1 iter_args(%acc = %x) -> (i64) {
                %n = arith.addi %acc, %acc : i64
                scf.yield %n : i64
              }
              func.return %r : i64
            }
            """
        )
        names = [op.name for op in module.walk()]
        assert "scf.for" in names


class TestConstantDedup:
    def test_same_block_constants_merged(self):
        module = canonicalized(
            """
            func.func @f() -> (i64) {
              %a = arith.constant 7 : i64
              %b = arith.constant 7 : i64
              %c = arith.addi %a, %b : i64
              func.return %c : i64
            }
            """
        )
        constants = [
            op for op in module.walk() if isinstance(op, arith.ConstantOp)
        ]
        # folding turned addi into 14; 7s removed as dead
        assert [c.value for c in constants] == [14]

    def test_different_types_not_merged(self):
        module = canonicalized(
            """
            func.func @f(%x : i1) -> () {
              %a = arith.constant 1 : i64
              %b = arith.constant 1 : i32
              %s = accfg.setup on "toyvec" ("n" = %a : i64, "op" = %b : i32) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        constants = [
            op for op in module.walk() if isinstance(op, arith.ConstantOp)
        ]
        assert len(constants) == 2
