"""A 'FileCheck'-style test replaying the paper's Figure 9 end to end.

Figure 9 shows three stages of the same loop:

1. traced: an empty anchor state, the setup inside the loop writing both
   the pointer and the loop counter;
2. after loop-invariant setup-field hoisting: the pointer write moves in
   front of the loop, only the counter stays inside;
3. after overlap: the launch fires first from the incoming state, the
   setup for ``i+1`` runs in the accelerator's shadow, then the await.

This test drives the real passes over the same program and checks each
stage's structural signature.
"""

from repro.dialects import accfg, arith, scf
from repro.ir import parse_module, verify_operation
from repro.passes import DedupPass, OverlapPass, TraceStatesPass

FIGURE9_INPUT = """
func.func @main(%ptrA : i64) -> () {
  %c0 = arith.constant 0 : index
  %c1 = arith.constant 1 : index
  %c10 = arith.constant 10 : index
  scf.for %i = %c0 to %c10 step %c1 {
    %s = accfg.setup on "toyvec" ("ptr_x" = %ptrA : i64, "n" = %i : index) : !accfg.state<"toyvec">
    %token = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %token
    scf.yield
  }
  func.return
}
"""


def loop_of(module) -> scf.ForOp:
    return next(op for op in module.walk() if isinstance(op, scf.ForOp))


class TestFigure9Stages:
    def test_stage1_state_threading(self):
        """First transition: the state becomes a loop iter_arg, anchored by
        an empty setup before the loop."""
        module = parse_module(FIGURE9_INPUT)
        TraceStatesPass().apply(module)
        verify_operation(module)
        loop = loop_of(module)
        assert len(loop.iter_args) == 1
        assert isinstance(loop.iter_args[0].type, accfg.StateType)
        anchor = loop.iter_inits[0].owner
        assert isinstance(anchor, accfg.SetupOp)
        assert anchor.fields == ()  # `accfg.setup to ()` of Figure 9
        inner = next(
            op for op in loop.body.ops if isinstance(op, accfg.SetupOp)
        )
        assert inner.in_state is loop.iter_args[0]
        assert loop.yield_op.operands[-1] is inner.out_state

    def test_stage2_licm_of_setup_fields(self):
        """Second transition (blue in Figure 9): the loop-invariant pointer
        moves into a pre-loop setup; the counter write stays inside."""
        module = parse_module(FIGURE9_INPUT)
        TraceStatesPass().apply(module)
        DedupPass().apply(module)
        verify_operation(module)
        loop = loop_of(module)
        pre = loop.iter_inits[0].owner
        assert isinstance(pre, accfg.SetupOp)
        assert pre.field_names == ("ptr_x",)
        inner = next(
            op for op in loop.body.ops if isinstance(op, accfg.SetupOp)
        )
        assert inner.field_names == ("n",)

    def test_stage3_overlap_rotation(self):
        """Third transition (gray-green): launch first from the incoming
        state, setup for i+1 before the await, final state yielded."""
        module = parse_module(FIGURE9_INPUT)
        TraceStatesPass().apply(module)
        DedupPass().apply(module)
        OverlapPass({"toyvec"}).apply(module)
        verify_operation(module)
        loop = loop_of(module)
        body_names = [op.name for op in loop.body.ops]
        assert body_names[0] == "accfg.launch"
        launch = loop.body.ops[0]
        assert launch.state is loop.iter_args[0]
        # %i_next = %i + step feeds the rotated setup.
        setup = next(op for op in loop.body.ops if isinstance(op, accfg.SetupOp))
        (field_value,) = setup.field_values
        increment = field_value.owner
        assert isinstance(increment, arith.AddiOp)
        assert increment.lhs is loop.induction_var
        # setup precedes the await; the rotated state is yielded.
        assert body_names.index("accfg.setup") < body_names.index("accfg.await")
        assert loop.yield_op.operands[-1] is setup.out_state
        # The preamble setup covers iteration 0: its counter is the lower
        # bound (folded or as the lb value itself).
        pre_setups = [
            op
            for op in module.walk()
            if isinstance(op, accfg.SetupOp) and op.parent is not loop.body
        ]
        pre_counter = [s for s in pre_setups if "n" in s.field_names]
        assert len(pre_counter) == 1
        counter_value = pre_counter[0].field_value("n")
        assert counter_value is loop.lb or (
            isinstance(counter_value.owner, arith.ConstantOp)
            and counter_value.owner.value == 0
        )

    def test_stages_preserve_execution(self):
        """All three stages launch the accelerator the same ten times."""
        from repro.interp import run_module
        from repro.sim import CoSimulator

        def launches(pipeline_steps):
            module = parse_module(FIGURE9_INPUT)
            for step in pipeline_steps:
                step.apply(module)
            sim = CoSimulator(functional=False)
            run_module(module, sim, args=[0])
            return sim.device("toyvec").launch_count

        assert launches([]) == 10
        assert launches([TraceStatesPass()]) == 10
        assert launches([TraceStatesPass(), DedupPass()]) == 10
        assert (
            launches([TraceStatesPass(), DedupPass(), OverlapPass({"toyvec"})])
            == 10
        )
