"""Tests for CSE, DCE and LICM."""

from repro.dialects import arith, scf
from repro.ir import parse_module, verify_operation
from repro.passes import CSEPass, DCEPass, LICMPass


def apply(pass_, text):
    module = parse_module(text)
    pass_.apply(module)
    verify_operation(module)
    return module


def count(module, name):
    return sum(1 for op in module.walk() if op.name == name)


class TestCSE:
    def test_identical_ops_merged(self):
        module = apply(
            CSEPass(),
            """
            func.func @f(%x : i64) -> () {
              %a = arith.addi %x, %x : i64
              %b = arith.addi %x, %x : i64
              %s = accfg.setup on "toyvec" ("n" = %a : i64, "op" = %b : i64) : !accfg.state<"toyvec">
              func.return
            }
            """,
        )
        setups = [op for op in module.walk() if op.name == "accfg.setup"]
        values = setups[0].field_values
        assert values[0] is values[1]

    def test_different_attrs_not_merged(self):
        module = apply(
            CSEPass(),
            """
            func.func @f(%x : i64) -> () {
              %a = arith.cmpi eq, %x, %x : i64
              %b = arith.cmpi ne, %x, %x : i64
              %s = arith.select %a, %x, %x : i64
              %t = arith.select %b, %x, %x : i64
              %u = accfg.setup on "toyvec" ("n" = %s : i64, "op" = %t : i64) : !accfg.state<"toyvec">
              func.return
            }
            """,
        )
        assert count(module, "arith.cmpi") == 2

    def test_outer_value_visible_in_region(self):
        module = apply(
            CSEPass(),
            """
            func.func @f(%x : i64) -> () {
              %a = arith.addi %x, %x : i64
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                %b = arith.addi %x, %x : i64
                %s = accfg.setup on "toyvec" ("n" = %b : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              %t = accfg.setup on "toyvec" ("n" = %a : i64) : !accfg.state<"toyvec">
              func.return
            }
            """,
        )
        assert count(module, "arith.addi") == 1

    def test_inner_value_not_hoisted_to_outer(self):
        module = apply(
            CSEPass(),
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              scf.for %i = %c0 to %c1 step %c1 {
                %a = arith.addi %x, %x : i64
                %s = accfg.setup on "toyvec" ("n" = %a : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              %b = arith.addi %x, %x : i64
              %t = accfg.setup on "toyvec" ("n" = %b : i64) : !accfg.state<"toyvec">
              func.return
            }
            """,
        )
        # %b must NOT be CSE'd against the loop-internal %a.
        assert count(module, "arith.addi") == 2

    def test_impure_ops_not_merged(self):
        module = apply(
            CSEPass(),
            """
            func.func @f(%x : i64) -> () {
              %a = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %b = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %t1 = accfg.launch %a : !accfg.token<"toyvec">
              %t2 = accfg.launch %b : !accfg.token<"toyvec">
              func.return
            }
            """,
        )
        assert count(module, "accfg.setup") == 2


class TestDCE:
    def test_dead_chain_removed(self):
        module = apply(
            DCEPass(),
            """
            func.func @f(%x : i64) -> () {
              %a = arith.addi %x, %x : i64
              %b = arith.muli %a, %a : i64
              %c = arith.addi %b, %a : i64
              func.return
            }
            """,
        )
        assert count(module, "arith.addi") == 0
        assert count(module, "arith.muli") == 0

    def test_partially_used_chain_kept(self):
        module = apply(
            DCEPass(),
            """
            func.func @f(%x : i64) -> (i64) {
              %a = arith.addi %x, %x : i64
              %b = arith.muli %a, %a : i64
              func.return %a : i64
            }
            """,
        )
        assert count(module, "arith.addi") == 1
        assert count(module, "arith.muli") == 0

    def test_impure_never_removed(self):
        module = apply(
            DCEPass(),
            """
            func.func @f(%x : i64) -> () {
              %s = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """,
        )
        assert count(module, "accfg.setup") == 1

    def test_dead_ops_inside_loops_removed(self):
        module = apply(
            DCEPass(),
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                %dead = arith.addi %x, %x : i64
                scf.yield
              }
              func.return
            }
            """,
        )
        assert count(module, "arith.addi") == 0


class TestLICM:
    LOOP = """
    func.func @f(%x : i64) -> () {
      %c0 = arith.constant 0 : index
      %c1 = arith.constant 1 : index
      %c4 = arith.constant 4 : index
      scf.for %i = %c0 to %c4 step %c1 {
        BODY
        scf.yield
      }
      func.return
    }
    """

    def test_invariant_hoisted(self):
        module = apply(
            LICMPass(),
            self.LOOP.replace(
                "BODY",
                """%inv = arith.addi %x, %x : i64
        %s = accfg.setup on "toyvec" ("n" = %inv : i64) : !accfg.state<"toyvec">""",
            ),
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        body_names = [op.name for op in loop.body.ops]
        assert "arith.addi" not in body_names
        assert "accfg.setup" in body_names  # setups are never LICM'd

    def test_variant_stays(self):
        module = apply(
            LICMPass(),
            self.LOOP.replace(
                "BODY",
                """%var = arith.muli %x, %x : i64
        %dep = arith.addi %var, %var : i64
        %s = accfg.setup on "toyvec" ("n" = %dep : i64) : !accfg.state<"toyvec">""",
            ),
        )
        # both are invariant actually: muli of %x, addi of it -> both hoist
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert [op.name for op in loop.body.ops] == ["accfg.setup", "scf.yield"]

    def test_iv_dependent_not_hoisted(self):
        module = apply(
            LICMPass(),
            """
            func.func @f(%x : index) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                %v = arith.addi %i, %x : index
                %s = accfg.setup on "toyvec" ("n" = %v : index) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """,
        )
        loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert "arith.addi" in [op.name for op in loop.body.ops]

    def test_nested_loops_hoist_all_the_way(self):
        module = apply(
            LICMPass(),
            """
            func.func @f(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                scf.for %j = %c0 to %c4 step %c1 {
                  %inv = arith.addi %x, %x : i64
                  %s = accfg.setup on "toyvec" ("n" = %inv : i64) : !accfg.state<"toyvec">
                  scf.yield
                }
                scf.yield
              }
              func.return
            }
            """,
        )
        loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
        for loop in loops:
            assert "arith.addi" not in [op.name for op in loop.body.ops]
