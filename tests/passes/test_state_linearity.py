"""Tests for the one-live-state constraint checker (paper, Section 5.1)."""

from repro.ir import parse_module
from repro.passes import TraceStatesPass, state_linearity_diagnostics


class TestLinearChains:
    def test_traced_straight_line_is_linear(self):
        module = parse_module(
            """
            func.func @main(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        TraceStatesPass().apply(module)
        assert state_linearity_diagnostics(module) == []

    def test_traced_loop_is_linear(self):
        module = parse_module(
            """
            func.func @main(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                %s = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
                %t = accfg.launch %s : !accfg.token<"toyvec">
                accfg.await %t
                scf.yield
              }
              func.return
            }
            """
        )
        TraceStatesPass().apply(module)
        assert state_linearity_diagnostics(module) == []

    def test_pipelined_loop_is_linear(self):
        from repro.passes import pipeline_by_name

        module = parse_module(
            """
            func.func @main(%x : index) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                %v = arith.addi %x, %i : index
                %s = accfg.setup on "toyvec" ("n" = %v : index) : !accfg.state<"toyvec">
                %t = accfg.launch %s : !accfg.token<"toyvec">
                accfg.await %t
                scf.yield
              }
              func.return
            }
            """
        )
        pipeline_by_name("full").run(module)
        assert state_linearity_diagnostics(module) == []


class TestViolations:
    def test_forked_chain_flagged(self):
        module = parse_module(
            """
            func.func @main(%x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s1 = accfg.setup on "toyvec" from %s0 ("op" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "toyvec" from %s0 ("op" = %y : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        diagnostics = state_linearity_diagnostics(module)
        assert len(diagnostics) == 1
        assert "forked" in diagnostics[0]

    def test_launch_on_superseded_state_flagged(self):
        module = parse_module(
            """
            func.func @main(%x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s1 = accfg.setup on "toyvec" from %s0 ("n" = %y : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s0 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        diagnostics = state_linearity_diagnostics(module)
        assert any("superseded state" in d for d in diagnostics)

    def test_untraced_disconnected_setups_allowed(self):
        """Frontend output before tracing: disconnected chains carry no
        in_state, so nothing is superseded yet."""
        module = parse_module(
            """
            func.func @main(%x : i64) -> () {
              %s1 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        assert state_linearity_diagnostics(module) == []
