"""Tests for pass-manager instrumentation."""

from repro.ir import parse_module
from repro.passes import (
    CanonicalizePass,
    DCEPass,
    PassManager,
    TraceStatesPass,
)

PROGRAM = """
func.func @f(%x : i64) -> () {
  %dead = arith.addi %x, %x : i64
  %s = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
  %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
  func.return
}
"""


class TestInstrumentation:
    def test_statistics_collected_per_pass(self):
        pm = PassManager([CanonicalizePass(), DCEPass()], instrument=True)
        pm.run(parse_module(PROGRAM))
        assert [s.pass_name for s in pm.statistics] == ["canonicalize", "dce"]
        for stat in pm.statistics:
            assert stat.seconds >= 0.0

    def test_op_deltas_tracked(self):
        pm = PassManager([CanonicalizePass()], instrument=True)
        pm.run(parse_module(PROGRAM))
        stat = pm.statistics[0]
        # canonicalize removes the dead addi
        assert stat.ops_delta == -1
        assert stat.ops_after == stat.ops_before - 1

    def test_no_instrumentation_by_default(self):
        pm = PassManager([CanonicalizePass()])
        pm.run(parse_module(PROGRAM))
        assert pm.statistics == []

    def test_format(self):
        pm = PassManager([TraceStatesPass()], instrument=True)
        pm.run(parse_module(PROGRAM))
        text = pm.format_statistics()
        assert "accfg-trace-states" in text
        assert "ms" in text

    def test_format_empty(self):
        assert "no pass statistics" in PassManager().format_statistics()
