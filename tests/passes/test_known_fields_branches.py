"""Tests for the known-fields dataflow through branches (Section 5.4.1:
"our inference has to take the intersection of the two sides")."""

from repro.dialects import accfg, scf
from repro.ir import parse_module
from repro.passes import TraceStatesPass
from repro.passes.dedup import KnownFieldsAnalysis


def known_after_if(text):
    module = parse_module(text)
    TraceStatesPass().apply(module)
    if_op = next(op for op in module.walk() if isinstance(op, scf.IfOp))
    state_result = next(
        r for r in if_op.results if isinstance(r.type, accfg.StateType)
    )
    return KnownFieldsAnalysis("toyvec").known(state_result)


class TestBranchIntersection:
    def test_field_written_in_one_branch_is_dropped(self):
        known = known_after_if(
            """
            func.func @f(%c : i1, %x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %y : i64) : !accfg.state<"toyvec">
                scf.yield
              } else {
                scf.yield
              }
              func.return
            }
            """
        )
        # "n" survives (untouched on both paths); "op" is branch-dependent.
        assert "n" in known.fields
        assert "op" not in known.fields

    def test_same_value_on_both_paths_survives(self):
        known = known_after_if(
            """
            func.func @f(%c : i1, %x : i64) -> () {
              %s0 = accfg.setup on "toyvec" () : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                scf.yield
              } else {
                %s2 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """
        )
        assert known.fields.get("op") is not None

    def test_different_values_per_path_dropped(self):
        known = known_after_if(
            """
            func.func @f(%c : i1, %x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" () : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %x : i64) : !accfg.state<"toyvec">
                scf.yield
              } else {
                %s2 = accfg.setup on "toyvec" ("op" = %y : i64) : !accfg.state<"toyvec">
                scf.yield
              }
              func.return
            }
            """
        )
        assert "op" not in known.fields

    def test_overwrite_on_one_path_kills_incoming_knowledge(self):
        known = known_after_if(
            """
            func.func @f(%c : i1, %x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("n" = %y : i64) : !accfg.state<"toyvec">
                scf.yield
              } else {
                scf.yield
              }
              func.return
            }
            """
        )
        assert "n" not in known.fields

    def test_post_if_dedup_uses_intersection(self):
        """End to end: only the intersection-stable field is removable from
        the post-if setup."""
        from repro.passes import DedupPass

        module = parse_module(
            """
            func.func @f(%c : i1, %x : i64, %y : i64) -> () {
              %s0 = accfg.setup on "toyvec" ("n" = %x : i64, "op" = %x : i64) : !accfg.state<"toyvec">
              %t0 = accfg.launch %s0 : !accfg.token<"toyvec">
              scf.if %c {
                %s1 = accfg.setup on "toyvec" ("op" = %y : i64) : !accfg.state<"toyvec">
                %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
                scf.yield
              } else {
                scf.yield
              }
              %s2 = accfg.setup on "toyvec" ("n" = %x : i64, "op" = %x : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        TraceStatesPass().apply(module)
        DedupPass().apply(module)
        # "n" is stable across both paths and dedup-able; "op" was
        # overwritten on one path and must still be written somewhere after
        # the branch (inside the branches after hoisting, or at the join).
        remaining = set()
        for setup in module.walk():
            if isinstance(setup, accfg.SetupOp):
                remaining.update(setup.field_names)
        # "op" must still be written somewhere after the branch (inside the
        # branches after hoisting, or in the final setup).
        assert "op" in remaining
