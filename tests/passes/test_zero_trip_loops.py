"""Regression tests: loop hoisting/pipelining must not write configuration
for loops that execute zero times.

A hoisted (or pipelined-preamble) setup writes registers the original
program never wrote; a later launch on the carried state would observe
them.  The passes guard such setups with ``lb < ub`` when the trip count is
not provably positive.
"""

import numpy as np

from repro.dialects import accfg, scf
from repro.interp import run_module
from repro.ir import parse_module, verify_operation
from repro.passes import DedupPass, OverlapPass, TraceStatesPass, pipeline_by_name
from repro.sim import CoSimulator, Memory


def zero_trip_program(memory):
    """Configure add; run a (runtime) zero-trip loop that would configure
    multiply; launch after the loop.  Result must be the SUM."""
    x = memory.place(np.arange(8, dtype=np.int32) + 1)
    y = memory.place(np.arange(8, dtype=np.int32) + 1)
    out = memory.alloc(8, np.int32)
    text = f"""
    func.func @main(%n : index) -> () {{
      %px = arith.constant {x.addr} : i64
      %py = arith.constant {y.addr} : i64
      %po = arith.constant {out.addr} : i64
      %len = arith.constant 8 : i64
      %add = arith.constant 0 : i64
      %mul = arith.constant 1 : i64
      %c0 = arith.constant 0 : index
      %c1 = arith.constant 1 : index
      %s0 = accfg.setup on "toyvec" ("ptr_x" = %px : i64, "ptr_y" = %py : i64, "ptr_out" = %po : i64, "n" = %len : i64, "op" = %add : i64) : !accfg.state<"toyvec">
      scf.for %i = %c0 to %n step %c1 {{
        %s1 = accfg.setup on "toyvec" ("op" = %mul : i64) : !accfg.state<"toyvec">
        %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
        accfg.await %t1
        scf.yield
      }}
      %t = accfg.launch %s0 : !accfg.token<"toyvec">
      accfg.await %t
      func.return
    }}
    """
    return parse_module(text), (x, y, out)


class TestZeroTripSoundness:
    def run_with(self, pipeline_steps):
        memory = Memory()
        module, (x, y, out) = zero_trip_program(memory)
        for step in pipeline_steps:
            step.apply(module)
        verify_operation(module)
        sim = CoSimulator(memory=memory)
        run_module(module, sim, args=[0])  # loop runs ZERO times
        return x.array, y.array, out.array

    def test_unoptimized_reference(self):
        x, y, out = self.run_with([])
        assert (out == x + y).all()

    def test_dedup_hoisting_guarded(self):
        x, y, out = self.run_with([TraceStatesPass(), DedupPass()])
        assert (out == x + y).all(), "hoisted 'op' write leaked into zero-trip path"

    def test_overlap_preamble_guarded(self):
        x, y, out = self.run_with(
            [TraceStatesPass(), OverlapPass({"toyvec"})]
        )
        assert (out == x + y).all(), "pipelined preamble leaked into zero-trip path"

    def test_full_pipeline(self):
        memory = Memory()
        module, (x, y, out) = zero_trip_program(memory)
        pipeline_by_name("full").run(module)
        sim = CoSimulator(memory=memory)
        run_module(module, sim, args=[0])
        assert (out.array == x.array + y.array).all()

    def test_nonzero_trips_still_optimized_and_correct(self):
        memory = Memory()
        module, (x, y, out) = zero_trip_program(memory)
        pipeline_by_name("full").run(module)
        sim = CoSimulator(memory=memory)
        run_module(module, sim, args=[3])  # loop runs: product wins
        assert (out.array == x.array * y.array).all()

    def test_guard_emitted_for_runtime_bounds(self):
        memory = Memory()
        module, _ = zero_trip_program(memory)
        TraceStatesPass().apply(module)
        DedupPass().apply(module)
        # The hoisted 'op' setup sits behind an scf.if guard.
        guards = [
            op
            for op in module.walk()
            if isinstance(op, scf.IfOp)
            and any(isinstance(r.type, accfg.StateType) for r in op.results)
        ]
        assert guards, "expected a lb<ub guard around the hoisted setup"

    def test_no_guard_for_constant_positive_bounds(self):
        memory = Memory()
        x = memory.place(np.arange(8, dtype=np.int32))
        module = parse_module(
            f"""
            func.func @main() -> () {{
              %ptr = arith.constant {x.addr} : i64
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {{
                %s = accfg.setup on "toyvec" ("ptr_x" = %ptr : i64, "n" = %i : index) : !accfg.state<"toyvec">
                %t = accfg.launch %s : !accfg.token<"toyvec">
                accfg.await %t
                scf.yield
              }}
              func.return
            }}
            """
        )
        TraceStatesPass().apply(module)
        DedupPass().apply(module)
        assert not any(isinstance(op, scf.IfOp) for op in module.walk())
