"""Determinism: identical inputs must produce identical simulations.

The whole evaluation methodology rests on run-to-run reproducibility; no
wall-clock, randomness, or iteration-order effects may leak into cycle
counts or traces.
"""

from repro.experiments.common import run_workload
from repro.interp import run_module
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator
from repro.workloads import build_gemmini_matmul, build_opengemm_matmul


def trace_signature(sim):
    return [
        (instr.mnemonic, instr.category, instr.config_bytes, instr.accelerator)
        for instr in sim.trace.instrs
    ]


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        runs = [
            run_workload(build_opengemm_matmul(32), "full", functional=False)
            for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].metrics == runs[1].metrics

    def test_identical_traces(self):
        sims = []
        for _ in range(2):
            workload = build_opengemm_matmul(16)
            pipeline_by_name("full").run(workload.module)
            sim = CoSimulator(memory=workload.memory, functional=False)
            run_module(workload.module, sim)
            sims.append(sim)
        assert trace_signature(sims[0]) == trace_signature(sims[1])

    def test_identical_optimized_ir(self):
        texts = []
        for _ in range(2):
            workload = build_gemmini_matmul(32)
            pipeline_by_name("full").run(workload.module)
            texts.append(str(workload.module))
        assert texts[0] == texts[1]

    def test_seeded_inputs_reproducible(self):
        a = build_opengemm_matmul(16, seed=9)
        b = build_opengemm_matmul(16, seed=9)
        assert (a.a.array == b.a.array).all()
        assert (a.b.array == b.b.array).all()
