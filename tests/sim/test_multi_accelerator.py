"""Tests for programs driving several accelerators in one co-simulation."""

import numpy as np
import pytest

from repro.interp import run_module
from repro.ir import parse_module
from repro.isa import HostCostModel
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator, Memory


def two_accelerator_module(memory):
    x = memory.place(np.arange(16, dtype=np.int32))
    y = memory.place(np.arange(16, dtype=np.int32))
    out = memory.alloc(16, np.int32)
    a = memory.place(np.eye(16, dtype=np.int8))
    b = memory.place(np.full((16, 16), 2, dtype=np.int8))
    c = memory.alloc((16, 16), np.int32)
    module = parse_module(
        f"""
        func.func @main() -> () {{
          %px = arith.constant {x.addr} : i64
          %py = arith.constant {y.addr} : i64
          %po = arith.constant {out.addr} : i64
          %n = arith.constant 16 : i64
          %zero = arith.constant 0 : i64
          %vs = accfg.setup on "toyvec" ("ptr_x" = %px : i64, "ptr_y" = %py : i64, "ptr_out" = %po : i64, "n" = %n : i64, "op" = %zero : i64) : !accfg.state<"toyvec">
          %vt = accfg.launch %vs : !accfg.token<"toyvec">
          %pa = arith.constant {a.addr} : i64
          %pb = arith.constant {b.addr} : i64
          %pc = arith.constant {c.addr} : i64
          %s16 = arith.constant 16 : i64
          %op = arith.constant 4 : i64
          %gs = accfg.setup on "gemmini" ("stride_A" = %s16 : i64, "stride_B" = %s16 : i64, "stride_C" = %s16 : i64) : !accfg.state<"gemmini">
          %gt = accfg.launch %gs ("op" = %op : i64, "ld_addr" = %pa : i64, "preload_addr" = %pb : i64, "st_addr" = %pc : i64, "acc" = %zero : i64) : !accfg.token<"gemmini">
          accfg.await %vt
          accfg.await %gt
          func.return
        }}
        """
    )
    return module, (x, y, out, a, b, c)


class TestMultiAccelerator:
    def test_devices_run_concurrently(self):
        memory = Memory()
        module, buffers = two_accelerator_module(memory)
        sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
        run_module(module, sim)
        assert set(sim.devices) == {"toyvec", "gemmini"}
        vec = sim.device("toyvec")
        gem = sim.device("gemmini")
        assert vec.launch_count == 1 and gem.launch_count == 1
        # The two compute windows overlap: gemmini launched before the
        # vector engine finished.
        # (both start after their own config; neither waits for the other)
        assert gem._launch_ends[0] > 0 and vec._launch_ends[0] > 0

    def test_results_correct(self):
        memory = Memory()
        module, (x, y, out, a, b, c) = two_accelerator_module(memory)
        run_module(module, CoSimulator(memory=memory))
        assert (out.array == x.array + y.array).all()
        assert (c.array == np.full((16, 16), 2, dtype=np.int32)).all()

    def test_full_pipeline_preserves_both(self):
        memory = Memory()
        module, (x, y, out, a, b, c) = two_accelerator_module(memory)
        pipeline_by_name("full").run(module)
        run_module(module, CoSimulator(memory=memory))
        assert (out.array == x.array + y.array).all()
        assert (c.array == np.full((16, 16), 2, dtype=np.int32)).all()

    def test_per_accelerator_metrics(self):
        from repro.sim.metrics import collect_metrics

        memory = Memory()
        module, _ = two_accelerator_module(memory)
        sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
        run_module(module, sim)
        vec_metrics = collect_metrics(sim, "toyvec")
        gem_metrics = collect_metrics(sim, "gemmini")
        assert vec_metrics.total_ops == 16
        assert gem_metrics.total_ops == 2 * 16**3
        # config bytes are attributed per accelerator
        assert vec_metrics.config_bytes != gem_metrics.config_bytes

    def test_total_cycles_accounts_for_latest_device(self):
        memory = Memory()
        module, _ = two_accelerator_module(memory)
        sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
        run_module(module, sim)
        latest = max(d.busy_until for d in sim.devices.values())
        assert sim.total_cycles >= latest
