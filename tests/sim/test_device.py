"""Tests for the accelerator device model: sequential vs concurrent
configuration semantics (paper, Section 2.2)."""

import numpy as np
import pytest

from repro.backends import get_accelerator
from repro.sim import AcceleratorDevice, Memory, SimulationError


def toyvec_device(concurrent=True):
    name = "toyvec" if concurrent else "toyvec-seq"
    memory = Memory()
    x = memory.place(np.arange(16, dtype=np.int32))
    y = memory.place(np.arange(16, dtype=np.int32) * 10)
    out = memory.alloc(16, np.int32)
    device = AcceleratorDevice(get_accelerator(name), memory)
    config = {
        "ptr_x": x.addr,
        "ptr_y": y.addr,
        "ptr_out": out.addr,
        "n": 16,
        "op": 0,
    }
    return device, config, (x, y, out)


class TestSequentialConfiguration:
    def test_write_while_idle_immediate(self):
        device, config, _ = toyvec_device(concurrent=False)
        start = device.write_fields(config, now=100.0)
        assert start == 100.0
        assert device.registers["n"] == 16

    def test_write_while_busy_stalls(self):
        device, config, _ = toyvec_device(concurrent=False)
        device.write_fields(config, 0.0)
        token = device.launch(0.0)
        assert device.is_busy(1.0)
        start = device.write_fields({"n": 8}, now=1.0)
        assert start == token.end

    def test_registers_written_directly(self):
        device, config, _ = toyvec_device(concurrent=False)
        device.write_fields({"n": 5}, 0.0)
        assert device.effective_config()["n"] == 5
        assert device.staged == {}


class TestConcurrentConfiguration:
    def test_write_while_busy_stages(self):
        device, config, _ = toyvec_device(concurrent=True)
        device.write_fields(config, 0.0)
        device.launch(0.0)
        start = device.write_fields({"n": 8}, now=1.0)
        assert start == 1.0  # no stall
        assert device.staged == {"n": 8}
        assert device.registers["n"] == 16  # live copy unchanged

    def test_launch_commits_staged(self):
        device, config, _ = toyvec_device(concurrent=True)
        device.write_fields(config, 0.0)
        first = device.launch(0.0)
        device.write_fields({"n": 8}, 1.0)
        second = device.launch(5.0)
        assert second.start == first.end  # launch is a barrier
        assert device.registers["n"] == 8
        assert device.staged == {}

    def test_effective_config_merges_staged(self):
        device, config, _ = toyvec_device(concurrent=True)
        device.write_fields(config, 0.0)
        device.launch(0.0)
        device.write_fields({"n": 8}, 1.0)
        assert device.effective_config()["n"] == 8


class TestLaunchSemantics:
    def test_launch_computes_functionally(self):
        device, config, (x, y, out) = toyvec_device()
        device.write_fields(config, 0.0)
        device.launch(0.0)
        assert (out.array == x.array + y.array).all()

    def test_functional_false_skips_execution(self):
        device, config, (x, y, out) = toyvec_device()
        device.write_fields(config, 0.0)
        device.launch(0.0, functional=False)
        assert (out.array == 0).all()

    def test_launch_fields_applied(self):
        device, config, (x, y, out) = toyvec_device()
        config.pop("op")
        device.write_fields(config, 0.0)
        device.launch(0.0, {"op": 1})  # multiply
        assert (out.array == x.array * y.array).all()

    def test_timing_accumulates(self):
        device, config, _ = toyvec_device()
        device.write_fields(config, 0.0)
        t1 = device.launch(0.0)
        t2 = device.launch(0.0)
        assert t2.start == t1.end
        assert device.busy_cycles == pytest.approx(
            (t1.end - t1.start) + (t2.end - t2.start)
        )
        assert device.launch_count == 2

    def test_ops_accounted(self):
        device, config, _ = toyvec_device()
        device.write_fields(config, 0.0)
        token = device.launch(0.0)
        assert token.ops == 16
        assert device.total_ops == 16

    def test_token_from_other_device_rejected(self):
        device_a, config, _ = toyvec_device()
        device_b, config_b, _ = toyvec_device()
        device_a.write_fields(config, 0.0)
        token = device_a.launch(0.0)
        with pytest.raises(SimulationError):
            device_b.completion_time(token)
