"""The fault-injection and recovery protocol inside the co-simulator.

These tests drive :class:`CoSimulator`'s config-plane verbs directly with a
*scripted* injector (exact faults at exact interactions) so every branch of
the recovery runtime — read-back retry, launch re-issue, the await watchdog,
state-loss detection at setup *and* launch sites, degradation, and the
detect-only mode — is pinned without depending on random draws.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultRates,
    RecoveryPolicy,
)
from repro.isa import HostCostModel
from repro.sim import CoSimulator, Memory
from repro.sim.device import FaultError


class ScriptedInjector(FaultInjector):
    """Fault decisions popped from per-kind scripts instead of drawn.

    ``script`` maps a :class:`FaultKind` to the decision sequence for that
    kind's interactions (missing / exhausted entries mean "no fault"), and
    ``polls`` fixes what :meth:`stall_polls` returns.
    """

    def __init__(self, script=None, polls=1):
        super().__init__(seed=0, rates=FaultRates())
        self._script = {
            FaultKind(kind): list(decisions)
            for kind, decisions in (script or {}).items()
        }
        self._polls = polls

    def should(self, kind, accelerator, detail=""):
        index = self._next_index(kind.value)
        queue = self._script.get(kind, [])
        fired = bool(queue.pop(0)) if queue else False
        if fired:
            self.log.append(FaultEvent(kind, index, accelerator, detail))
        return fired

    def stall_polls(self):
        return self._polls


def vector_setup(name="toyvec", **sim_kwargs):
    memory = Memory()
    x = memory.place(np.arange(32, dtype=np.int32))
    y = memory.place(np.arange(32, dtype=np.int32))
    out = memory.alloc(32, np.int32)
    sim = CoSimulator(
        memory=memory, cost_model=HostCostModel(1.0), **sim_kwargs
    )
    config = {
        "ptr_x": x.addr,
        "ptr_y": y.addr,
        "ptr_out": out.addr,
        "n": 32,
        "op": 0,
    }
    return sim, name, config, out


class TestDevicePowerCycle:
    def test_clears_registers_and_bumps_epoch(self):
        sim, name, config, _ = vector_setup()
        device = sim.device(name)
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        assert device.registers or device.staged
        epoch = device.hw_epoch
        device.power_cycle()
        assert device.registers == {}
        assert device.staged == {}
        assert device.hw_epoch == epoch + 1
        # The compute plane is unaffected: the in-flight launch keeps its
        # snapshotted configuration and completion time.
        assert device.busy_until == token.end


class TestVerifiedWrites:
    def test_dropped_write_is_retried_and_lands(self):
        injector = ScriptedInjector({FaultKind.DROP_WRITE: [True]})
        sim, name, config, _ = vector_setup(faults=injector)
        sim.exec_setup(name, config)
        assert sim.device(name).effective_config()["ptr_x"] == config["ptr_x"]
        stats = sim.recovery_stats
        assert stats.write_faults == 1
        assert stats.write_retries == 1
        assert stats.unrecovered == 0
        # The shadow register file reflects the verified values.
        assert sim._shadow[name]["n"] == 32

    def test_corrupted_write_is_detected_and_rewritten(self):
        injector = ScriptedInjector({FaultKind.CORRUPT_WRITE: [True]})
        sim, name, config, _ = vector_setup(faults=injector)
        sim.exec_setup(name, config)
        assert sim.device(name).effective_config() == config
        assert sim.recovery_stats.write_retries == 1

    def test_retry_pays_backoff_stall(self):
        injector = ScriptedInjector({FaultKind.DROP_WRITE: [True]})
        policy = RecoveryPolicy(backoff_base=64.0)
        clean_sim, name, config, _ = vector_setup()
        clean_sim.exec_setup(name, config)
        sim, name, config, _ = vector_setup(faults=injector, recovery=policy)
        sim.exec_setup(name, config)
        assert sim.host_time > clean_sim.host_time + policy.backoff(0)

    def test_detect_only_raises_instead_of_repairing(self):
        injector = ScriptedInjector({FaultKind.DROP_WRITE: [True]})
        sim, name, config, _ = vector_setup(
            faults=injector, recovery=RecoveryPolicy(enabled=False)
        )
        with pytest.raises(FaultError, match="verification failed"):
            sim.exec_setup(name, config)
        assert sim.recovery_stats.unrecovered == 1

    def test_exhausted_retry_budget_raises(self):
        injector = FaultInjector(seed=1, rates=FaultRates(drop_write=1.0))
        sim, name, config, _ = vector_setup(
            faults=injector, recovery=RecoveryPolicy(max_retries=2)
        )
        with pytest.raises(FaultError, match="unrecoverable"):
            sim.exec_setup(name, config)
        assert sim.recovery_stats.unrecovered == 1


class TestStateLoss:
    def test_loss_before_setup_restores_shadow(self):
        # STATE_LOSS interactions: setup #0 clean, setup #1 power-cycles.
        injector = ScriptedInjector({FaultKind.STATE_LOSS: [False, True]})
        sim, name, config, _ = vector_setup(faults=injector)
        sim.exec_setup(name, config)
        sim.exec_setup(name, {"op": 1})
        # Full re-setup (no reliance plan): the whole shadow is replayed, so
        # the earlier pointers survive the power cycle.
        effective = sim.device(name).effective_config()
        assert effective["ptr_x"] == config["ptr_x"]
        assert effective["op"] == 1
        stats = sim.recovery_stats
        assert stats.state_losses == 1
        assert stats.resetup_fields == len(config)
        assert stats.resetup_bytes > 0

    def test_loss_detected_at_launch_site(self):
        # The hoisted-setup idiom: one setup, then launches relying on
        # retention.  STATE_LOSS streams: setup #0 clean, launch's epoch
        # check (#1) fires — detection must happen at the *launch*.
        injector = ScriptedInjector({FaultKind.STATE_LOSS: [False, True]})
        sim, name, config, out = vector_setup(faults=injector)
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        sim.exec_await(token)
        assert sim.recovery_stats.state_losses == 1
        # Recovery re-issued the configuration before the launch committed,
        # so the computation still produced the right answer.
        assert (out.array == np.arange(32) * 2).all()

    def test_loss_without_recovery_raises(self):
        injector = ScriptedInjector({FaultKind.STATE_LOSS: [False, True]})
        sim, name, config, _ = vector_setup(
            faults=injector, recovery=RecoveryPolicy(enabled=False)
        )
        sim.exec_setup(name, config)
        with pytest.raises(FaultError, match="state loss"):
            sim.exec_launch(name)
        assert sim.recovery_stats.unrecovered == 1

    def test_reset_also_forgets_the_shadow(self):
        # An intentional accfg.reset clears the recovery shadow: a state
        # loss right after it has nothing to restore.
        injector = ScriptedInjector({FaultKind.STATE_LOSS: [False, True]})
        sim, name, config, _ = vector_setup(faults=injector)
        sim.exec_setup(name, config)
        sim.exec_reset(name)
        sim.exec_setup(name, {"n": 16})
        assert sim.recovery_stats.state_losses == 1
        assert sim.recovery_stats.resetup_fields == 0


class TestLaunchReject:
    def test_rejected_launch_is_reissued(self):
        injector = ScriptedInjector({FaultKind.LAUNCH_REJECT: [True]})
        sim, name, config, out = vector_setup(faults=injector)
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        sim.exec_await(token)
        assert sim.recovery_stats.launch_rejects == 1
        assert sim.device(name).launch_count == 1
        assert (out.array == np.arange(32) * 2).all()

    def test_reject_without_recovery_raises(self):
        injector = ScriptedInjector({FaultKind.LAUNCH_REJECT: [True]})
        sim, name, config, _ = vector_setup(
            faults=injector, recovery=RecoveryPolicy(enabled=False)
        )
        sim.exec_setup(name, config)
        with pytest.raises(FaultError, match="launch rejected"):
            sim.exec_launch(name)


class TestAwaitWatchdog:
    def run_await(self, polls, policy):
        injector = ScriptedInjector(
            {FaultKind.AWAIT_STALL: [True]}, polls=polls
        )
        sim, name, config, _ = vector_setup(faults=injector, recovery=policy)
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        sim.exec_await(token)
        return sim

    def test_stall_within_budget_recovers(self):
        sim = self.run_await(polls=2, policy=RecoveryPolicy(max_retries=8))
        stats = sim.recovery_stats
        assert stats.await_stalls == 1
        assert stats.watchdog_polls == 2
        assert stats.unrecovered == 0

    def test_stall_beyond_budget_times_out(self):
        with pytest.raises(FaultError, match="watchdog timeout"):
            self.run_await(polls=5, policy=RecoveryPolicy(max_retries=3))

    def test_stall_without_recovery_raises(self):
        with pytest.raises(FaultError, match="stalled"):
            self.run_await(polls=1, policy=RecoveryPolicy(enabled=False))


class TestDegradation:
    def test_repeated_staged_faults_force_sequential(self):
        # toyvec configures concurrently; a faulting round in each of two
        # setups with degrade_after=2 flips it to sequential configuration.
        # Drop draws in order: setup #1's five fields (first drops), the
        # retried field (clean), then setup #2's single field (drops).
        injector = ScriptedInjector(
            {FaultKind.DROP_WRITE: [True, False, False, False, False, False, True]}
        )
        sim, name, config, _ = vector_setup(
            faults=injector, recovery=RecoveryPolicy(degrade_after=2)
        )
        device = sim.device(name)
        assert device.concurrent_now
        sim.exec_setup(name, config)
        sim.exec_setup(name, {"op": 1})
        assert device.force_sequential
        assert not device.concurrent_now
        assert sim.recovery_stats.degradations == 1
        # Degradation committed the staged writes; nothing was lost.
        assert device.effective_config()["op"] == 1
