"""Tests for the co-simulation engine and timelines."""

import numpy as np
import pytest

from repro.isa import HostCostModel, InstrCategory, alu
from repro.sim import CoSimulator, Memory, SpanKind, Timeline


def vector_sim(concurrent=True):
    name = "toyvec" if concurrent else "toyvec-seq"
    memory = Memory()
    x = memory.place(np.arange(32, dtype=np.int32))
    y = memory.place(np.arange(32, dtype=np.int32))
    out = memory.alloc(32, np.int32)
    sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
    config = {
        "ptr_x": x.addr,
        "ptr_y": y.addr,
        "ptr_out": out.addr,
        "n": 32,
        "op": 0,
    }
    return sim, name, config, out


class TestCharging:
    def test_charge_advances_time(self):
        sim = CoSimulator(cost_model=HostCostModel(2.0))
        sim.charge([alu(), alu()])
        assert sim.host_time == 4.0
        assert len(sim.trace) == 2

    def test_stall_records_span(self):
        sim = CoSimulator()
        sim.stall_until(10.0)
        assert sim.host_time == 10.0
        assert sim.timeline.busy_time("host", SpanKind.STALL) == 10.0

    def test_stall_into_past_is_noop(self):
        sim = CoSimulator()
        sim.charge([alu()])
        before = sim.host_time
        sim.stall_until(before - 1)
        assert sim.host_time == before


class TestAccfgSemantics:
    def test_setup_launch_await_flow(self):
        sim, name, config, out = vector_sim()
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        sim.exec_await(token)
        assert sim.host_time >= token.end
        assert (out.array == np.arange(32) * 2).all()

    def test_sequential_setup_stalls_while_busy(self):
        sim, name, config, out = vector_sim(concurrent=False)
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        before = sim.host_time
        assert before < token.end
        sim.exec_setup(name, {"n": 16})
        # The second setup had to wait for the device to finish.
        assert sim.host_time > token.end

    def test_concurrent_setup_does_not_stall(self):
        sim, name, config, out = vector_sim(concurrent=True)
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        sim.exec_setup(name, {"n": 16})
        # only the setup instruction cost was paid
        assert sim.host_time < token.end

    def test_launch_is_barrier_even_when_concurrent(self):
        sim, name, config, out = vector_sim(concurrent=True)
        sim.exec_setup(name, config)
        first = sim.exec_launch(name)
        second = sim.exec_launch(name)
        assert second.start >= first.end

    def test_total_cycles_includes_accelerator_tail(self):
        sim, name, config, out = vector_sim()
        sim.exec_setup(name, config)
        token = sim.exec_launch(name)
        # no await: the accelerator finishes after the host is done
        assert sim.total_cycles == token.end

    def test_performance(self):
        sim, name, config, out = vector_sim()
        sim.exec_setup(name, config)
        sim.exec_await(sim.exec_launch(name))
        assert sim.performance() == pytest.approx(32 / sim.total_cycles)

    def test_trace_categories(self):
        sim, name, config, out = vector_sim()
        sim.exec_setup(name, config)
        sim.exec_await(sim.exec_launch(name))
        stats = sim.trace.stats(sim.cost_model)
        assert stats.setup_instrs == 5  # 5 MMIO stores
        assert stats.launch_instrs == 1
        assert stats.sync_instrs == 1


class TestTimeline:
    def test_spans_recorded_per_actor(self):
        sim, name, config, out = vector_sim()
        sim.exec_setup(name, config)
        sim.exec_await(sim.exec_launch(name))
        actors = sim.timeline.actors()
        assert "host" in actors and name in actors
        assert sim.timeline.busy_time(name, SpanKind.ACCEL) > 0

    def test_idle_time(self):
        timeline = Timeline()
        timeline.record("host", SpanKind.SETUP, 0, 4)
        timeline.record("host", SpanKind.SETUP, 6, 10)
        assert timeline.idle_time("host") == 2.0

    def test_render_ascii(self):
        sim, name, config, out = vector_sim()
        sim.exec_setup(name, config)
        sim.exec_await(sim.exec_launch(name))
        art = sim.timeline.render_ascii(width=40)
        assert "host" in art
        assert "X" in art  # accelerator compute glyph
        assert "C" in art  # config glyph

    def test_render_empty(self):
        assert Timeline().render_ascii() == "(empty timeline)"

    def test_zero_length_span_dropped(self):
        timeline = Timeline()
        timeline.record("host", SpanKind.SETUP, 5, 5)
        assert timeline.spans == []
