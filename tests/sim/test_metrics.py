"""Tests for run metrics extraction."""

import numpy as np
import pytest

from repro.isa import HostCostModel
from repro.sim import CoSimulator, Memory, collect_metrics


def run_vector_workload(launches=3):
    memory = Memory()
    x = memory.place(np.arange(64, dtype=np.int32))
    y = memory.place(np.arange(64, dtype=np.int32))
    out = memory.alloc(64, np.int32)
    sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
    for _ in range(launches):
        sim.exec_setup(
            "toyvec",
            {
                "ptr_x": x.addr,
                "ptr_y": y.addr,
                "ptr_out": out.addr,
                "n": 64,
                "op": 0,
            },
        )
        sim.exec_await(sim.exec_launch("toyvec"))
    return collect_metrics(sim, "toyvec")


class TestRunMetrics:
    def test_counts(self):
        metrics = run_vector_workload(3)
        assert metrics.launch_count == 3
        assert metrics.total_ops == 3 * 64
        assert metrics.setup_instrs == 15
        assert metrics.config_bytes == 3 * (8 + 8 + 8 + 4 + 1)

    def test_performance_and_utilization(self):
        metrics = run_vector_workload()
        assert 0 < metrics.performance <= metrics.peak_ops_per_cycle
        assert 0 < metrics.utilization <= 1.0
        assert metrics.performance == pytest.approx(
            metrics.total_ops / metrics.total_cycles
        )

    def test_i_oc(self):
        metrics = run_vector_workload()
        assert metrics.operation_to_config_intensity == pytest.approx(
            metrics.total_ops / metrics.config_bytes
        )

    def test_effective_bandwidth_le_theoretical(self):
        metrics = run_vector_workload()
        assert (
            metrics.effective_config_bandwidth
            <= metrics.theoretical_config_bandwidth
        )

    def test_stall_cycles_tracked(self):
        metrics = run_vector_workload()
        assert metrics.host_stall_cycles > 0  # awaits stall the host
