"""Tests for the simulated memory."""

import numpy as np
import pytest

from repro.sim import Memory, MemoryError_


class TestAllocation:
    def test_alloc_zeroed(self):
        mem = Memory()
        buf = mem.alloc((4, 4), np.int32)
        assert (buf.array == 0).all()
        assert buf.array.shape == (4, 4)

    def test_place_copies(self):
        mem = Memory()
        source = np.arange(8, dtype=np.int8)
        buf = mem.place(source)
        source[0] = 99
        assert buf.array[0] == 0

    def test_addresses_disjoint_and_aligned(self):
        mem = Memory(alignment=64)
        a = mem.alloc(100, np.int8)
        b = mem.alloc(100, np.int8)
        assert b.addr >= a.addr + 100
        assert a.addr % 64 == 0
        assert b.addr % 64 == 0

    def test_buffer_at(self):
        mem = Memory()
        a = mem.alloc(16, np.int8)
        assert mem.buffer_at(a.addr) is a
        assert mem.buffer_at(a.addr + 15) is a
        with pytest.raises(MemoryError_):
            mem.buffer_at(a.addr + 1000000)


class TestMatrixAccess:
    def test_read_matrix_row_major(self):
        mem = Memory()
        buf = mem.place(np.arange(16, dtype=np.int8).reshape(4, 4))
        tile = mem.read_matrix(buf.addr, 2, 2, 4, np.int8)
        assert (tile == [[0, 1], [4, 5]]).all()

    def test_read_with_offset(self):
        mem = Memory()
        buf = mem.place(np.arange(16, dtype=np.int8).reshape(4, 4))
        tile = mem.read_matrix(buf.addr + 5, 2, 2, 4, np.int8)
        assert (tile == [[5, 6], [9, 10]]).all()

    def test_write_matrix(self):
        mem = Memory()
        buf = mem.alloc((4, 4), np.int32)
        mem.write_matrix(
            buf.addr + 4 * 5, np.full((2, 2), 7, dtype=np.int32), 4
        )
        assert buf.array[1, 1] == 7
        assert buf.array[2, 2] == 7
        assert buf.array[0, 0] == 0

    def test_dtype_mismatch_rejected(self):
        mem = Memory()
        buf = mem.alloc(16, np.int8)
        with pytest.raises(MemoryError_, match="dtype"):
            mem.read_matrix(buf.addr, 2, 2, 4, np.int32)

    def test_misaligned_access_rejected(self):
        mem = Memory()
        buf = mem.alloc((4, 4), np.int32)
        with pytest.raises(MemoryError_, match="misaligned"):
            mem.read_matrix(buf.addr + 2, 1, 1, 4, np.int32)

    def test_overrun_rejected(self):
        mem = Memory()
        buf = mem.alloc((2, 2), np.int8)
        with pytest.raises(MemoryError_, match="overrun"):
            mem.read_matrix(buf.addr, 4, 4, 4, np.int8)

    def test_write_overrun_rejected(self):
        mem = Memory()
        buf = mem.alloc((2, 2), np.int32)
        with pytest.raises(MemoryError_, match="overrun"):
            mem.write_matrix(buf.addr, np.zeros((4, 4), np.int32), 4)
