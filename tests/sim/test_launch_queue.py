"""Tests for queue-based launch schemes (the paper's Section 8 outlook).

With single-level staging a launch is a barrier on the previous computation;
a deeper launch FIFO lets the host run ahead by ``launch_queue_depth``
invocations.  Execution on the single datapath still serializes.
"""

import numpy as np
import pytest

from repro.backends import get_accelerator
from repro.isa import HostCostModel
from repro.sim import AcceleratorDevice, CoSimulator, Memory


def device_for(name):
    return AcceleratorDevice(get_accelerator(name), Memory())


class TestAcceptTime:
    def test_depth_one_equals_busy_until(self):
        device = device_for("toyvec")
        device.write_fields({"n": 64}, 0.0)
        token = device.launch(0.0, functional=False)
        assert device.accept_time(1.0) == token.end

    def test_queued_accepts_depth_launches_immediately(self):
        device = device_for("toyvec-queued")
        device.write_fields({"n": 64}, 0.0)
        for _ in range(4):
            device.launch(0.0, functional=False)
        # queue full: 5th launch must wait for the oldest to retire
        first_end = device._launch_ends[0]
        assert device.accept_time(0.0) == first_end

    def test_queued_accepts_when_slot_frees(self):
        device = device_for("toyvec-queued")
        device.write_fields({"n": 64}, 0.0)
        tokens = [device.launch(0.0, functional=False) for _ in range(4)]
        late = tokens[0].end + 1
        assert device.accept_time(late) == pytest.approx(
            max(late, tokens[1].end)
        ) or device.accept_time(late) >= late

    def test_sequential_target_ignores_queue_depth(self):
        device = device_for("toyvec-seq")
        device.write_fields({"n": 64}, 0.0)
        token = device.launch(0.0, functional=False)
        assert device.accept_time(0.0) == token.end

    def test_execution_still_serializes(self):
        device = device_for("toyvec-queued")
        device.write_fields({"n": 64}, 0.0)
        a = device.launch(0.0, functional=False)
        b = device.launch(0.0, functional=False)
        assert b.start == a.end


class TestQueuedCosim:
    def run_chain(self, name, launches=6):
        memory = Memory()
        x = memory.place(np.arange(64, dtype=np.int32))
        y = memory.place(np.arange(64, dtype=np.int32))
        out = memory.alloc(64, np.int32)
        sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
        sim.exec_setup(
            name,
            {"ptr_x": x.addr, "ptr_y": y.addr, "ptr_out": out.addr, "n": 64, "op": 0},
        )
        tokens = [sim.exec_launch(name) for _ in range(launches)]
        for token in tokens:
            sim.exec_await(token)
        return sim, out, (x, y)

    def test_queue_reduces_host_stalls(self):
        barrier_sim, out1, (x, y) = self.run_chain("toyvec")
        queued_sim, out2, _ = self.run_chain("toyvec-queued")
        assert (out1.array == x.array + y.array).all()
        assert (out2.array == out1.array).all()
        from repro.sim import SpanKind

        barrier_stall = barrier_sim.timeline.busy_time("host", SpanKind.STALL)
        queued_stall = queued_sim.timeline.busy_time("host", SpanKind.STALL)
        assert queued_stall < barrier_stall

    def test_total_cycles_not_worse(self):
        barrier_sim, *_ = self.run_chain("toyvec")
        queued_sim, *_ = self.run_chain("toyvec-queued")
        assert queued_sim.total_cycles <= barrier_sim.total_cycles

    def test_functional_results_identical(self):
        _, out_barrier, _ = self.run_chain("toyvec")
        _, out_queued, _ = self.run_chain("toyvec-queued")
        assert (out_barrier.array == out_queued.array).all()
