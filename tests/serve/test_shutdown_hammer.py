"""Shutdown under load: parked waiters must wake, typed, and in time.

Satellite of the chaos-hardening PR: stop the server while one slow owner
holds a single-flight and a crowd of coalesced waiters is parked on its
event.  Every waiter must receive a typed ``shutdown`` error within the
join timeout — no stranded connections, no hung handler threads.
"""

import threading
import time

from repro.serve import (
    NO_RETRY,
    CompileService,
    ReproClient,
    ReproServer,
    ServiceChaos,
)
from repro.engine import TraceCache

SLOW_PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""

WAITERS = 8


def test_stop_wakes_all_coalesced_waiters_with_typed_shutdown():
    # Quota must admit the owner plus every waiter on the shared tenant.
    service = CompileService(
        cache=TraceCache(),
        chaos=ServiceChaos(),
        max_pending_per_tenant=WAITERS + 2,
    )
    server = ReproServer(service=service).start()
    host, port = server.address

    responses: list[dict] = []
    failures: list[str] = []
    lock = threading.Lock()
    owner_started = threading.Event()

    def owner():
        # Holds the single-flight for far longer than the test runs; the
        # connection dies at stop(), which is fine — the waiters are the
        # subject here.
        try:
            with ReproClient(host, port, retry=NO_RETRY) as client:
                owner_started.set()
                client.request(
                    "simulate",
                    module=SLOW_PROGRAM,
                    args=[1],
                    chaos={"sleep_ms": 3_000},
                )
        except Exception:
            pass

    def waiter(index: int):
        try:
            with ReproClient(host, port, retry=NO_RETRY) as client:
                response = client.request(
                    "simulate", module=SLOW_PROGRAM, args=[1]
                )
                with lock:
                    responses.append(response)
        except Exception as error:
            with lock:
                failures.append(f"waiter {index}: {error!r}")

    owner_thread = threading.Thread(target=owner, daemon=True)
    owner_thread.start()
    assert owner_started.wait(timeout=5.0)
    time.sleep(0.15)  # let the owner's request take the flight

    waiter_threads = [
        threading.Thread(target=waiter, args=(index,), daemon=True)
        for index in range(WAITERS)
    ]
    for thread in waiter_threads:
        thread.start()
    # Park everyone on the in-flight event before pulling the plug.
    deadline = time.monotonic() + 5.0
    while service.stats()["in_flight"] < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    time.sleep(0.15)

    started = time.monotonic()
    server.stop()
    elapsed = time.monotonic() - started
    assert elapsed < 10.0, f"stop() took {elapsed:.1f}s"

    join_deadline = time.monotonic() + 5.0
    for thread in waiter_threads:
        thread.join(timeout=max(0.0, join_deadline - time.monotonic()))
    alive = [t for t in waiter_threads if t.is_alive()]
    assert not alive, f"{len(alive)} waiter threads never joined"

    assert not failures, failures
    assert len(responses) == WAITERS
    for response in responses:
        assert not response["ok"]
        assert response["error"]["type"] == "shutdown"

    # The service is closed and empty: nothing parked, and the owner's
    # admission slot drains once its (shorter) chaos stall elapses.
    assert service._closed
    assert service.stats()["in_flight"] == 0
    drain_deadline = time.monotonic() + 8.0
    while service.stats()["pending"] and time.monotonic() < drain_deadline:
        time.sleep(0.05)
    assert service.stats()["pending"] == 0


def test_stop_is_prompt_when_idle():
    server = ReproServer(service=CompileService(cache=TraceCache())).start()
    host, port = server.address
    with ReproClient(host, port) as client:
        assert client.ping()["ok"]
    started = time.monotonic()
    server.stop()
    assert time.monotonic() - started < 5.0
