"""CompileService semantics: dedup tiers, admission control, error sharing."""

import json
import threading
import time

from repro.engine import TraceCache
from repro.serve import CompileService, encode

PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""


def service(**kwargs) -> CompileService:
    kwargs.setdefault("cache", TraceCache())
    return CompileService(**kwargs)


class TestOps:
    def test_ping(self):
        response = service().handle({"op": "ping"})
        assert response["ok"]
        assert response["result"]["protocol"].startswith("repro-serve/")

    def test_compile_returns_optimized_text(self):
        response = service().handle(
            {"op": "compile", "module": PROGRAM, "pipeline": "full"}
        )
        assert response["ok"]
        assert "accfg.setup" in response["result"]["text"]
        assert len(response["result"]["fingerprint"]) == 64
        assert response["result"]["ops"] > 0

    def test_simulate_runs_the_module(self):
        response = service().handle(
            {"op": "simulate", "module": PROGRAM, "args": [1]}
        )
        assert response["ok"]
        assert response["result"]["results"] == [4]
        assert response["result"]["instrs"]["setup"] > 0
        assert response["result"]["launches"] == {"toyvec": 1}

    def test_lint_and_cost(self):
        svc = service()
        lint = svc.handle({"op": "lint", "module": PROGRAM})
        assert lint["ok"]
        assert lint["result"]["errors"] == 0
        cost = svc.handle({"op": "cost", "module": PROGRAM})
        assert cost["ok"]
        assert "main" in cost["result"]["table"]

    def test_stats_op_reports_requests(self):
        svc = service()
        svc.handle({"op": "ping"})
        response = svc.handle({"op": "stats"})
        assert response["result"]["requests"] == 2
        assert response["result"]["by_op"]["ping"] == 1

    def test_handle_line_rejects_garbage_without_raising(self):
        svc = service()
        response = json.loads(svc.handle_line(b"{nope\n"))
        assert not response["ok"]
        assert response["error"]["type"] == "protocol"
        assert svc.errors == 1

    def test_handle_line_round_trips(self):
        response = json.loads(
            service().handle_line(encode({"op": "ping", "id": 9}))
        )
        assert response["ok"] and response["id"] == 9


class TestErrors:
    def test_unknown_pipeline_is_a_protocol_error(self):
        response = service().handle(
            {"op": "compile", "module": PROGRAM, "pipeline": "warp-speed"}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "protocol"
        assert "warp-speed" in response["error"]["message"]

    def test_unparsable_module_is_reported_not_raised(self):
        response = service().handle({"op": "compile", "module": "not ir"})
        assert not response["ok"]
        assert response["error"]["message"]

    def test_error_outcomes_are_shared(self):
        svc = service()
        first = svc.handle({"op": "compile", "module": "not ir"})
        second = svc.handle({"op": "compile", "module": "not ir"})
        assert first["error"] == second["error"]
        assert second["meta"]["cached"]
        assert svc.outcome_hits == 1


class TestDedupTiers:
    def test_repeated_request_hits_the_outcome_cache(self):
        svc = service()
        first = svc.handle({"op": "compile", "module": PROGRAM})
        second = svc.handle({"op": "compile", "module": PROGRAM})
        assert not first["meta"]["cached"]
        assert second["meta"]["cached"]
        assert second["result"] == first["result"]
        assert svc.stats()["dedup_hit_rate"] == 0.5

    def test_module_cache_reused_across_ops(self):
        svc = service()
        svc.handle({"op": "lint", "module": PROGRAM})
        svc.handle({"op": "cost", "module": PROGRAM})
        # Different compute keys (op differs) but the same parsed module.
        assert svc.outcome_hits == 0
        assert svc.module_hits == 1

    def test_different_args_do_not_share_outcomes(self):
        svc = service()
        one = svc.handle({"op": "simulate", "module": PROGRAM, "args": [1]})
        two = svc.handle({"op": "simulate", "module": PROGRAM, "args": [2]})
        assert one["result"]["results"] == [4]
        assert two["result"]["results"] == [5]
        assert not two["meta"]["cached"]

    def test_dedup_off_disables_every_tier(self):
        svc = service(dedup=False)
        svc.handle({"op": "compile", "module": PROGRAM})
        repeat = svc.handle({"op": "compile", "module": PROGRAM})
        assert not repeat["meta"]["cached"]
        assert not repeat["meta"]["coalesced"]
        assert svc.outcome_hits == 0
        assert svc.module_hits == 0

    def test_outcome_cache_is_bounded(self):
        svc = service(outcome_cache_size=2)
        for value in (1, 2, 3):
            svc.handle({"op": "simulate", "module": PROGRAM, "args": [value]})
        assert len(svc._outcomes) == 2

    def test_concurrent_identical_requests_coalesce(self):
        svc = service()
        release = threading.Event()
        computing = threading.Event()
        calls = []
        real_execute = svc._execute

        def slow_execute(op, request):
            calls.append(op)
            computing.set()
            assert release.wait(timeout=30)
            return real_execute(op, request)

        svc._execute = slow_execute
        request = {"op": "compile", "module": PROGRAM, "pipeline": "full"}
        responses = [None] * 4

        def worker(index: int) -> None:
            responses[index] = svc.handle(dict(request))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        threads[0].start()
        assert computing.wait(timeout=30)
        for thread in threads[1:]:
            thread.start()
        # The duplicates must be parked in flight before the owner finishes.
        deadline = time.monotonic() + 30
        while svc.coalesced < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert len(calls) == 1  # one computation served all four
        assert all(r["ok"] for r in responses)
        assert sum(1 for r in responses if r["meta"]["coalesced"]) == 3
        assert svc.coalesced == 3


class TestAdmission:
    def test_tenant_quota_rejects_excess(self):
        svc = service(max_pending_per_tenant=1)
        release = threading.Event()
        computing = threading.Event()
        real_execute = svc._execute

        def slow_execute(op, request):
            # Only the probe request blocks; everything else runs normally.
            if not computing.is_set():
                computing.set()
                assert release.wait(timeout=30)
            return real_execute(op, request)

        svc._execute = slow_execute
        background = threading.Thread(
            target=svc.handle,
            args=({"op": "compile", "module": PROGRAM, "tenant": "t0"},),
        )
        background.start()
        assert computing.wait(timeout=30)
        # Same tenant, *different* module: cannot coalesce, must be admitted.
        rejected = svc.handle(
            {"op": "compile", "module": PROGRAM + "\n", "tenant": "t0"}
        )
        other = svc.handle(
            {"op": "lint", "module": PROGRAM, "tenant": "t1"}
        )
        release.set()
        background.join(timeout=30)
        assert not rejected["ok"]
        assert rejected["error"]["type"] == "admission"
        assert other["ok"]  # a different tenant is never starved
        assert svc.admission_rejected == 1

    def test_global_cap_rejects_excess(self):
        svc = service(max_pending=0)
        response = svc.handle({"op": "lint", "module": PROGRAM})
        assert not response["ok"]
        assert response["error"]["type"] == "admission"

    def test_pending_drains_after_completion(self):
        svc = service(max_pending_per_tenant=1)
        for _ in range(3):
            assert svc.handle({"op": "lint", "module": PROGRAM})["ok"]
        assert svc.stats()["pending"] == 0
