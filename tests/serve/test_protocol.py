"""Wire-protocol validation: every malformed request is a clean error."""

import json

import pytest

from repro.serve import (
    ALL_OPS,
    MODULE_OPS,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

MODULE = 'func.func @main() -> () { func.return }'


def line(**fields) -> bytes:
    return encode(fields)


class TestDecode:
    def test_valid_request_round_trips(self):
        request = decode_request(
            line(id=7, op="compile", module=MODULE, tenant="t0")
        )
        assert request["id"] == 7
        assert request["op"] == "compile"
        assert request["tenant"] == "t0"

    def test_every_op_is_accepted(self):
        for op in ALL_OPS:
            fields = {"op": op}
            if op in MODULE_OPS:
                fields["module"] = MODULE
            decode_request(line(**fields))

    def test_not_utf8_rejected(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_request(b"\xff\xfe{}")

    def test_not_json_rejected(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_request(b"{nope\n")

    def test_not_an_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request(b"[1, 2]\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(line(op="transmogrify"))

    def test_module_op_requires_module(self):
        for op in MODULE_OPS:
            with pytest.raises(ProtocolError, match="non-empty 'module'"):
                decode_request(line(op=op))
            with pytest.raises(ProtocolError, match="non-empty 'module'"):
                decode_request(line(op=op, module="   "))

    def test_tenant_must_be_nonempty_string(self):
        with pytest.raises(ProtocolError, match="tenant"):
            decode_request(line(op="ping", tenant=""))
        with pytest.raises(ProtocolError, match="tenant"):
            decode_request(line(op="ping", tenant=42))

    def test_args_must_be_integer_list(self):
        for bad in ("5", [1, "2"], [True], {"a": 1}):
            with pytest.raises(ProtocolError, match="args"):
                decode_request(
                    line(op="simulate", module=MODULE, args=bad)
                )
        decode_request(line(op="simulate", module=MODULE, args=[1, -2]))

    def test_pipeline_and_function_must_be_strings(self):
        with pytest.raises(ProtocolError, match="pipeline"):
            decode_request(line(op="compile", module=MODULE, pipeline=3))
        with pytest.raises(ProtocolError, match="function"):
            decode_request(line(op="simulate", module=MODULE, function=3))

    def test_deadline_ms_must_be_positive_number(self):
        for bad in (0, -5, "100", True, [100]):
            with pytest.raises(ProtocolError, match="deadline_ms"):
                decode_request(
                    line(op="compile", module=MODULE, deadline_ms=bad)
                )
        decode_request(line(op="compile", module=MODULE, deadline_ms=250))
        decode_request(line(op="compile", module=MODULE, deadline_ms=0.5))

    def test_chaos_must_be_an_object(self):
        for bad in (1, "die", [1]):
            with pytest.raises(ProtocolError, match="chaos"):
                decode_request(line(op="compile", module=MODULE, chaos=bad))
        decode_request(
            line(op="compile", module=MODULE, chaos={"die": True})
        )


class TestEncode:
    def test_one_line_utf8(self):
        blob = encode({"op": "ping", "note": "héllo"})
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1
        assert json.loads(blob)["note"] == "héllo"

    def test_ok_response_echoes_id(self):
        response = ok_response({"id": "abc"}, {"x": 1}, {"tenant": "t"})
        assert response["id"] == "abc"
        assert response["ok"] is True
        assert response["result"] == {"x": 1}

    def test_error_response_tolerates_junk_request(self):
        response = error_response("not a dict", "protocol", "boom")
        assert response["id"] is None
        assert response["ok"] is False
        assert response["error"]["type"] == "protocol"
