"""End-to-end socket tests: real server, real clients, real concurrency."""

import threading

import pytest

from repro.engine import TraceCache
from repro.serve import (
    CompileService,
    ReproClient,
    ReproServer,
    probe,
)

PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""


@pytest.fixture()
def server():
    with ReproServer(service=CompileService(cache=TraceCache())) as srv:
        yield srv


def client_for(server: ReproServer) -> ReproClient:
    host, port = server.address
    return ReproClient(host, port, timeout=30.0)


class TestRoundTrip:
    def test_ping(self, server):
        with client_for(server) as client:
            response = client.ping()
            assert response["ok"]
            assert response["result"]["protocol"] == "repro-serve/1"

    def test_compile_and_simulate(self, server):
        with client_for(server) as client:
            compiled = client.compile(PROGRAM, pipeline="full", tenant="t0")
            assert compiled["ok"]
            simulated = client.simulate(PROGRAM, args=[1], tenant="t0")
            assert simulated["ok"]
            assert simulated["result"]["results"] == [4]

    def test_many_requests_one_connection(self, server):
        with client_for(server) as client:
            for index in range(10):
                assert client.lint(PROGRAM)["ok"]
            stats = client.stats()
            assert stats["requests"] == 11  # the stats request counts itself
            assert stats["dedup_hit_rate"] > 0

    def test_malformed_request_keeps_the_connection(self, server):
        with client_for(server) as client:
            bad = client.request("compile", module="")
            assert not bad["ok"]
            assert bad["error"]["type"] == "protocol"
            assert client.ping()["ok"]  # connection survived

    def test_request_ids_echo_back(self, server):
        with client_for(server) as client:
            first = client.ping()
            second = client.ping()
            assert second["id"] == first["id"] + 1


class TestConcurrency:
    def test_concurrent_duplicate_requests_dedup(self, server):
        barrier = threading.Barrier(8)
        failures = []

        def worker() -> None:
            try:
                with client_for(server) as client:
                    barrier.wait(timeout=30)
                    for _ in range(4):
                        response = client.compile(PROGRAM, tenant="fleet")
                        assert response["ok"], response
            except Exception as error:  # noqa: BLE001 - collected for assert
                failures.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        stats = server.service.stats()
        assert stats["requests"] == 32
        assert stats["errors"] == 0
        # 32 identical requests, one computation: everything else was
        # coalesced in flight or served from the outcome cache.
        assert stats["coalesced"] + stats["outcome_hits"] == 31

    def test_tenants_share_the_trace_cache(self, server):
        with client_for(server) as a, client_for(server) as b:
            a.compile(PROGRAM, pipeline="", tenant="alice")
            b.simulate(PROGRAM, args=[1], tenant="bob")
        # Alice's compile published the trace Bob's simulate reused.
        assert server.service.cache.hits >= 1


class TestShutdown:
    def test_shutdown_request_stops_the_server(self):
        server = ReproServer(service=CompileService(cache=TraceCache()))
        server.start()
        host, port = server.address
        assert probe(host, port)
        with ReproClient(host, port) as client:
            response = client.shutdown()
            assert response["ok"]
            assert response["result"]["shutting_down"]
        server.stop()
        assert not probe(host, port)

    def test_stop_is_idempotent(self):
        server = ReproServer(service=CompileService(cache=TraceCache()))
        server.start()
        server.stop()
        server.stop()
