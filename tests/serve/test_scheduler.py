"""The config-wall-aware scheduler: costs, policies, fairness, grounding."""

from repro.backends import get_accelerator
from repro.ir import parse_module
from repro.serve import (
    TenantJob,
    compare_policies,
    config_aware_order,
    extract_config,
    job_from_module,
    run_config_aware,
    run_fifo,
    run_oracle,
    setup_cost,
)

SPEC = get_accelerator("toyvec")

CONFIG_A = {"n": 8}
CONFIG_B = {"n": 64}


def jobs_round_robin(
    tenants: int, per_tenant: int, configs: list[dict]
) -> list[TenantJob]:
    """The worst interleaving: tenants alternate, job by job."""
    jobs = []
    arrival = 0
    for _ in range(per_tenant):
        for index in range(tenants):
            jobs.append(
                TenantJob.make(
                    f"t{index}",
                    configs[index % len(configs)],
                    compute_cycles=100.0,
                    arrival=arrival,
                )
            )
            arrival += 1
    return jobs


class TestSetupCost:
    def test_empty_fields_cost_nothing(self):
        assert setup_cost(SPEC, []) == (0, 0.0, 0)

    def test_costs_match_the_spec(self):
        instrs, cycles, nbytes = setup_cost(SPEC, ["n"])
        assert instrs == len(SPEC.setup_instrs_cached(["n"]))
        assert cycles > 0
        assert nbytes == SPEC.config_bytes(["n"])


class TestPolicies:
    def test_fifo_runs_in_arrival_order(self):
        jobs = jobs_round_robin(3, 2, [CONFIG_A])
        result = run_fifo(jobs, SPEC)
        assert result.order == sorted(result.order)
        assert result.context_switches == len(jobs) - 1

    def test_fifo_repays_setup_on_every_switch(self):
        jobs = jobs_round_robin(2, 2, [CONFIG_A])
        fifo = run_fifo(jobs, SPEC)
        # 4 jobs, every one a tenant switch after the first: 4 full setups.
        single = setup_cost(SPEC, ["n"])[1]
        assert fifo.config_cycles == 4 * single

    def test_oracle_pays_each_signature_once(self):
        jobs = jobs_round_robin(4, 3, [CONFIG_A, CONFIG_B])
        oracle = run_oracle(jobs, SPEC)
        assert oracle.config_cycles == 2 * setup_cost(SPEC, ["n"])[1]
        assert oracle.repaid_config_cycles == 0.0

    def test_same_config_needs_no_rewrite_across_tenants(self):
        jobs = jobs_round_robin(4, 2, [CONFIG_A])
        aware = run_config_aware(jobs, SPEC, quota=8)
        # One setup total: the shared shadow register file makes every
        # other job a zero-diff.
        assert aware.config_cycles == setup_cost(SPEC, ["n"])[1]

    def test_all_policies_run_every_job(self):
        jobs = jobs_round_robin(3, 3, [CONFIG_A, CONFIG_B])
        results = compare_policies(jobs, SPEC)
        for result in results.values():
            assert sorted(result.order) == list(range(len(jobs)))

    def test_aware_beats_fifo_on_interleaved_tenants(self):
        jobs = jobs_round_robin(4, 3, [CONFIG_A, CONFIG_B])
        results = compare_policies(jobs, SPEC, quota=2)
        fifo, aware = results["fifo"], results["config-aware"]
        oracle = results["oracle"]
        assert aware.repaid_config_cycles < fifo.repaid_config_cycles
        assert oracle.config_cycles <= aware.config_cycles
        assert aware.throughput > fifo.throughput


class TestFairness:
    def test_quota_bounds_consecutive_runs(self):
        jobs = jobs_round_robin(2, 6, [CONFIG_A, CONFIG_B])
        ordered = config_aware_order(jobs, SPEC, quota=2, max_wait=100)
        longest = run = 1
        for previous, current in zip(ordered, ordered[1:]):
            run = run + 1 if current.tenant == previous.tenant else 1
            longest = max(longest, run)
        assert longest <= 2

    def test_aging_bounds_waiting(self):
        # One cheap same-config herd plus one expensive odd tenant out:
        # without aging the odd job would sink to the end of the schedule.
        herd = [
            TenantJob.make("t0", CONFIG_A, compute_cycles=100.0, arrival=a)
            for a in [0, *range(2, 13)]
        ]
        odd = TenantJob.make("odd", CONFIG_B, compute_cycles=100.0, arrival=1)
        jobs = sorted(herd + [odd], key=lambda job: job.arrival)
        patient = run_config_aware(jobs, SPEC, quota=100, max_wait=100)
        bounded = run_config_aware(jobs, SPEC, quota=100, max_wait=3)
        assert patient.order.index(1) == len(jobs) - 1  # starved
        assert bounded.order.index(1) <= 5  # aged in
        assert bounded.max_wait <= patient.max_wait

    def test_schedule_is_deterministic(self):
        jobs = jobs_round_robin(4, 3, [CONFIG_A, CONFIG_B])
        first = config_aware_order(jobs, SPEC, quota=2)
        second = config_aware_order(list(jobs), SPEC, quota=2)
        assert [job.arrival for job in first] == [
            job.arrival for job in second
        ]


PROGRAM = """
func.func @main() -> () {
  %a = arith.constant 8 : i64
  %b = arith.constant 16 : i64
  %s = accfg.setup on "toyvec" ("n" = %a : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %s2 = accfg.setup on "toyvec" from %s ("n" = %b : i64) : !accfg.state<"toyvec">
  %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
  accfg.await %t2
  func.return
}
"""


class TestGrounding:
    def test_extract_config_later_write_wins(self):
        module = parse_module(PROGRAM)
        assert extract_config(module, "toyvec") == {"n": 16}

    def test_extract_config_filters_by_accelerator(self):
        module = parse_module(PROGRAM)
        assert extract_config(module, "other") == {}

    def test_job_from_module_counts_launches(self):
        module = parse_module(PROGRAM)
        job = job_from_module(module, "toyvec", tenant="t", arrival=0)
        assert job.config_dict == {"n": 16}
        assert job.compute_cycles == 2 * SPEC.compute_cycles({"n": 16})


class TestExperimentInvariants:
    def test_quick_sweep_holds_the_acceptance_invariant(self):
        from repro.experiments import multitenant

        points = multitenant.run(tenant_counts=(2, 4))
        for point in points:
            fifo = point.results["fifo"]
            aware = point.results["config-aware"]
            assert aware["jobs"] == fifo["jobs"]
            assert (
                aware["repaid_config_cycles"] < fifo["repaid_config_cycles"]
            )
            assert aware["total_cycles"] < fifo["total_cycles"]
