"""The chaos harness itself: deterministic plans, campaigns, scenarios.

The tentpole acceptance criteria live here: the fired-fault schedule is a
byte-reproducible pure function of the seed, a mixed campaign finishes
with zero silent corruptions and zero stranded waiters, and the scenario
drills (quota storm, cache corruption) pass from a fixed seed.
"""

import json

from repro.serve import (
    MIXED_RATES,
    ChaosRates,
    ServeFaultInjector,
    ServeFaultKind,
    build_plan,
    build_requests,
    run_cache_corruption,
    run_campaign,
    run_quota_storm,
)
from repro.serve.chaos import INFRA_ERRORS, check_response, compute_references


class TestInjector:
    def test_draws_are_deterministic_per_seed(self):
        a = ServeFaultInjector(3, ChaosRates.uniform(0.5))
        b = ServeFaultInjector(3, ChaosRates.uniform(0.5))
        kinds = list(ServeFaultKind) * 10
        decisions_a = [a.should(kind, "w") for kind in kinds]
        decisions_b = [b.should(kind, "w") for kind in kinds]
        assert decisions_a == decisions_b
        assert a.schedule() == b.schedule()
        assert any(decisions_a) and not all(decisions_a)

    def test_streams_are_independent_across_kinds(self):
        # Draining one kind's stream must not shift any other kind's
        # decisions — the private-stream contract from repro.faults.
        rates = ChaosRates.uniform(0.5)
        plain = ServeFaultInjector(5, rates)
        drained = ServeFaultInjector(5, rates)
        for _ in range(100):
            drained.should(ServeFaultKind.CONN_RESET, "noise")
        sequence = [
            plain.should(ServeFaultKind.TRACE_ERROR, "w") for _ in range(20)
        ]
        shifted = [
            drained.should(ServeFaultKind.TRACE_ERROR, "w") for _ in range(20)
        ]
        assert sequence == shifted

    def test_zero_rates_never_fire(self):
        injector = ServeFaultInjector(0, ChaosRates())
        for kind in ServeFaultKind:
            assert not injector.should(kind, "w")
        assert injector.schedule() == ()

    def test_schedule_records_kind_index_and_site(self):
        injector = ServeFaultInjector(0, ChaosRates.uniform(1.0))
        injector.should(ServeFaultKind.CONN_RESET, "c0r1", "detail")
        (line,) = injector.schedule()
        assert "conn-reset" in line
        assert "c0r1" in line


class TestPlan:
    def test_plan_is_a_pure_function_of_seed_and_mix(self):
        mix = build_requests(clients=4, requests=12)
        a = build_plan(0, mix, MIXED_RATES)
        b = build_plan(0, mix, MIXED_RATES)
        assert a.schedule == b.schedule
        assert a.faults == b.faults
        assert "\n".join(a.schedule).encode() == "\n".join(b.schedule).encode()

    def test_different_seeds_give_different_schedules(self):
        mix = build_requests(clients=4, requests=12)
        assert (
            build_plan(0, mix, MIXED_RATES).schedule
            != build_plan(1, mix, MIXED_RATES).schedule
        )

    def test_trace_error_only_targets_simulate(self):
        mix = build_requests(clients=4, requests=20)
        by_position = {
            (request.client, request.index): request
            for row in mix
            for request in row
        }
        plan = build_plan(0, mix, ChaosRates.uniform(0.9))
        hits = 0
        for position, kinds in plan.faults.items():
            if ServeFaultKind.TRACE_ERROR in kinds:
                hits += 1
                assert by_position[position].op == "simulate"
        assert hits > 0

    def test_mix_is_deterministic_and_includes_bad_modules(self):
        mix = build_requests(clients=8, requests=25)
        again = build_requests(clients=8, requests=25)
        assert mix == again
        flat = [request for row in mix for request in row]
        assert len(flat) == 200
        assert len({request.tenant for request in flat}) == 4
        ops = {request.op for request in flat}
        assert {"simulate", "compile", "lint", "cost"} <= ops
        assert any("bogus" in request.module for request in flat)


class TestOracle:
    def test_references_cover_every_distinct_request(self):
        mix = build_requests(clients=2, requests=8)
        references = compute_references(mix)
        keys = {request.key for row in mix for request in row}
        assert set(references) == keys

    def test_check_response_flags_wrong_results(self):
        mix = build_requests(clients=1, requests=3)
        references = compute_references(mix)
        request = mix[0][0]
        kind, payload = references[request.key]
        assert kind == "ok"
        ok_payload = {"ok": True, "result": json.loads(payload)}
        assert check_response(request, ok_payload, references) is None
        tampered = {"ok": True, "result": {"tampered": 1}}
        finding = check_response(request, tampered, references)
        assert finding is not None and "differs" in finding

    def test_infra_errors_pass_but_wrong_typed_errors_fail(self):
        mix = build_requests(clients=1, requests=3)
        references = compute_references(mix)
        request = mix[0][0]
        for kind in sorted(INFRA_ERRORS):
            response = {"ok": False, "error": {"type": kind, "message": "x"}}
            assert check_response(request, response, references) is None
        wrong = {"ok": False, "error": {"type": "ParseError", "message": "x"}}
        assert check_response(request, wrong, references) is not None


class TestCampaign:
    def test_small_mixed_campaign_passes(self):
        report = run_campaign(seed=0, clients=4, requests=10)
        assert report.passed, report.format()
        assert report.silent_corruptions == []
        assert report.client_failures == []
        assert report.stranded_pending == 0
        assert report.stranded_in_flight == 0
        assert report.unjoined_clients == 0
        assert report.schedule_reproducible
        assert report.faults_planned > 0
        assert report.ok_responses > 0
        # Degraded answers are typed, so every response is accounted for.
        assert (
            report.ok_responses + sum(report.typed_errors.values())
            == report.clients * report.requests_per_client
        )
        # The config-aware scheduler keeps its edge under resubmissions.
        assert report.repaid_aware <= report.repaid_fifo

    def test_campaign_schedule_is_reproducible_across_runs(self):
        first = run_campaign(seed=2, clients=3, requests=8)
        second = run_campaign(seed=2, clients=3, requests=8)
        assert first.schedule == second.schedule
        assert first.passed and second.passed

    def test_fault_free_campaign_is_all_ok_or_reference_errors(self):
        report = run_campaign(
            seed=0, clients=3, requests=8, rates=ChaosRates()
        )
        assert report.passed, report.format()
        assert report.faults_planned == 0
        assert report.client_retries == 0


class TestScenarios:
    def test_quota_storm_sheds_flooders_not_victims(self):
        result = run_quota_storm(seed=0, flooders=4, victim_requests=6)
        assert result["passed"], result
        assert result["victim_ok"] == 6
        assert result["victim_errors"] == []
        assert result["flood_admission"] > 0
        assert result["flood_other"] == 0
        assert result["pending_after"] == 0

    def test_cache_corruption_degrades_without_corrupt_results(self, tmp_path):
        result = run_cache_corruption(
            seed=0, modules=4, directory=str(tmp_path / "cache")
        )
        assert result["passed"], result
        assert result["findings"] == []
        assert result["entries_corrupted"] > 0
        assert result["store_rejected"] > 0
        assert result["store_degraded"] is True
        assert result["directory_resurrected"] is False
