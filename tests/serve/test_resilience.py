"""The serving resilience layer: deadlines, breaker, rescue, degradation.

Each class pins one recovery mechanism of the chaos-hardening PR against
the failure it exists for; the chaos campaign (test_chaos.py) then drives
them all at once under a seeded schedule.
"""

import json
import socket
import threading
import time

import pytest

import repro.serve.service as service_module
from repro.engine import TraceCache
from repro.serve import (
    ChaosThreadDeath,
    CircuitBreakerPolicy,
    CompileService,
    ReproClient,
    ReproServer,
    RetryPolicy,
    ServeClientError,
    ServiceChaos,
    encode,
)

PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""

BAD_PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %y = arith.bogus %x : i64
  func.return %y : i64
}
"""


def service(**kwargs) -> CompileService:
    kwargs.setdefault("cache", TraceCache())
    return CompileService(**kwargs)


class TestDeadlines:
    def test_waiter_times_out_with_typed_deadline_error(self):
        svc = service(chaos=ServiceChaos())
        # Owner computes slowly (chaos stall); a coalesced waiter with a
        # tiny deadline must give up with a typed error, not park forever.
        owner_response = {}

        def owner():
            owner_response.update(
                svc.handle(
                    {
                        "op": "simulate",
                        "module": PROGRAM,
                        "args": [1],
                        "chaos": {"sleep_ms": 300},
                    }
                )
            )

        thread = threading.Thread(target=owner, daemon=True)
        thread.start()
        time.sleep(0.05)  # let the owner take the flight
        waiter = svc.handle(
            {
                "op": "simulate",
                "module": PROGRAM,
                "args": [1],
                "deadline_ms": 50,
            }
        )
        assert not waiter["ok"]
        assert waiter["error"]["type"] == "deadline"
        thread.join(timeout=5.0)
        assert owner_response["ok"]  # the owner still published
        assert svc.deadline_expired == 1
        # The outcome was cached: an immediate retry is served instantly.
        retry = svc.handle(
            {"op": "simulate", "module": PROGRAM, "args": [1], "deadline_ms": 50}
        )
        assert retry["ok"]
        assert retry["meta"]["cached"]

    def test_owner_overrunning_deadline_answers_deadline_error(self):
        svc = service(chaos=ServiceChaos())
        response = svc.handle(
            {
                "op": "simulate",
                "module": PROGRAM,
                "args": [2],
                "deadline_ms": 20,
                "chaos": {"sleep_ms": 80},
            }
        )
        assert not response["ok"]
        assert response["error"]["type"] == "deadline"
        # ... but the work was published for the retry to reuse.
        retry = svc.handle({"op": "simulate", "module": PROGRAM, "args": [2]})
        assert retry["ok"]
        assert retry["meta"]["cached"]

    def test_default_deadline_applies_when_request_has_none(self):
        svc = service(chaos=ServiceChaos(), default_deadline_ms=20)
        response = svc.handle(
            {
                "op": "simulate",
                "module": PROGRAM,
                "args": [3],
                "chaos": {"sleep_ms": 80},
            }
        )
        assert not response["ok"]
        assert response["error"]["type"] == "deadline"

    def test_generous_deadline_is_invisible(self):
        svc = service(default_deadline_ms=30_000)
        response = svc.handle(
            {"op": "simulate", "module": PROGRAM, "args": [1]}
        )
        assert response["ok"]
        assert svc.deadline_expired == 0


class TestCircuitBreaker:
    def request(self, svc, tenant="t0", module=BAD_PROGRAM):
        return svc.handle(
            {"op": "lint", "module": module, "tenant": tenant}
        )

    def test_threshold_failures_open_the_circuit(self):
        svc = service(breaker=CircuitBreakerPolicy(threshold=3, cooldown=4))
        for _ in range(3):
            response = self.request(svc)
            assert response["error"]["type"] != "circuit"
        shed = self.request(svc)
        assert shed["error"]["type"] == "circuit"
        assert svc.circuit_rejected == 1

    def test_success_resets_the_failure_streak(self):
        svc = service(breaker=CircuitBreakerPolicy(threshold=3, cooldown=4))
        for _ in range(2):
            self.request(svc)
        assert self.request(svc, module=PROGRAM)["ok"]
        for _ in range(2):
            self.request(svc)
        # 2 + 2 failures, but never 3 consecutive: circuit stays closed.
        assert self.request(svc, module=PROGRAM)["ok"]
        assert svc.circuit_rejected == 0

    def test_half_open_probe_recloses_on_success(self):
        svc = service(breaker=CircuitBreakerPolicy(threshold=2, cooldown=2))
        for _ in range(2):
            self.request(svc)
        assert self.request(svc)["error"]["type"] == "circuit"
        # Cooldown is counted in service requests; burn it down with
        # another tenant's traffic.
        for _ in range(3):
            assert self.request(svc, tenant="other", module=PROGRAM)["ok"]
        probe = self.request(svc, module=PROGRAM)  # the half-open probe
        assert probe["ok"]
        assert self.request(svc, module=PROGRAM)["ok"]  # circuit closed

    def test_failed_probe_reopens(self):
        svc = service(breaker=CircuitBreakerPolicy(threshold=2, cooldown=2))
        for _ in range(2):
            self.request(svc)
        for _ in range(3):
            self.request(svc, tenant="other", module=PROGRAM)
        probe = self.request(svc)  # half-open probe fails again
        assert probe["error"]["type"] != "circuit"
        assert self.request(svc)["error"]["type"] == "circuit"

    def test_open_circuit_does_not_burn_admission_slots(self):
        svc = service(
            breaker=CircuitBreakerPolicy(threshold=1, cooldown=10),
            max_pending_per_tenant=1,
        )
        self.request(svc)  # opens
        assert self.request(svc)["error"]["type"] == "circuit"
        assert svc.admission_rejected == 0

    def test_breaker_ignores_infrastructure_errors(self):
        svc = service(
            breaker=CircuitBreakerPolicy(threshold=2, cooldown=4),
            chaos=ServiceChaos(),
        )
        for index in range(4):
            response = svc.handle(
                {
                    "op": "simulate",
                    "module": PROGRAM,
                    "args": [index],
                    "tenant": "t0",
                    "deadline_ms": 10,
                    "chaos": {"sleep_ms": 50},
                }
            )
            assert response["error"]["type"] == "deadline"
        # Four deadline errors never open the circuit.
        assert self.request(svc, module=PROGRAM)["ok"]

    def test_disabled_breaker_never_sheds(self):
        svc = service(breaker=CircuitBreakerPolicy(enabled=False))
        for _ in range(20):
            assert self.request(svc)["error"]["type"] != "circuit"


class TestFlightCrashRescue:
    def test_waiters_get_typed_internal_error_not_deadlock(self):
        svc = service(chaos=ServiceChaos())
        request = {"op": "simulate", "module": PROGRAM, "args": [7]}
        barrier = threading.Barrier(2)
        waiter_response = {}
        owner_died = threading.Event()

        def owner():
            barrier.wait()
            try:
                svc.handle(dict(request, chaos={"sleep_ms": 100, "die": True}))
            except ChaosThreadDeath:
                owner_died.set()

        def waiter():
            barrier.wait()
            time.sleep(0.03)  # park behind the owner's flight
            waiter_response.update(svc.handle(dict(request)))

        threads = [
            threading.Thread(target=owner, daemon=True),
            threading.Thread(target=waiter, daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in threads)
        assert owner_died.is_set()
        assert not waiter_response["ok"]
        assert waiter_response["error"]["type"] == "internal"
        assert svc.flight_crashes == 1

    def test_crash_outcome_is_not_cached_and_key_not_poisoned(self):
        svc = service(chaos=ServiceChaos())
        request = {"op": "simulate", "module": PROGRAM, "args": [8]}
        with pytest.raises(ChaosThreadDeath):
            svc.handle(dict(request, chaos={"die": True}))
        assert svc.stats()["in_flight"] == 0
        retry = svc.handle(dict(request))
        assert retry["ok"]
        assert not retry["meta"]["cached"]  # recomputed, not a stale crash
        assert retry["result"]["results"] == [11]


class TestServiceClose:
    def test_close_wakes_parked_waiters_with_shutdown_error(self):
        svc = service(chaos=ServiceChaos())
        request = {"op": "simulate", "module": PROGRAM, "args": [9]}
        responses = []

        def owner():
            try:
                svc.handle(dict(request, chaos={"sleep_ms": 2000}))
            except Exception:
                pass

        def waiter():
            responses.append(svc.handle(dict(request)))

        owner_thread = threading.Thread(target=owner, daemon=True)
        owner_thread.start()
        time.sleep(0.05)
        waiter_threads = [
            threading.Thread(target=waiter, daemon=True) for _ in range(4)
        ]
        for thread in waiter_threads:
            thread.start()
        time.sleep(0.05)
        svc.close("test teardown")
        for thread in waiter_threads:
            thread.join(timeout=2.0)
        assert not any(thread.is_alive() for thread in waiter_threads)
        assert len(responses) == 4
        for response in responses:
            assert not response["ok"]
            assert response["error"]["type"] == "shutdown"

    def test_closed_service_fails_new_work_fast_but_answers_ping(self):
        svc = service()
        svc.close("done")
        refused = svc.handle({"op": "compile", "module": PROGRAM})
        assert refused["error"]["type"] == "shutdown"
        assert svc.handle({"op": "ping"})["ok"]
        assert svc.handle({"op": "stats"})["ok"]
        svc.close("again")  # idempotent


class TestEngineFallback:
    def test_trace_engine_crash_degrades_to_tree_interpreter(self, monkeypatch):
        svc = service()
        reference = svc.handle(
            {"op": "simulate", "module": PROGRAM, "args": [5]}
        )
        assert reference["ok"]

        def explode(*args, **kwargs):
            raise RuntimeError("trace engine internal bug")

        monkeypatch.setattr(service_module, "run_module_traced", explode)
        svc2 = service()
        response = svc2.handle(
            {"op": "simulate", "module": PROGRAM, "args": [5]}
        )
        assert response["ok"]
        assert svc2.engine_fallbacks == 1
        # Bit-identical to the trace-engine result: same canonical JSON.
        assert json.dumps(response["result"], sort_keys=True) == json.dumps(
            reference["result"], sort_keys=True
        )

    def test_semantic_errors_are_not_masked_by_fallback(self):
        svc = service()
        response = svc.handle(
            {"op": "simulate", "module": PROGRAM, "function": "nope"}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "InterpreterError"
        assert svc.engine_fallbacks == 0

    def test_chaos_trace_error_marker_takes_fallback_path(self):
        svc = service(chaos=ServiceChaos())
        response = svc.handle(
            {
                "op": "simulate",
                "module": PROGRAM,
                "args": [5],
                "chaos": {"trace_error": True},
            }
        )
        assert response["ok"]
        assert response["result"]["results"] == [8]
        assert svc.engine_fallbacks == 1


class TestFrameBound:
    def test_oversized_frame_gets_protocol_error_and_connection_survives(self):
        server = ReproServer(
            service=service(), max_frame_bytes=4096
        ).start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5.0) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b"x" * 10_000 + b"\n")
                response = json.loads(reader.readline())
                assert not response["ok"]
                assert response["error"]["type"] == "protocol"
                assert "exceeds" in response["error"]["message"]
                # Same connection still serves well-formed requests.
                sock.sendall(encode({"id": 1, "op": "ping"}))
                assert json.loads(reader.readline())["ok"]
        finally:
            server.stop()

    def test_frame_at_the_bound_is_served(self):
        server = ReproServer(service=service(), max_frame_bytes=4096).start()
        try:
            host, port = server.address
            with ReproClient(host, port) as client:
                padding = "x" * 3000
                response = client.request("ping", note=padding)
                assert response["ok"]
        finally:
            server.stop()


class TestClientRetry:
    def test_backoff_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        c = RetryPolicy(seed=8)
        delays_a = [a.delay(k) for k in range(4)]
        assert delays_a == [b.delay(k) for k in range(4)]
        assert delays_a != [c.delay(k) for k in range(4)]
        # Exponential envelope with jitter in [0.5, 1.0] of the base curve.
        for attempt, delay in enumerate(delays_a):
            nominal = a.backoff_base * a.backoff_factor**attempt
            assert 0.5 * nominal <= delay <= nominal

    def test_client_reconnects_and_resends_same_id(self):
        server = ReproServer(service=service()).start()
        try:
            host, port = server.address
            client = ReproClient(
                host, port, retry=RetryPolicy(backoff_base=0.01)
            )
            assert client.ping()["ok"]
            # Sever the transport under the client; the next request must
            # transparently reconnect and still complete.
            client._sock.shutdown(socket.SHUT_RDWR)
            response = client.request(
                "simulate", module=PROGRAM, args=[1]
            )
            assert response["ok"]
            assert client.retries >= 1
            client.close()
        finally:
            server.stop()

    def test_retry_resend_is_idempotent_via_outcome_cache(self):
        svc = service()
        server = ReproServer(service=svc).start()
        try:
            host, port = server.address
            client = ReproClient(
                host, port, retry=RetryPolicy(backoff_base=0.01)
            )
            payload = client.next_payload(
                "simulate", module=PROGRAM, args=[4]
            )
            # First transmission reaches the service but the connection
            # dies before the response: the chaos CONN_RESET shape.
            client._sock.sendall(encode(payload))
            time.sleep(0.1)
            client._teardown()
            response = client.send_payload(payload)
            assert response["ok"]
            assert response["meta"]["cached"]  # served from the outcome cache
            assert svc.outcome_hits >= 1
            client.close()
        finally:
            server.stop()

    def test_connect_retry_budget_exhausts_with_typed_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeClientError, match="attempts"):
            ReproClient(
                "127.0.0.1",
                dead_port,
                retry=RetryPolicy(max_retries=2, backoff_base=0.005),
            )
