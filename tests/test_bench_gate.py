"""The bench --check regression gate (pure logic, no workloads run)."""

from repro.bench import SERVE_MIN_SPEEDUP, check_regression


def doc(fuzz_rate=40.0, calibration=1e6, serve=None) -> dict:
    workloads = {"fuzz_iteration": {"programs_per_s": fuzz_rate}}
    if serve is not None:
        workloads["serve"] = serve
    return {
        "meta": {"calibration_ops_per_s": calibration},
        "workloads": workloads,
    }


class TestFuzzGate:
    def test_equal_numbers_pass(self):
        assert check_regression(doc(), doc()) == []

    def test_large_regression_fails(self):
        problems = check_regression(doc(fuzz_rate=20.0), doc(fuzz_rate=40.0))
        assert problems and "fuzz_iteration" in problems[0]

    def test_calibration_rescales_the_floor(self):
        # Half the machine speed excuses half the throughput.
        current = doc(fuzz_rate=20.0, calibration=0.5e6)
        committed = doc(fuzz_rate=40.0, calibration=1e6)
        assert check_regression(current, committed) == []

    def test_missing_baseline_workload_is_a_problem(self):
        problems = check_regression(doc(), {"workloads": {}})
        assert problems


class TestServeGate:
    def test_fast_serve_passes(self):
        current = doc(serve={"speedup_vs_serial": SERVE_MIN_SPEEDUP + 1})
        assert check_regression(current, doc()) == []

    def test_slow_serve_fails(self):
        current = doc(serve={"speedup_vs_serial": SERVE_MIN_SPEEDUP / 2})
        problems = check_regression(current, doc())
        assert problems and "serve" in problems[0]

    def test_failed_requests_fail_the_gate(self):
        current = doc(
            serve={"speedup_vs_serial": SERVE_MIN_SPEEDUP + 1, "errors": 2}
        )
        problems = check_regression(current, doc())
        assert problems and "failed request" in problems[0]

    def test_absent_serve_workload_is_tolerated(self):
        # Old benchmark documents (and partial runs) have no serve entry.
        assert check_regression(doc(), doc()) == []
