"""Tests for runtime error propagation through the interpreter stack."""

import pytest

from repro.interp import run_module
from repro.ir import parse_module
from repro.sim import CoSimulator
from repro.sim.memory import MemoryError_


class TestArithmeticTraps:
    def test_division_by_zero_surfaces(self):
        module = parse_module(
            """
            func.func @main(%a : i64) -> (i64) {
              %c0 = arith.constant 0 : i64
              %r = arith.divui %a, %c0 : i64
              func.return %r : i64
            }
            """
        )
        with pytest.raises(ZeroDivisionError):
            run_module(module, args=[5])

    def test_remainder_by_zero_surfaces(self):
        module = parse_module(
            """
            func.func @main(%a : i64) -> (i64) {
              %c0 = arith.constant 0 : i64
              %r = arith.remui %a, %c0 : i64
              func.return %r : i64
            }
            """
        )
        with pytest.raises(ZeroDivisionError):
            run_module(module, args=[5])


class TestMemoryFaults:
    def test_wild_pointer_faults_at_launch(self):
        module = parse_module(
            """
            func.func @main() -> () {
              %bad = arith.constant 3 : i64
              %n = arith.constant 8 : i64
              %op = arith.constant 0 : i64
              %s = accfg.setup on "toyvec" ("ptr_x" = %bad : i64, "ptr_y" = %bad : i64, "ptr_out" = %bad : i64, "n" = %n : i64, "op" = %op : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        with pytest.raises(MemoryError_):
            run_module(module)

    def test_timing_only_mode_skips_memory_faults(self):
        """functional=False runs pure timing: bad addresses never touch the
        memory model (how the large sweeps run)."""
        module = parse_module(
            """
            func.func @main() -> () {
              %bad = arith.constant 3 : i64
              %n = arith.constant 8 : i64
              %op = arith.constant 0 : i64
              %s = accfg.setup on "toyvec" ("ptr_x" = %bad : i64, "ptr_y" = %bad : i64, "ptr_out" = %bad : i64, "n" = %n : i64, "op" = %op : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        sim = CoSimulator(functional=False)
        run_module(module, sim)
        assert sim.device("toyvec").launch_count == 1


class TestRecursionGuard:
    def test_unbounded_recursion_detected(self):
        module = parse_module(
            """
            func.func @spin(%x : i64) -> (i64) {
              %r = func.call @spin(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            func.func @main(%x : i64) -> (i64) {
              %r = func.call @spin(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        from repro.interp import InterpreterError

        with pytest.raises(InterpreterError, match="call depth"):
            run_module(module, args=[1])

    def test_deep_but_bounded_calls_fine(self):
        module = parse_module(
            """
            func.func @leaf(%x : i64) -> (i64) {
              func.return %x : i64
            }
            func.func @mid(%x : i64) -> (i64) {
              %r = func.call @leaf(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            func.func @main(%x : i64) -> (i64) {
              %r = func.call @mid(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        results, _ = run_module(module, args=[7])
        assert results == [7]
