"""Tests for runtime error propagation through the interpreter stack."""

import pytest

from repro.interp import InterpreterError, run_module
from repro.ir import parse_module
from repro.sim import CoSimulator
from repro.sim.memory import MemoryError_


def run_timing(text: str, filename: str = "prog.mlir"):
    """Interpret in timing-only mode (no memory image needed)."""
    module = parse_module(text, filename)
    return run_module(module, CoSimulator(functional=False))


class TestArithmeticTraps:
    def test_division_by_zero_surfaces(self):
        module = parse_module(
            """
            func.func @main(%a : i64) -> (i64) {
              %c0 = arith.constant 0 : i64
              %r = arith.divui %a, %c0 : i64
              func.return %r : i64
            }
            """
        )
        with pytest.raises(ZeroDivisionError):
            run_module(module, args=[5])

    def test_remainder_by_zero_surfaces(self):
        module = parse_module(
            """
            func.func @main(%a : i64) -> (i64) {
              %c0 = arith.constant 0 : i64
              %r = arith.remui %a, %c0 : i64
              func.return %r : i64
            }
            """
        )
        with pytest.raises(ZeroDivisionError):
            run_module(module, args=[5])


class TestMemoryFaults:
    def test_wild_pointer_faults_at_launch(self):
        module = parse_module(
            """
            func.func @main() -> () {
              %bad = arith.constant 3 : i64
              %n = arith.constant 8 : i64
              %op = arith.constant 0 : i64
              %s = accfg.setup on "toyvec" ("ptr_x" = %bad : i64, "ptr_y" = %bad : i64, "ptr_out" = %bad : i64, "n" = %n : i64, "op" = %op : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        with pytest.raises(MemoryError_):
            run_module(module)

    def test_timing_only_mode_skips_memory_faults(self):
        """functional=False runs pure timing: bad addresses never touch the
        memory model (how the large sweeps run)."""
        module = parse_module(
            """
            func.func @main() -> () {
              %bad = arith.constant 3 : i64
              %n = arith.constant 8 : i64
              %op = arith.constant 0 : i64
              %s = accfg.setup on "toyvec" ("ptr_x" = %bad : i64, "ptr_y" = %bad : i64, "ptr_out" = %bad : i64, "n" = %n : i64, "op" = %op : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        sim = CoSimulator(functional=False)
        run_module(module, sim)
        assert sim.device("toyvec").launch_count == 1


class TestUnseenOpDiagnostics:
    """Unseen ops fail with the op's source location in the message — these
    are the executable counterparts of the static ACCFG lints, so the error
    text must be precise enough to triage a fuzz reproducer."""

    def test_unregistered_op_reports_location(self):
        with pytest.raises(
            InterpreterError,
            match=r"cannot interpret unregistered op 'mystery\.op' "
            r"at prog\.mlir:3:3",
        ):
            run_timing(
                """
                func.func @main() -> () {
                  %x = "mystery.op"() : () -> (i64)
                  func.return
                }
                """.replace("\n                ", "\n")
            )

    def test_location_falls_back_to_input_for_unnamed_source(self):
        module = parse_module(
            """
            func.func @main() -> () {
              %x = "mystery.op"() : () -> (i64)
              func.return
            }
            """
        )
        with pytest.raises(InterpreterError, match=r"at <input>:\d+:\d+"):
            run_module(module, CoSimulator(functional=False))

    def test_programmatic_ir_errors_without_location_suffix(self):
        """Ops built via the API have no loc; the message must not carry a
        dangling 'at' clause."""
        from repro.dialects import func as func_dialect
        from repro.dialects.builtin import ModuleOp
        from repro.ir.attributes import FunctionType
        from repro.ir.operation import UnregisteredOp

        fn = func_dialect.FuncOp.create("main", FunctionType((), ()))
        fn.body.add_op(UnregisteredOp("mystery.op"))
        fn.body.add_op(func_dialect.ReturnOp.create())
        module = ModuleOp.create([fn])
        with pytest.raises(InterpreterError) as excinfo:
            run_module(module, CoSimulator(functional=False))
        assert " at " not in str(excinfo.value)


class TestAccfgProtocolErrors:
    """Runtime counterparts of the ACCFG002/ACCFG003/ACCFG009 static lints:
    programs that slip past linting still fail loudly, with locations."""

    def test_double_await_raises(self):
        with pytest.raises(
            InterpreterError, match=r"double await .* at prog\.mlir:7:3"
        ):
            run_timing(
                """
                func.func @main() -> () {
                  %n = arith.constant 4 : i64
                  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
                  %t = accfg.launch %s : !accfg.token<"toyvec">
                  accfg.await %t
                  accfg.await %t
                  func.return
                }
                """.replace("\n                ", "\n")
            )

    def test_setup_after_reset_raises(self):
        with pytest.raises(InterpreterError, match="state that was reset"):
            run_timing(
                """
                func.func @main() -> () {
                  %n = arith.constant 4 : i64
                  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
                  accfg.reset %s
                  %s2 = accfg.setup on "toyvec" from %s ("n" = %n : i64) : !accfg.state<"toyvec">
                  func.return
                }
                """
            )

    def test_launch_after_reset_raises(self):
        with pytest.raises(
            InterpreterError, match="launch on 'toyvec' uses a state that was reset"
        ):
            run_timing(
                """
                func.func @main() -> () {
                  %n = arith.constant 4 : i64
                  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
                  accfg.reset %s
                  %t = accfg.launch %s : !accfg.token<"toyvec">
                  func.return
                }
                """
            )

    def test_await_of_launch_discarded_by_reset_raises(self):
        with pytest.raises(InterpreterError, match="discarded by accfg.reset"):
            run_timing(
                """
                func.func @main() -> () {
                  %n = arith.constant 4 : i64
                  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
                  %t = accfg.launch %s : !accfg.token<"toyvec">
                  accfg.reset %s
                  accfg.await %t
                  func.return
                }
                """
            )

    def test_reset_then_full_reconfiguration_is_fine(self):
        """Reset only poisons the old state chain: a fresh setup (no
        ``from``) reconfigures from scratch legally."""
        run_timing(
            """
            func.func @main() -> () {
              %n = arith.constant 4 : i64
              %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              accfg.await %t
              accfg.reset %s
              %s2 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
              %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
              accfg.await %t2
              func.return
            }
            """
        )

    def test_setup_on_unregistered_accelerator_at_runtime(self):
        with pytest.raises(
            InterpreterError, match="unknown accelerator 'warpcore'"
        ):
            run_timing(
                """
                func.func @main() -> () {
                  %n = arith.constant 4 : i64
                  %s = accfg.setup on "warpcore" ("n" = %n : i64) : !accfg.state<"warpcore">
                  func.return
                }
                """
            )

    def test_launch_on_unregistered_accelerator_at_runtime(self):
        module = parse_module(
            """
            func.func @main() -> () {
              %n = arith.constant 4 : i64
              %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              func.return
            }
            """
        )
        # Retarget the launch behind the registry's back: the launch reads
        # its accelerator from the state *type*, while the setup keeps its
        # own name attribute (models a buggy cross-accelerator rewrite).
        from repro.dialects import accfg

        launch = next(
            op for op in module.walk() if isinstance(op, accfg.LaunchOp)
        )
        launch.state.type = accfg.StateType("warpcore")
        with pytest.raises(
            InterpreterError, match="launch on unknown accelerator 'warpcore'"
        ):
            run_module(module, CoSimulator(functional=False))

    def test_await_of_non_token_value(self):
        """The await operand must hold a runtime token."""
        module = parse_module(
            """
            func.func @main() -> () {
              %n = arith.constant 4 : i64
              %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              accfg.await %t
              func.return
            }
            """
        )
        from repro.dialects import accfg

        await_op = next(
            op for op in module.walk() if isinstance(op, accfg.AwaitOp)
        )
        launch = next(
            op for op in module.walk() if isinstance(op, accfg.LaunchOp)
        )
        await_op.set_operand(0, launch.state)  # a state, not a token
        with pytest.raises(InterpreterError, match="not a token"):
            run_module(module, CoSimulator(functional=False))


class TestRecursionGuard:
    def test_unbounded_recursion_detected(self):
        module = parse_module(
            """
            func.func @spin(%x : i64) -> (i64) {
              %r = func.call @spin(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            func.func @main(%x : i64) -> (i64) {
              %r = func.call @spin(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        from repro.interp import InterpreterError

        with pytest.raises(InterpreterError, match="call depth"):
            run_module(module, args=[1])

    def test_deep_but_bounded_calls_fine(self):
        module = parse_module(
            """
            func.func @leaf(%x : i64) -> (i64) {
              func.return %x : i64
            }
            func.func @mid(%x : i64) -> (i64) {
              %r = func.call @leaf(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            func.func @main(%x : i64) -> (i64) {
              %r = func.call @mid(%x) : (i64) -> (i64)
              func.return %r : i64
            }
            """
        )
        results, _ = run_module(module, args=[7])
        assert results == [7]
