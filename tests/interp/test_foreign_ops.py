"""Tests for interpreting annotated foreign operations."""

import pytest

from repro.interp import InterpreterError, run_module
from repro.ir import parse_module
from repro.isa import InstrCategory
from repro.sim import CoSimulator


class TestForeignOps:
    def test_effects_none_foreign_op_executes_as_host_work(self):
        module = parse_module(
            """
            func.func @main() -> () {
              "libc.printf"() {accfg.effects = "none"} : () -> ()
              func.return
            }
            """
        )
        sim = CoSimulator()
        run_module(module, sim)
        stats = sim.trace.stats(sim.cost_model)
        assert stats.compute_instrs == 1

    def test_effects_all_foreign_op_executes(self):
        module = parse_module(
            """
            func.func @main() -> () {
              "driver.reset_accelerator"() {accfg.effects = "all"} : () -> ()
              func.return
            }
            """
        )
        results, _ = run_module(module)
        assert results == []

    def test_unannotated_foreign_op_rejected(self):
        module = parse_module(
            """
            func.func @main() -> () {
              "mystery.op"() : () -> ()
              func.return
            }
            """
        )
        with pytest.raises(InterpreterError, match="unregistered"):
            run_module(module)

    def test_foreign_op_with_results_rejected(self):
        module = parse_module(
            """
            func.func @main() -> (i64) {
              %r = "mystery.read"() {accfg.effects = "none"} : () -> (i64)
              func.return %r : i64
            }
            """
        )
        with pytest.raises(InterpreterError):
            run_module(module)

    def test_state_preserved_across_annotated_foreign_op(self):
        """End to end: the annotated call does not disturb the device's
        register file, so a partial setup after it still works."""
        import numpy as np

        from repro.sim import Memory

        memory = Memory()
        x = memory.place(np.arange(8, dtype=np.int32))
        y = memory.place(np.arange(8, dtype=np.int32))
        out = memory.alloc(8, np.int32)
        module = parse_module(
            f"""
            func.func @main() -> () {{
              %px = arith.constant {x.addr} : i64
              %py = arith.constant {y.addr} : i64
              %po = arith.constant {out.addr} : i64
              %n = arith.constant 8 : i64
              %add = arith.constant 0 : i64
              %mul = arith.constant 1 : i64
              %s = accfg.setup on "toyvec" ("ptr_x" = %px : i64, "ptr_y" = %py : i64, "ptr_out" = %po : i64, "n" = %n : i64, "op" = %add : i64) : !accfg.state<"toyvec">
              "libc.printf"() {{accfg.effects = "none"}} : () -> ()
              %s2 = accfg.setup on "toyvec" ("op" = %mul : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s2 : !accfg.token<"toyvec">
              accfg.await %t
              func.return
            }}
            """
        )
        sim = CoSimulator(memory=memory)
        run_module(module, sim)
        assert (out.array == x.array * y.array).all()
