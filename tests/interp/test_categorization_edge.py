"""Edge cases of instruction categorization and generic-syntax handling."""

from repro.interp import config_feeding_ops, run_module
from repro.ir import parse_module
from repro.isa import HostCostModel
from repro.sim import CoSimulator


class TestLaunchFieldCategorization:
    def test_launch_field_producers_are_calc(self):
        module = parse_module(
            """
            func.func @main(%x : i64) -> () {
              %addr = arith.addi %x, %x : i64
              %s = accfg.setup on "gemmini" () : !accfg.state<"gemmini">
              %t = accfg.launch %s ("op" = %x : i64, "ld_addr" = %addr : i64) : !accfg.token<"gemmini">
              func.return
            }
            """
        )
        feeding = {op.name for op in config_feeding_ops(module)}
        assert "arith.addi" in feeding

    def test_launch_config_charged_as_setup_category(self):
        module = parse_module(
            """
            func.func @main(%x : i64) -> () {
              %s = accfg.setup on "gemmini" () : !accfg.state<"gemmini">
              %t = accfg.launch %s ("op" = %x : i64, "ld_addr" = %x : i64) : !accfg.token<"gemmini">
              func.return
            }
            """
        )
        sim = CoSimulator(cost_model=HostCostModel(1.0), functional=False)
        run_module(module, sim, args=[0])
        stats = sim.trace.stats(sim.cost_model)
        # ld_addr (32b) -> one staged word + one custom RoCC.
        assert stats.setup_instrs == 2

    def test_chain_through_select_and_cmp(self):
        module = parse_module(
            """
            func.func @main(%x : i64, %y : i64) -> () {
              %c = arith.cmpi ult, %x, %y : i64
              %v = arith.select %c, %x, %y : i64
              %s = accfg.setup on "toyvec" ("n" = %v : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        feeding = {op.name for op in config_feeding_ops(module)}
        assert "arith.select" in feeding
        assert "arith.cmpi" in feeding


class TestGenericSyntaxMultiResult:
    def test_multi_result_generic_op_roundtrip(self):
        text = """
        func.func @main() -> () {
          %a, %b = "mystery.pair"() : () -> (i64, i64)
          "mystery.sink"(%a, %b) : (i64, i64) -> ()
          func.return
        }
        """
        module = parse_module(text)
        printed = str(module)
        assert str(parse_module(printed)) == printed
        pair = next(op for op in module.walk() if "pair" in str(op.name) or getattr(op, "op_name", "") == "mystery.pair")
        assert len(pair.results) == 2

    def test_generic_op_with_regions_roundtrip(self):
        text = """
        func.func @main() -> () {
          "mystery.region_holder"() : () -> () {
            %c = arith.constant 1 : i64
          }
          func.return
        }
        """
        module = parse_module(text)
        printed = str(module)
        assert str(parse_module(printed)) == printed
