"""Tests for the timed functional IR interpreter."""

import numpy as np
import pytest

from repro.interp import Interpreter, InterpreterError, config_feeding_ops, run_module
from repro.ir import parse_module
from repro.isa import HostCostModel, InstrCategory
from repro.sim import CoSimulator, Memory


def interpret(text, args=None, memory=None):
    module = parse_module(text)
    sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
    results = Interpreter(module, sim).run("main", args or [])
    return results, sim


class TestScalarExecution:
    def test_arith(self):
        results, _ = interpret(
            """
            func.func @main(%a : i64, %b : i64) -> (i64) {
              %s = arith.addi %a, %b : i64
              %m = arith.muli %s, %s : i64
              func.return %m : i64
            }
            """,
            args=[3, 4],
        )
        assert results == [49]

    def test_wrapping_semantics(self):
        results, _ = interpret(
            """
            func.func @main(%a : i8) -> (i8) {
              %c1 = arith.constant 1 : i8
              %s = arith.addi %a, %c1 : i8
              func.return %s : i8
            }
            """,
            args=[255],
        )
        assert results == [0]

    def test_cmp_and_select(self):
        results, _ = interpret(
            """
            func.func @main(%a : i64, %b : i64) -> (i64) {
              %c = arith.cmpi ult, %a, %b : i64
              %r = arith.select %c, %a, %b : i64
              func.return %r : i64
            }
            """,
            args=[9, 5],
        )
        assert results == [5]

    def test_division(self):
        results, _ = interpret(
            """
            func.func @main(%a : i64) -> (i64, i64) {
              %c3 = arith.constant 3 : i64
              %d = arith.divui %a, %c3 : i64
              %r = arith.remui %a, %c3 : i64
              func.return %d, %r : i64, i64
            }
            """,
            args=[10],
        )
        assert results == [3, 1]


class TestControlFlow:
    def test_loop_accumulation(self):
        results, _ = interpret(
            """
            func.func @main() -> (index) {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c5 = arith.constant 5 : index
              %sum = scf.for %i = %c0 to %c5 step %c1 iter_args(%acc = %c0) -> (index) {
                %n = arith.addi %acc, %i : index
                scf.yield %n : index
              }
              func.return %sum : index
            }
            """
        )
        assert results == [10]

    def test_zero_trip_loop(self):
        results, _ = interpret(
            """
            func.func @main() -> (index) {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c9 = arith.constant 9 : index
              %r = scf.for %i = %c9 to %c0 step %c1 iter_args(%acc = %c1) -> (index) {
                %n = arith.addi %acc, %acc : index
                scf.yield %n : index
              }
              func.return %r : index
            }
            """
        )
        assert results == [1]

    def test_if_branches(self):
        text = """
        func.func @main(%c : i1) -> (i64) {
          %r = scf.if %c -> (i64) {
            %a = arith.constant 10 : i64
            scf.yield %a : i64
          } else {
            %b = arith.constant 20 : i64
            scf.yield %b : i64
          }
          func.return %r : i64
        }
        """
        assert interpret(text, args=[1])[0] == [10]
        assert interpret(text, args=[0])[0] == [20]

    def test_nonpositive_step_rejected(self):
        with pytest.raises(InterpreterError, match="positive step"):
            interpret(
                """
                func.func @main() -> () {
                  %c0 = arith.constant 0 : index
                  %c9 = arith.constant 9 : index
                  scf.for %i = %c0 to %c9 step %c0 {
                    scf.yield
                  }
                  func.return
                }
                """
            )

    def test_function_calls(self):
        results, _ = interpret(
            """
            func.func @double(%x : i64) -> (i64) {
              %r = arith.addi %x, %x : i64
              func.return %r : i64
            }
            func.func @main(%a : i64) -> (i64) {
              %r = func.call @double(%a) : (i64) -> (i64)
              %s = func.call @double(%r) : (i64) -> (i64)
              func.return %s : i64
            }
            """,
            args=[3],
        )
        assert results == [12]

    def test_call_to_declaration_rejected(self):
        with pytest.raises(InterpreterError, match="unknown/declared"):
            interpret(
                """
                func.func @ext(i64) -> (i64)
                func.func @main(%a : i64) -> (i64) {
                  %r = func.call @ext(%a) : (i64) -> (i64)
                  func.return %r : i64
                }
                """,
                args=[1],
            )


class TestAccfgExecution:
    def make_memory(self):
        memory = Memory()
        x = memory.place(np.arange(16, dtype=np.int32))
        y = memory.place(np.arange(16, dtype=np.int32) * 3)
        out = memory.alloc(16, np.int32)
        return memory, x, y, out

    def test_setup_launch_await(self):
        memory, x, y, out = self.make_memory()
        _, sim = interpret(
            f"""
            func.func @main() -> () {{
              %px = arith.constant {x.addr} : i64
              %py = arith.constant {y.addr} : i64
              %po = arith.constant {out.addr} : i64
              %n = arith.constant 16 : i64
              %op = arith.constant 0 : i64
              %s = accfg.setup on "toyvec" ("ptr_x" = %px : i64, "ptr_y" = %py : i64, "ptr_out" = %po : i64, "n" = %n : i64, "op" = %op : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              accfg.await %t
              func.return
            }}
            """,
            memory=memory,
        )
        assert (out.array == x.array + y.array).all()
        assert sim.device("toyvec").launch_count == 1

    def test_await_non_token_rejected(self):
        # Craft IR where the token env entry is missing by awaiting a token
        # twice through manual interpretation (covered via unknown op below).
        with pytest.raises(InterpreterError):
            interpret(
                """
                func.func @main() -> () {
                  "foreign.op"() : () -> ()
                  func.return
                }
                """
            )


class TestInstructionCategorization:
    def test_config_feeding_ops_marked_calc(self):
        module = parse_module(
            """
            func.func @main(%x : i64) -> (i64) {
              %a = arith.addi %x, %x : i64
              %s = accfg.setup on "toyvec" ("n" = %a : i64) : !accfg.state<"toyvec">
              %b = arith.muli %x, %x : i64
              func.return %b : i64
            }
            """
        )
        feeding = config_feeding_ops(module)
        names = {op.name for op in feeding}
        assert "arith.addi" in names
        assert "arith.muli" not in names

    def test_calc_vs_compute_charging(self):
        _, sim = interpret(
            """
            func.func @main(%x : i64) -> (i64) {
              %a = arith.addi %x, %x : i64
              %s = accfg.setup on "toyvec" ("n" = %a : i64) : !accfg.state<"toyvec">
              %b = arith.muli %x, %x : i64
              func.return %b : i64
            }
            """,
            args=[2],
        )
        stats = sim.trace.stats(sim.cost_model)
        assert stats.calc_instrs == 1  # the addi feeding the setup
        assert stats.compute_instrs == 1  # the muli

    def test_loop_control_charged(self):
        _, sim = interpret(
            """
            func.func @main() -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c4 = arith.constant 4 : index
              scf.for %i = %c0 to %c4 step %c1 {
                scf.yield
              }
              func.return
            }
            """
        )
        stats = sim.trace.stats(sim.cost_model)
        assert stats.control_instrs == 8  # 2 per iteration


class TestErrors:
    def test_missing_function(self):
        module = parse_module("func.func @other() -> () { func.return }")
        with pytest.raises(InterpreterError, match="no function"):
            Interpreter(module, CoSimulator()).run("main")

    def test_wrong_arg_count(self):
        module = parse_module("func.func @main(%a : i64) -> () { func.return }")
        with pytest.raises(InterpreterError, match="arguments"):
            Interpreter(module, CoSimulator()).run("main", [])

    def test_run_module_helper(self):
        module = parse_module(
            """
            func.func @main() -> (i64) {
              %c = arith.constant 11 : i64
              func.return %c : i64
            }
            """
        )
        results, sim = run_module(module)
        assert results == [11]
        assert sim.host_time > 0
