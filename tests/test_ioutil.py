"""Crash-safe file output (repro.ioutil)."""

import json
import os

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "payload")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_creates_missing_directories(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "out.txt"
        atomic_write_text(str(path), "payload")
        assert path.read_text() == "payload"


class TestAtomicWriteJson:
    def test_sorted_keys_and_trailing_newline(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(str(path), {"b": 1, "a": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_failure_leaves_original_and_no_litter(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(str(path), {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        # The old complete file survives; no temporary files remain.
        assert json.loads(path.read_text()) == {"ok": True}
        assert os.listdir(tmp_path) == ["doc.json"]
