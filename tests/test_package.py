"""Public-API smoke tests: the documented entry points exist and cohere."""

import importlib

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.ir",
            "repro.dialects",
            "repro.passes",
            "repro.isa",
            "repro.backends",
            "repro.sim",
            "repro.interp",
            "repro.workloads",
            "repro.experiments",
        ],
    )
    def test_subpackages_import(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.ir",
            "repro.passes",
            "repro.isa",
            "repro.backends",
            "repro.sim",
            "repro.interp",
            "repro.workloads",
        ],
    )
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"

    def test_readme_quickstart_snippet(self):
        """The README's code snippet runs verbatim."""
        from repro.core import ConfigRoofline

        roofline = ConfigRoofline(peak_performance=512, config_bandwidth=2.0)
        assert roofline.knee_intensity == 256.0
        assert roofline.attainable_sequential(100) == pytest.approx(143.8, abs=0.1)
        from repro.core import Boundness

        assert roofline.boundness(100) is Boundness.CONFIG_BOUND

    def test_every_public_op_has_docstring(self):
        from repro.ir import OP_REGISTRY

        for name, cls in OP_REGISTRY.items():
            assert cls.__doc__, f"op {name} lacks a docstring"

    def test_every_pass_has_docstring(self):
        from repro.passes import PASS_REGISTRY

        for name, cls in PASS_REGISTRY.items():
            assert cls.__doc__, f"pass {name} lacks a docstring"

    def test_registered_pipelines_cover_the_evaluation(self):
        from repro.passes import PIPELINES

        for name in ("baseline", "volatile-baseline", "dedup", "overlap", "full"):
            assert name in PIPELINES
