"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main

DEMO = """
builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    scf.for %i = %c0 to %c4 step %c1 {
      %s = accfg.setup on "toyvec" ("n" = %n : i64, "op" = %i : index) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.mlir"
    path.write_text(DEMO)
    return str(path)


class TestOpt:
    def test_full_pipeline_pipelines_the_loop(self, demo_file, capsys):
        assert main(["opt", "--pipeline", "full", demo_file]) == 0
        out = capsys.readouterr().out
        assert "iter_args" in out  # state threaded through the loop
        assert "i_next" in out  # software pipelining applied

    def test_baseline_leaves_setups_in_loop(self, demo_file, capsys):
        assert main(["opt", "--pipeline", "baseline", demo_file]) == 0
        out = capsys.readouterr().out
        assert "iter_args" not in out

    def test_invalid_pipeline_rejected(self, demo_file):
        with pytest.raises(SystemExit):
            main(["opt", "--pipeline", "warp-speed", demo_file])

    def test_output_reparses(self, demo_file, capsys):
        from repro.ir import parse_module, verify_operation

        main(["opt", "--pipeline", "dedup", demo_file])
        out = capsys.readouterr().out
        verify_operation(parse_module(out))


class TestReport:
    def test_static_report(self, demo_file, capsys):
        assert main(["report", demo_file]) == 0
        out = capsys.readouterr().out
        assert "accfg.setup" in out
        assert "total (static)" in out

    def test_report_after_pipeline(self, demo_file, capsys):
        main(["report", demo_file])
        before = capsys.readouterr().out
        main(["report", demo_file, "--pipeline", "dedup"])
        after = capsys.readouterr().out
        assert before != after


class TestRun:
    def test_run_prints_metrics(self, demo_file, capsys):
        assert main(["run", demo_file, "--args", "16"]) == 0
        out = capsys.readouterr().out
        assert "total cycles" in out
        assert "toyvec" in out

    def test_optimized_run_is_faster(self, demo_file, capsys):
        def cycles_of(extra):
            main(["run", demo_file, "--args", "16", *extra])
            out = capsys.readouterr().out
            line = next(l for l in out.splitlines() if "total cycles" in l)
            return float(line.split(":")[1])

        baseline = cycles_of([])
        optimized = cycles_of(["--pipeline", "full"])
        assert optimized < baseline


class TestExperimentShortcuts:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "gemmini_loop_ws" in capsys.readouterr().out

    def test_example46(self, capsys):
        assert main(["example46"]) == 0
        assert "26.78%" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "knee" in capsys.readouterr().out
