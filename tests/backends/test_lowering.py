"""Tests for the static lowering inspection (step 5 artifact)."""

from repro.backends.lowering import (
    lower_accfg_op,
    lower_launch,
    lower_setup,
    static_config_report,
)
from repro.dialects import accfg
from repro.ir import parse_module
from repro.isa import HostCostModel


def module_with_loop():
    return parse_module(
        """
        func.func @main(%x : i64) -> () {
          %c0 = arith.constant 0 : index
          %c1 = arith.constant 1 : index
          %c4 = arith.constant 4 : index
          %pre = accfg.setup on "opengemm" ("M" = %x : i64, "N" = %x : i64) : !accfg.state<"opengemm">
          scf.for %i = %c0 to %c4 step %c1 {
            %s = accfg.setup on "opengemm" ("ptr_A" = %x : i64) : !accfg.state<"opengemm">
            %t = accfg.launch %s : !accfg.token<"opengemm">
            accfg.await %t
            scf.yield
          }
          func.return
        }
        """
    )


class TestPerOpLowering:
    def test_setup_lowering(self):
        module = module_with_loop()
        setup = next(op for op in module.walk() if isinstance(op, accfg.SetupOp))
        instrs = lower_setup(setup)
        assert len(instrs) == 2  # one csrw per field
        assert all(i.mnemonic == "csrw" for i in instrs)

    def test_launch_lowering(self):
        module = module_with_loop()
        launch = next(op for op in module.walk() if isinstance(op, accfg.LaunchOp))
        instrs = lower_launch(launch)
        assert [i.mnemonic for i in instrs] == ["csrw-start", "fence"]

    def test_launch_with_fields_lowering(self):
        module = parse_module(
            """
            func.func @main(%x : i64) -> () {
              %s = accfg.setup on "gemmini" () : !accfg.state<"gemmini">
              %t = accfg.launch %s ("op" = %x : i64, "ld_addr" = %x : i64) : !accfg.token<"gemmini">
              func.return
            }
            """
        )
        launch = next(op for op in module.walk() if isinstance(op, accfg.LaunchOp))
        instrs = lower_launch(launch)
        # op selector is funct-encoded; ld_addr (32b) = 1 word = stage+custom
        assert len(instrs) == 2

    def test_non_accfg_op_returns_none(self):
        module = module_with_loop()
        constant = next(op for op in module.walk() if op.name == "arith.constant")
        assert lower_accfg_op(constant) is None


class TestReport:
    def test_report_counts(self):
        report = static_config_report(module_with_loop())
        assert len(report.entries) == 4  # pre-setup, in-loop setup, launch, await
        assert report.static_config_bytes == 2 * 4 + 4 + 4  # 2 CSRs + 1 CSR + start

    def test_loop_depth_annotation(self):
        report = static_config_report(module_with_loop())
        depths = {entry.op.name: entry.loop_depth for entry in report.entries}
        assert depths["accfg.launch"] == 1
        pre = next(e for e in report.entries if e.loop_depth == 0)
        assert pre.op.name == "accfg.setup"

    def test_by_accelerator(self):
        report = static_config_report(module_with_loop())
        assert set(report.by_accelerator()) == {"opengemm"}

    def test_static_cycles(self):
        report = static_config_report(module_with_loop())
        cycles = report.static_cycles(HostCostModel(1.0))
        assert cycles == report.static_instr_count

    def test_format(self):
        text = static_config_report(module_with_loop()).format()
        assert "accfg.setup" in text
        assert "total (static)" in text

    def test_dedup_shrinks_static_report(self):
        from repro.passes import pipeline_by_name

        module = module_with_loop()
        before = static_config_report(module).static_config_bytes
        pipeline_by_name("dedup").run(module)
        after = static_config_report(module).static_config_bytes
        assert after <= before
