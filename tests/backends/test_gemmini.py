"""Tests for the Gemmini target description."""

import numpy as np
import pytest

from repro.backends import GEMMINI, LOOP_WS_FIELDS
from repro.backends.gemmini import (
    ARRAY_DIM,
    OP_COMPUTE,
    OP_LOOP_WS,
    OP_MVIN,
    OP_PRELOAD,
    ROCC_BYTES,
    max_invocation_edge,
)
from repro.isa import InstrCategory
from repro.sim import Memory


class TestInterface:
    def test_peak_performance(self):
        assert GEMMINI.peak_ops_per_cycle == 512  # 16x16 PEs, 2 ops each

    def test_sequential_configuration(self):
        assert not GEMMINI.concurrent_config

    def test_table1_field_widths(self):
        widths = {f.name: f.bits for f in LOOP_WS_FIELDS}
        assert widths["A"] == 64
        assert widths["I"] == 16
        assert widths["pad_K"] == 16
        assert widths["stride_C"] == 64
        assert widths["act"] == 6
        assert widths["A_transpose"] == 1
        assert len(LOOP_WS_FIELDS) == 17

    def test_rocc_write_cost(self):
        # A single 64-bit field: one word -> one staged reg + one custom.
        instrs = GEMMINI.setup_instrs(["A"])
        assert len(instrs) == 2
        assert instrs[-1].config_bytes == ROCC_BYTES

    def test_two_words_per_rocc(self):
        instrs = GEMMINI.setup_instrs(["A", "B"])
        assert len(instrs) == 3  # 2 stages + 1 custom
        assert sum(1 for i in instrs if i.config_bytes) == 1

    def test_config_bytes_full_payloads(self):
        assert GEMMINI.config_bytes(["A"]) == 16
        assert GEMMINI.config_bytes(["A", "B", "D"]) == 32
        assert GEMMINI.config_bytes([]) == 0

    def test_launch_semantic_no_dedicated_instr(self):
        assert GEMMINI.launch_instrs() == []

    def test_launch_fields_exclude_op_selector(self):
        bare = GEMMINI.launch_field_instrs(["op"])
        assert len(bare) == 1  # just the custom instruction
        with_addr = GEMMINI.launch_field_instrs(["op", "ld_addr"])
        assert len(with_addr) == 2

    def test_setup_category(self):
        for instr in GEMMINI.setup_instrs(["A", "I"]):
            assert instr.category is InstrCategory.SETUP


class TestTiming:
    def test_loop_ws_cycles_scale_with_tiles(self):
        small = GEMMINI.compute_cycles({"op": OP_LOOP_WS, "I": 1, "J": 1, "K": 1})
        big = GEMMINI.compute_cycles({"op": OP_LOOP_WS, "I": 2, "J": 2, "K": 2})
        assert big > small

    def test_fine_grained_tile_cycles(self):
        assert GEMMINI.compute_cycles({"op": OP_COMPUTE}) == 2 * ARRAY_DIM

    def test_data_moves_free(self):
        assert GEMMINI.compute_cycles({"op": OP_MVIN}) == 0
        assert GEMMINI.launch_ops({"op": OP_MVIN}) == 0
        assert GEMMINI.launch_ops({"op": OP_PRELOAD}) == 0

    def test_compute_ops(self):
        assert GEMMINI.launch_ops({"op": OP_COMPUTE}) == 2 * 16**3

    def test_loop_ws_ops(self):
        config = {"op": OP_LOOP_WS, "I": 2, "J": 2, "K": 2}
        assert GEMMINI.launch_ops(config) == 2 * 32 * 32 * 32


class TestFunctionalSemantics:
    def test_loop_ws_matmul(self):
        mem = Memory()
        rng = np.random.default_rng(0)
        a = mem.place(rng.integers(-4, 4, (32, 32), dtype=np.int8))
        b = mem.place(rng.integers(-4, 4, (32, 32), dtype=np.int8))
        c = mem.alloc((32, 32), np.int32)
        GEMMINI.execute(
            {
                "op": OP_LOOP_WS,
                "A": a.addr,
                "B": b.addr,
                "C": c.addr,
                "I": 2,
                "J": 2,
                "K": 2,
                "stride_A": 32,
                "stride_B": 32,
                "stride_C": 32,
            },
            mem,
        )
        expected = a.array.astype(np.int32) @ b.array.astype(np.int32)
        assert (c.array == expected).all()

    def test_loop_ws_with_bias(self):
        mem = Memory()
        a = mem.place(np.eye(16, dtype=np.int8))
        b = mem.place(np.eye(16, dtype=np.int8))
        d = mem.place(np.full((16, 16), 5, dtype=np.int32))
        c = mem.alloc((16, 16), np.int32)
        GEMMINI.execute(
            {
                "op": OP_LOOP_WS,
                "A": a.addr,
                "B": b.addr,
                "C": c.addr,
                "D": d.addr,
                "I": 1,
                "J": 1,
                "K": 1,
                "stride_A": 16,
                "stride_B": 16,
                "stride_C": 16,
                "stride_D": 16,
            },
            mem,
        )
        assert (c.array == np.eye(16, dtype=np.int32) + 5).all()

    def test_relu_activation(self):
        mem = Memory()
        a = mem.place(np.full((16, 16), -1, dtype=np.int8))
        b = mem.place(np.eye(16, dtype=np.int8))
        c = mem.alloc((16, 16), np.int32)
        config = {
            "op": OP_LOOP_WS,
            "A": a.addr,
            "B": b.addr,
            "C": c.addr,
            "I": 1,
            "J": 1,
            "K": 1,
            "stride_A": 16,
            "stride_B": 16,
            "stride_C": 16,
            "act": 1,
        }
        GEMMINI.execute(config, mem)
        assert (c.array == 0).all()

    def test_fine_grained_accumulation(self):
        mem = Memory()
        a = mem.place(np.eye(16, dtype=np.int8))
        b = mem.place(np.full((16, 16), 2, dtype=np.int8))
        c = mem.alloc((16, 16), np.int32)
        base = {
            "stride_A": 16,
            "stride_B": 16,
            "stride_C": 16,
            "ld_addr": a.addr,
            "preload_addr": b.addr,
            "st_addr": c.addr,
        }
        GEMMINI.execute({**base, "op": OP_COMPUTE, "acc": 0}, mem)
        first = c.array.copy()
        assert (first == 2).all()  # identity @ all-twos
        GEMMINI.execute({**base, "op": OP_COMPUTE, "acc": 1}, mem)
        assert (c.array == 2 * first).all()

    def test_mvin_functional_noop(self):
        mem = Memory()
        GEMMINI.execute({"op": OP_MVIN, "ld_addr": 0}, mem)  # must not raise


class TestInvocationSplitting:
    def test_small_sizes_single_invocation(self):
        assert max_invocation_edge(16) == 16
        assert max_invocation_edge(64) == 64

    def test_large_sizes_capped(self):
        assert max_invocation_edge(128) == 64
        assert max_invocation_edge(512) == 64
