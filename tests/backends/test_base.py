"""Tests for the accelerator registry and the toyvec target."""

import numpy as np
import pytest

from repro.backends import (
    TOYVEC,
    TOYVEC_SEQ,
    AcceleratorSpec,
    get_accelerator,
    get_accelerator_or_none,
    register_accelerator,
    registered_accelerators,
)
from repro.sim import Memory


class TestRegistry:
    def test_builtin_targets_registered(self):
        names = registered_accelerators()
        for expected in ("gemmini", "opengemm", "toyvec", "toyvec-seq"):
            assert expected in names

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown accelerator"):
            get_accelerator("quantum-annealer")

    def test_get_or_none(self):
        assert get_accelerator_or_none("gemmini") is not None
        assert get_accelerator_or_none("nope") is None

    def test_duplicate_registration_rejected(self):
        class Dup(type(TOYVEC)):
            name = "toyvec"

        with pytest.raises(ValueError, match="already registered"):
            register_accelerator(Dup())

    def test_replace_allowed_explicitly(self):
        spec = get_accelerator("toyvec")
        register_accelerator(spec, replace=True)
        assert get_accelerator("toyvec") is spec

    def test_unnamed_spec_rejected(self):
        class NoName(type(TOYVEC)):
            name = ""

        with pytest.raises(ValueError, match="needs a name"):
            register_accelerator(NoName())


class TestDefaultCosts:
    def test_config_bytes_from_field_widths(self):
        assert TOYVEC.config_bytes(["ptr_x"]) == 8
        assert TOYVEC.config_bytes(["n"]) == 4
        assert TOYVEC.config_bytes(["op"]) == 1

    def test_unknown_field_defaults_to_word(self):
        assert TOYVEC.config_bytes(["mystery"]) == 8

    def test_default_sync_is_single_poll(self):
        assert len(TOYVEC.sync_instrs()) == 1

    def test_launch_field_instrs_default_to_setup(self):
        assert len(TOYVEC.launch_field_instrs(["n"])) == len(
            TOYVEC.setup_instrs(["n"])
        )

    def test_field_spec_lookup(self):
        assert TOYVEC.field_spec("n").bits == 32
        with pytest.raises(KeyError):
            TOYVEC.field_spec("bogus")

    def test_repr_mentions_scheme(self):
        assert "concurrent" in repr(TOYVEC)
        assert "sequential" in repr(TOYVEC_SEQ)


class TestToyVecSemantics:
    def run_op(self, op_code):
        mem = Memory()
        x = mem.place(np.array([1, 2, 3, 4], dtype=np.int32))
        y = mem.place(np.array([10, 20, 30, 2], dtype=np.int32))
        out = mem.alloc(4, np.int32)
        TOYVEC.execute(
            {
                "ptr_x": x.addr,
                "ptr_y": y.addr,
                "ptr_out": out.addr,
                "n": 4,
                "op": op_code,
            },
            mem,
        )
        return x.array, y.array, out.array

    def test_add(self):
        x, y, out = self.run_op(0)
        assert (out == x + y).all()

    def test_mul(self):
        x, y, out = self.run_op(1)
        assert (out == x * y).all()

    def test_max(self):
        x, y, out = self.run_op(2)
        assert (out == np.maximum(x, y)).all()

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            self.run_op(3)

    def test_zero_length_noop(self):
        mem = Memory()
        TOYVEC.execute({"n": 0}, mem)  # must not raise

    def test_compute_cycles_lanes(self):
        assert TOYVEC.compute_cycles({"n": 16}) == 16 / 8 + 4
        assert TOYVEC.compute_cycles({"n": 17}) == 3 + 4

    def test_sequential_variant_shares_semantics(self):
        assert TOYVEC_SEQ.peak_ops_per_cycle == TOYVEC.peak_ops_per_cycle
        assert not TOYVEC_SEQ.concurrent_config
