"""Edge-case functional tests for Gemmini's loop_ws semantics: transposes
and padding."""

import numpy as np
import pytest

from repro.backends import GEMMINI
from repro.backends.gemmini import OP_LOOP_WS
from repro.sim import Memory


def run_ws(mem, **config):
    base = {"op": OP_LOOP_WS, "I": 1, "J": 1, "K": 1}
    base.update(config)
    GEMMINI.execute(base, mem)


class TestTransposes:
    def test_a_transpose(self):
        mem = Memory()
        rng = np.random.default_rng(0)
        a = mem.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
        b = mem.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
        c = mem.alloc((16, 16), np.int32)
        run_ws(
            mem,
            A=a.addr,
            B=b.addr,
            C=c.addr,
            A_transpose=1,
            stride_A=16,
            stride_B=16,
            stride_C=16,
        )
        expected = a.array.T.astype(np.int32) @ b.array.astype(np.int32)
        assert (c.array == expected).all()

    def test_b_transpose(self):
        mem = Memory()
        rng = np.random.default_rng(1)
        a = mem.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
        b = mem.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
        c = mem.alloc((16, 16), np.int32)
        run_ws(
            mem,
            A=a.addr,
            B=b.addr,
            C=c.addr,
            B_transpose=1,
            stride_A=16,
            stride_B=16,
            stride_C=16,
        )
        expected = a.array.astype(np.int32) @ b.array.T.astype(np.int32)
        assert (c.array == expected).all()


class TestPadding:
    def test_padded_dimensions_shrink_the_computation(self):
        """pad_* trims the logical matrix below the tile grid (Table 1)."""
        mem = Memory()
        rng = np.random.default_rng(2)
        a = mem.place(rng.integers(-4, 4, (12, 16), dtype=np.int8))
        b = mem.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
        c = mem.alloc((12, 16), np.int32)
        run_ws(
            mem,
            A=a.addr,
            B=b.addr,
            C=c.addr,
            pad_I=4,  # 16 - 12 rows
            stride_A=16,
            stride_B=16,
            stride_C=16,
        )
        expected = a.array.astype(np.int32) @ b.array.astype(np.int32)
        assert (c.array == expected).all()

    def test_padded_inner_dimension(self):
        mem = Memory()
        rng = np.random.default_rng(3)
        a = mem.place(rng.integers(-4, 4, (16, 8), dtype=np.int8))
        b = mem.place(rng.integers(-4, 4, (8, 16), dtype=np.int8))
        c = mem.alloc((16, 16), np.int32)
        run_ws(
            mem,
            A=a.addr,
            B=b.addr,
            C=c.addr,
            pad_K=8,
            stride_A=8,
            stride_B=16,
            stride_C=16,
        )
        expected = a.array.astype(np.int32) @ b.array.astype(np.int32)
        assert (c.array == expected).all()
