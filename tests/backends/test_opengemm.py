"""Tests for the OpenGeMM target description."""

import numpy as np
import pytest

from repro.backends import CSR_FIELDS, OPENGEMM
from repro.backends.opengemm import MESH, PIPELINE_LATENCY
from repro.isa import InstrCategory
from repro.sim import Memory


class TestInterface:
    def test_peak_performance(self):
        assert OPENGEMM.peak_ops_per_cycle == 1024

    def test_concurrent_configuration(self):
        assert OPENGEMM.concurrent_config

    def test_snitch_host_ipc(self):
        assert OPENGEMM.host_cycles_per_instr == 1.0
        assert OPENGEMM.host_cost_model().cycles_per_instr == 1.0

    def test_one_csrw_per_field(self):
        instrs = OPENGEMM.setup_instrs(["M", "K", "ptr_A"])
        assert len(instrs) == 3
        assert all(i.category is InstrCategory.SETUP for i in instrs)
        assert all(i.config_bytes == 4 for i in instrs)

    def test_streamer_fields_present(self):
        names = {f.name for f in CSR_FIELDS}
        for operand in "ABC":
            assert f"tbound0_{operand}" in names
            assert f"sstride_{operand}" in names

    def test_launch_and_sync_costs(self):
        assert len(OPENGEMM.launch_instrs()) == 2
        assert len(OPENGEMM.sync_instrs()) == 6

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            OPENGEMM.setup_instrs(["no_such_csr"])


class TestTiming:
    def test_tile_cycles(self):
        cycles = OPENGEMM.compute_cycles({"M": 8, "K": 64, "N": 8})
        assert cycles == 64 / MESH + PIPELINE_LATENCY

    def test_larger_tiles_scale(self):
        one = OPENGEMM.compute_cycles({"M": 8, "K": 64, "N": 8})
        four = OPENGEMM.compute_cycles({"M": 16, "K": 64, "N": 16})
        assert four - PIPELINE_LATENCY == pytest.approx(
            4 * (one - PIPELINE_LATENCY)
        )

    def test_ops(self):
        assert OPENGEMM.launch_ops({"M": 8, "K": 32, "N": 8}) == 2 * 8 * 32 * 8

    def test_peak_achievable_asymptotically(self):
        config = {"M": 8, "K": 2**16, "N": 8}
        ratio = OPENGEMM.launch_ops(config) / OPENGEMM.compute_cycles(config)
        assert ratio == pytest.approx(1024, rel=0.01)


class TestFunctionalSemantics:
    def test_basic_tile(self):
        mem = Memory()
        rng = np.random.default_rng(1)
        a = mem.place(rng.integers(-4, 4, (8, 16), dtype=np.int8))
        b = mem.place(rng.integers(-4, 4, (16, 8), dtype=np.int8))
        c = mem.alloc((8, 8), np.int32)
        OPENGEMM.execute(
            {
                "M": 8,
                "K": 16,
                "N": 8,
                "ptr_A": a.addr,
                "ptr_B": b.addr,
                "ptr_C": c.addr,
                "stride_A": 16,
                "stride_B": 8,
                "stride_C": 8,
            },
            mem,
        )
        expected = a.array.astype(np.int32) @ b.array.astype(np.int32)
        assert (c.array == expected).all()

    def test_zero_points(self):
        mem = Memory()
        a = mem.place(np.full((8, 8), 3, dtype=np.int8))
        b = mem.place(np.full((8, 8), 5, dtype=np.int8))
        c = mem.alloc((8, 8), np.int32)
        OPENGEMM.execute(
            {
                "M": 8,
                "K": 8,
                "N": 8,
                "ptr_A": a.addr,
                "ptr_B": b.addr,
                "ptr_C": c.addr,
                "stride_A": 8,
                "stride_B": 8,
                "stride_C": 8,
                "subtractions": (4 << 8) | 2,  # a_zp=2, b_zp=4
            },
            mem,
        )
        assert (c.array == (3 - 2) * (5 - 4) * 8).all()
