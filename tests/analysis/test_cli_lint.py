"""The ``python -m repro lint`` subcommand."""

import pytest

from repro.__main__ import main

UNAWAITED_LOOP = """builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    scf.for %i = %c0 to %c4 step %c1 {
      %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      scf.yield
    }
    func.return
  }
}
"""

DOUBLE_AWAIT = """builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    accfg.await %t
    func.return
  }
}
"""

CLEAN = """builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""


@pytest.fixture
def mlir_file(tmp_path):
    def write(text, name="program.mlir"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestLintCommand:
    def test_clean_module_exits_zero(self, mlir_file, capsys):
        assert main(["lint", mlir_file(CLEAN)]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_warning_exits_zero_without_werror(self, mlir_file, capsys):
        assert main(["lint", mlir_file(UNAWAITED_LOOP)]) == 0
        assert "warning[ACCFG001]" in capsys.readouterr().out

    def test_werror_turns_warning_into_failure(self, mlir_file, capsys):
        # The acceptance scenario: an unawaited launch inside a loop must
        # fail under --werror, printing the code, the offending line, and
        # a fix-it note.
        path = mlir_file(UNAWAITED_LOOP, "unawaited.mlir")
        assert main(["lint", "--werror", path]) == 1
        out = capsys.readouterr().out
        assert "warning[ACCFG001]" in out
        assert "fire-and-forget inside a loop" in out
        assert f"--> {path}:8:7" in out  # the launch's own line and column
        assert "accfg.launch" in out  # IR excerpt
        assert "= note: fix: insert `accfg.await`" in out

    def test_errors_exit_nonzero_without_werror(self, mlir_file, capsys):
        assert main(["lint", mlir_file(DOUBLE_AWAIT)]) == 1
        assert "error[ACCFG002]" in capsys.readouterr().out

    def test_filter_restricts_codes(self, mlir_file, capsys):
        path = mlir_file(DOUBLE_AWAIT)
        assert main(["lint", "--filter", "ACCFG001", path]) == 0
        out = capsys.readouterr().out
        assert "ACCFG002" not in out
        assert "1 check(s)" in out

    def test_filter_unknown_code_exits_two(self, mlir_file, capsys):
        assert main(["lint", "--filter", "ACCFG999", mlir_file(CLEAN)]) == 2
        assert "ACCFG999" in capsys.readouterr().err

    def test_pipeline_before_linting(self, mlir_file, capsys):
        # `overlap` threads the state through the loop without dedup, which
        # exposes the redundant per-iteration rewrite of "n"; `full` dedups
        # it away.  Raw IR has no SSA state chain, so neither code fires.
        redundant = """builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    scf.for %i = %c0 to %c4 step %c1 {
      %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
"""
        path = mlir_file(redundant)
        main(["lint", "--filter", "ACCFG007", "--pipeline", "overlap", path])
        assert "ACCFG007" in capsys.readouterr().out
        main(["lint", "--filter", "ACCFG007", "--pipeline", "full", path])
        assert "ACCFG007" not in capsys.readouterr().out

    def test_stdin_reads_dash(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(CLEAN))
        assert main(["lint", "-"]) == 0

    def test_loop_depth_is_reported_for_nested_ops(self, mlir_file, capsys):
        assert main(["lint", mlir_file(UNAWAITED_LOOP)]) == 0
        assert "(at loop depth 1)" in capsys.readouterr().out


class TestLintJson:
    def test_json_is_machine_readable(self, mlir_file, capsys):
        import json

        path = mlir_file(UNAWAITED_LOOP, "unawaited.mlir")
        assert main(["lint", "--json", path]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 0 and report["warnings"] >= 1
        codes = {d["code"] for d in report["diagnostics"]}
        assert "ACCFG001" in codes
        diag = next(
            d for d in report["diagnostics"] if d["code"] == "ACCFG001"
        )
        assert diag["severity"] == "warning"
        assert diag["loc"].startswith(f"{path}:")
        assert "accfg.launch" in diag["excerpt"]
        # The fix-it rides along as a dedicated field, not just a note.
        assert diag["fixit"] and "accfg.await" in diag["fixit"]

    def test_json_clean_module(self, mlir_file, capsys):
        import json

        assert main(["lint", "--json", mlir_file(CLEAN)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["diagnostics"] == []
        assert report["errors"] == report["warnings"] == 0
        assert report["checks"] > 10

    def test_json_respects_werror_exit_code(self, mlir_file, capsys):
        import json

        assert main(["lint", "--json", "--werror", mlir_file(UNAWAITED_LOOP)]) == 1
        assert json.loads(capsys.readouterr().out)["warnings"] >= 1


class TestCostCommand:
    def test_cost_prints_summary_table(self, mlir_file, capsys):
        assert main(["cost", mlir_file(CLEAN)]) == 0
        out = capsys.readouterr().out
        assert "@main" in out
        assert "toyvec" in out

    def test_cost_after_pipeline(self, mlir_file, capsys):
        assert main(["cost", "--pipeline", "full", mlir_file(CLEAN)]) == 0
        assert "@main" in capsys.readouterr().out
