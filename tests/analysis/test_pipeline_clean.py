"""Optimization pipelines must not *introduce* configuration hazards.

A hypothesis property drives random accfg programs through the ``full``
pipeline and asserts no error-severity diagnostics appear, plus direct
tests for the ``PassManager(lint=True)`` gate and the ``accfg-lint`` pass.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "properties"))

from program_gen import build, programs  # noqa: E402

from repro.analysis import Severity, run_lints  # noqa: E402
from repro.dialects import accfg  # noqa: E402
from repro.ir import parse_module  # noqa: E402
from repro.passes import (  # noqa: E402
    LintPass,
    ModulePass,
    PassManager,
    pipeline_by_name,
)

RELAXED = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def error_diags(module):
    return [d for d in run_lints(module) if d.severity is Severity.ERROR]


@RELAXED
@given(programs())
def test_full_pipeline_never_introduces_errors(program):
    built = build(program)
    before = {d.code for d in error_diags(built.module)}
    assert not before, "generated programs must start hazard-free"
    pipeline_by_name("full").run(built.module)
    assert error_diags(built.module) == []


@RELAXED
@given(programs())
def test_overlap_pipeline_never_introduces_errors(program):
    built = build(program)
    pipeline_by_name("overlap").run(built.module)
    assert error_diags(built.module) == []


CLEAN = """builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""

DOUBLE_AWAIT = CLEAN.replace(
    "accfg.await %t\n", "accfg.await %t\n    accfg.await %t\n"
)


class DuplicateAwaitsPass(ModulePass):
    """A deliberately broken pass: clones every await (a real hazard)."""

    name = "test-duplicate-awaits"

    def apply(self, module):
        for op in list(module.walk()):
            if isinstance(op, accfg.AwaitOp):
                clone = op.clone({op.token: op.token})
                op.parent.insert_op_after(op, clone)


class TestPassManagerLintGate:
    def test_bad_pass_fails_the_pipeline(self):
        module = parse_module(CLEAN)
        manager = PassManager([DuplicateAwaitsPass()], lint=True)
        with pytest.raises(RuntimeError, match=r"introduced lint errors.*ACCFG002"):
            manager.run(module)

    def test_clean_pipeline_passes_the_gate(self):
        module = parse_module(CLEAN)
        PassManager(list(pipeline_by_name("full").passes), lint=True).run(module)

    def test_preexisting_errors_are_not_blamed_on_the_pipeline(self):
        # The gate only fires on diagnostics the pipeline *introduced*.
        module = parse_module(DOUBLE_AWAIT)
        PassManager([], lint=True).run(module)


class TestLintPass:
    def test_raises_on_error_diagnostics(self):
        pass_ = LintPass()
        with pytest.raises(RuntimeError, match="ACCFG002"):
            pass_.apply(parse_module(DOUBLE_AWAIT))
        assert any(d.code == "ACCFG002" for d in pass_.diagnostics)

    def test_records_warnings_without_raising(self):
        unawaited = CLEAN.replace("    accfg.await %t\n", "")
        pass_ = LintPass()
        pass_.apply(parse_module(unawaited))
        assert any(d.code == "ACCFG001" for d in pass_.diagnostics)

    def test_registered_in_pipeline_registry(self):
        manager = PassManager.from_pipeline("accfg-lint")
        assert isinstance(manager.passes[0], LintPass)
