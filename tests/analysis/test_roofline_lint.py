"""ACCFG010 — the static configuration-roofline lint.

The key acceptance case: the lint reproduces the paper's Example 4.6
verdict (a tiny-tile Gemmini matmul is configuration-bound) from static IR
alone, without simulating anything.
"""

from repro.analysis import Severity, run_lints
from repro.analysis.roofline_lint import static_launch_config
from repro.dialects import accfg
from repro.ir import parse_module
from repro.workloads.matmul import build_gemmini_matmul


def roofline_diags(module):
    return [d for d in run_lints(module, codes={"ACCFG010"})]


TINY_VECTOR_LOOP = """builtin.module {
  func.func @main() -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c64 = arith.constant 64 : index
    %ptr = arith.constant 4096 : i64
    %n = arith.constant 8 : i32
    scf.for %i = %c0 to %c64 step %c1 {
      %s = accfg.setup on "toyvec" ("ptr_x" = %ptr : i64, "ptr_y" = %ptr : i64, "ptr_out" = %ptr : i64, "n" = %n : i32) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
"""


class TestToyvecRoofline:
    def test_tiny_constant_vectors_are_config_bound(self):
        diags = roofline_diags(parse_module(TINY_VECTOR_LOOP))
        assert len(diags) == 1
        diag = diags[0]
        assert diag.severity is Severity.WARNING
        assert "configuration-bound on 'toyvec'" in diag.message
        assert "ridge point" in diag.message
        # The warning anchors on the loop, and the notes carry the static
        # per-iteration accounting plus the fix-it.
        assert diag.op.name == "scf.for"
        assert any("datapath ops against" in note for note in diags[0].notes)
        assert any("--pipeline dedup" in note for note in diags[0].notes)

    def test_large_constant_vectors_are_not_flagged(self):
        big = TINY_VECTOR_LOOP.replace("8 : i32", "1000000 : i32")
        assert roofline_diags(parse_module(big)) == []

    def test_runtime_sized_vector_is_indeterminate(self):
        # "n" comes from a function argument: the static op count is
        # unknown, so the lint must stay silent rather than guess.
        runtime = """builtin.module {
  func.func @main(%n : i32) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c64 = arith.constant 64 : index
    scf.for %i = %c0 to %c64 step %c1 {
      %s = accfg.setup on "toyvec" ("n" = %n : i32) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
"""
        assert roofline_diags(parse_module(runtime)) == []


GEMMINI_LOOP_WS = """builtin.module {
  func.func @main() -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    %addr = arith.constant 4096 : i64
    %tiles = arith.constant 4 : i64
    scf.for %i = %c0 to %c4 step %c1 {
      %s = accfg.setup on "gemmini" ("A" = %addr : i64, "B" = %addr : i64, "D" = %addr : i64, "C" = %addr : i64, "I" = %tiles : i64, "J" = %tiles : i64, "K" = %tiles : i64) : !accfg.state<"gemmini">
      %t = accfg.launch %s : !accfg.token<"gemmini">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
"""


class TestGemminiRoofline:
    def test_example_4_6_verdict_from_static_ir(self):
        # The fine-grained (per-tile mvin/preload/compute/mvout) Gemmini
        # matmul of Example 4.6: every launch moves or computes one fixed
        # 16x16 tile, so the static I_OC is fully determined and lands left
        # of the configuration ridge point.
        module = build_gemmini_matmul(64).module
        diags = roofline_diags(module)
        assert diags, "tiny-tile Gemmini matmul must be flagged config-bound"
        assert any(
            "configuration-bound on 'gemmini'" in d.message for d in diags
        )

    def test_coarse_loop_ws_with_big_tiles_is_not_flagged(self):
        # One loop_ws launch with I=J=K=4 does 2*(4*16)^3 MACs against a
        # handful of configuration bytes: far right of the ridge point.
        assert roofline_diags(parse_module(GEMMINI_LOOP_WS)) == []


class TestStaticLaunchConfig:
    def test_folds_constants_through_the_setup_chain(self):
        module = parse_module("""builtin.module {
  func.func @main(%rt : i32) -> () {
    %n0 = arith.constant 8 : i32
    %n1 = arith.constant 16 : i32
    %s0 = accfg.setup on "toyvec" ("n" = %n0 : i32, "op" = %rt : i32) : !accfg.state<"toyvec">
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %n1 : i32) : !accfg.state<"toyvec">
    %t = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
""")
        launch = next(op for op in module.walk() if isinstance(op, accfg.LaunchOp))
        config = static_launch_config(launch)
        assert config["n"] == 16  # later setup wins
        assert "op" not in config  # runtime value stays absent
