"""The static configuration-cost engine (repro.analysis.cost).

The acceptance backbone: the symbolic prediction must *equal* what the
co-simulator charges on every program with concrete trip counts — pinned
here for the paper's Example 4.6 (``build_gemmini_matmul(64)``) and the
fig12 roofline workloads (``build_opengemm_matmul(32/128)``) — and *bound*
it on programs with parameters or branches.
"""

import pytest

from repro.analysis import AnalysisManager
from repro.analysis.cost import (
    CostAnalysis,
    CostRange,
    SymExpr,
    compare_with_simulation,
    format_cost_table,
)
from repro.interp.interpreter import Interpreter
from repro.ir import parse_module
from repro.isa.instructions import InstrCategory
from repro.sim.cosim import CoSimulator
from repro.workloads.matmul import build_gemmini_matmul, build_opengemm_matmul


# ---------------------------------------------------------------------------
# Symbolic domain
# ---------------------------------------------------------------------------


class TestSymExpr:
    def test_constant_arithmetic(self):
        five = SymExpr.const(2) + SymExpr.const(3)
        assert five.constant_value() == 5
        assert (five * SymExpr.const(4)).constant_value() == 20
        assert SymExpr.const(0).is_zero

    def test_polynomial_product(self):
        n = SymExpr.param("n")
        m = SymExpr.param("m")
        poly = (n + SymExpr.const(2)) * m  # n*m + 2m
        assert poly.evaluate({"n": 3, "m": 4}) == 20
        assert poly.parameters() == {"n", "m"}
        assert poly.constant_value() is None

    def test_str_is_readable(self):
        n = SymExpr.param("n")
        assert str(n * n + n.scaled(2) + SymExpr.const(1)) == "1 + 2*n + n*n"

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            SymExpr.const(-1)


class TestCostRange:
    def test_exact_addition_stays_exact(self):
        total = CostRange.exact(2) + CostRange.exact(3)
        assert total.is_exact
        assert total.lo.constant_value() == 5

    def test_join_is_interval_hull(self):
        hull = CostRange.exact(2).join(CostRange.exact(7))
        lo, hi = hull.evaluate({})
        assert (lo, hi) == (2, 7)
        assert not hull.is_exact

    def test_times_with_unbounded_side(self):
        unbounded = CostRange(SymExpr.const(0), None)
        product = unbounded.times(CostRange.exact(3))
        assert product.hi is None
        # ... except multiplying an unknown trip count by a free body.
        assert unbounded.times(CostRange.exact(0)).is_zero

    def test_substitute_parameter_with_interval(self):
        cost = CostRange.exact(SymExpr.param("arg0") * SymExpr.const(4))
        widened = cost.substitute({"arg0": CostRange(SymExpr.const(1), None)})
        assert widened.lo.constant_value() == 4
        assert widened.hi is None
        pinned = cost.substitute({"arg0": CostRange.exact(5)})
        assert pinned.is_exact and pinned.lo.constant_value() == 20

    def test_join_bounds_both_alternatives_symbolically(self):
        n = SymExpr.param("n")
        a = CostRange.exact(n.scaled(2))           # 2n
        b = CostRange.exact(n + SymExpr.const(5))  # n + 5
        hull = a.join(b)
        for value in (0, 1, 4, 10):
            lo, hi = hull.evaluate({"n": value})
            assert lo <= min(2 * value, value + 5)
            assert hi >= max(2 * value, value + 5)


# ---------------------------------------------------------------------------
# Trip counts
# ---------------------------------------------------------------------------


def _main_summary(text):
    module = parse_module(text)
    return module, CostAnalysis(module).summary("main")


LOOP_TEMPLATE = """builtin.module {{
  func.func @main({args}) -> () {{
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %lb = arith.constant {lb} : index
    %ub = arith.constant {ub} : index
    %step = arith.constant {step} : index
    %n = arith.constant 8 : i64
    scf.for %i = {frm} to {to} step {by} {{
      %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
      scf.yield
    }}
    func.return
  }}
}}
"""


def _setup_count(summary):
    return summary.total.instrs[("toyvec", InstrCategory.SETUP)]


class TestTripCounts:
    @pytest.mark.parametrize(
        "lb,ub,step,expected",
        [(0, 10, 1, 10), (0, 10, 3, 4), (2, 10, 2, 4), (10, 2, 1, 0)],
    )
    def test_constant_bounds_are_exact(self, lb, ub, step, expected):
        _, summary = _main_summary(
            LOOP_TEMPLATE.format(
                args="", lb=lb, ub=ub, step=step,
                frm="%lb", to="%ub", by="%step",
            )
        )
        count = _setup_count(summary) if expected else summary.total.instrs.get(
            ("toyvec", InstrCategory.SETUP)
        )
        if expected:
            assert count.is_exact
            assert count.lo.constant_value() == expected
        else:
            assert count is None  # zero-trip loop contributes nothing

    def test_argument_bound_is_an_exact_parameter(self):
        _, summary = _main_summary(
            LOOP_TEMPLATE.format(
                args="%m : index", lb=0, ub=1, step=1,
                frm="%c0", to="%m", by="%c1",
            )
        )
        count = _setup_count(summary)
        assert count.is_exact
        assert str(count.lo) == "arg0"

    def test_opaque_bound_widens_to_unbounded(self):
        _, summary = _main_summary(
            LOOP_TEMPLATE.format(
                args="%m : index", lb=0, ub=1, step=1,
                frm="%c1", to="%m", by="%c1",  # lb != 0: not the exact shape
            )
        )
        count = _setup_count(summary)
        assert count.hi is None
        assert count.lo.constant_value() == 0


# ---------------------------------------------------------------------------
# Predicted == simulated, pinned on the paper's workloads
# ---------------------------------------------------------------------------


def _run(workload, args):
    sim = CoSimulator(memory=workload.memory)
    Interpreter(workload.module, sim).run("main", args)
    return sim


class TestPinnedExactCosts:
    def test_example_4_6_gemmini_matmul(self):
        # Example 4.6: the fine-grained 64x64 Gemmini matmul.  The summary
        # is fully exact and matches the simulator to the instruction.
        workload = build_gemmini_matmul(64)
        summary = CostAnalysis(workload.module).summary("main")
        assert summary.is_modeled and summary.total.is_exact
        assert summary.config_instrs().lo.constant_value() == 431
        assert (
            summary.total.config_bytes["gemmini"].lo.constant_value() == 2896
        )
        assert summary.total.launches["gemmini"].lo.constant_value() == 176
        assert summary.total.ops["gemmini"].lo.constant_value() == 524288
        sim = _run(workload, [0])
        assert compare_with_simulation(workload.module, sim, [0]) == []

    @pytest.mark.parametrize(
        "size,config_instrs,config_bytes,launches",
        [(32, 432, 1664, 16), (128, 6912, 26624, 256)],
    )
    def test_fig12_opengemm_workloads(
        self, size, config_instrs, config_bytes, launches
    ):
        workload = build_opengemm_matmul(size)
        summary = CostAnalysis(workload.module).summary("main")
        assert summary.is_modeled and summary.total.is_exact
        assert summary.config_instrs().lo.constant_value() == config_instrs
        assert (
            summary.total.config_bytes["opengemm"].lo.constant_value()
            == config_bytes
        )
        assert summary.total.launches["opengemm"].lo.constant_value() == launches
        sim = _run(workload, [])
        assert compare_with_simulation(workload.module, sim, []) == []

    def test_optimized_pipelines_stay_exact(self):
        # The engine is not tied to the unoptimized idiom: after dedup or
        # the full pipeline rewrites the configuration stream, prediction
        # and measurement still agree exactly.
        from repro.passes import pipeline_by_name

        for pipeline in ("dedup", "full"):
            workload = build_opengemm_matmul(32)
            pipeline_by_name(pipeline).run(workload.module)
            sim = _run(workload, [])
            assert (
                compare_with_simulation(workload.module, sim, []) == []
            ), pipeline


MISMATCH_PROBE = """builtin.module {
  func.func @main() -> () {
    %n = arith.constant 8 : i64
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    func.return
  }
}
"""


class TestOracleSensitivity:
    def test_detects_a_drifting_model(self):
        # Feed the checker a simulation of a *different* program: every
        # mismatch class (instrs, bytes) must be reported, proving the
        # oracle cannot silently pass on drift.
        module = parse_module(MISMATCH_PROBE)
        other = parse_module(
            MISMATCH_PROBE.replace(
                '"n" = %n : i64', '"n" = %n : i64, "op" = %n : i64'
            )
        )
        sim = CoSimulator()
        Interpreter(other, sim).run("main", [])
        problems = compare_with_simulation(module, sim, [])
        assert problems
        assert any("config bytes" in p for p in problems)

    def test_branch_interval_bounds_both_arms(self):
        text = """builtin.module {
  func.func @main(%cond : i1) -> () {
    %n = arith.constant 8 : i64
    scf.if %cond {
      %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    }
    func.return
  }
}
"""
        for cond in (0, 1):
            module = parse_module(text)
            sim = CoSimulator()
            Interpreter(module, sim).run("main", [cond])
            assert compare_with_simulation(module, sim, [cond]) == []


# ---------------------------------------------------------------------------
# Caching, unmodeled ops, and the report
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_analysis_manager_caches_per_module(self):
        module = build_opengemm_matmul(32).module
        manager = AnalysisManager()
        first = manager.cost(module)
        assert manager.cost(module) is first
        manager.invalidate([module])
        assert manager.cost(module) is not first

    def test_unknown_accelerator_is_unmodeled_not_wrong(self):
        module = parse_module(
            MISMATCH_PROBE.replace('"toyvec"', '"mystery9000"')
        )
        summary = CostAnalysis(module).summary("main")
        assert not summary.is_modeled
        # The oracle makes no claim: an empty report, not a false alarm.
        sim = CoSimulator()
        assert compare_with_simulation(module, sim, []) == []

    def test_format_cost_table_flags_config_bound(self):
        table = format_cost_table(
            CostAnalysis(build_opengemm_matmul(32).module)
        )
        assert "@main" in table
        assert "opengemm" in table
        assert "CONFIG-BOUND" in table
