"""The shipped examples are diagnostic-clean.

Every example's generated IR goes through the full lint suite.  Errors are
forbidden everywhere; the expected warnings are pinned explicitly (and must
actually appear — a silently vanishing warning is also a regression):

* ``quickstart`` deliberately drives a *tiny* vector workload in a loop, so
  the configuration-roofline lint (ACCFG010) fires by design — that is the
  example's whole point.
* The MLP's small layers are likewise configuration-bound pre-optimization
  (the paper's motivating scenario), so ACCFG010 is expected there too.
* Every example written in the *unoptimized* idiom — setup/launch/await
  inside a loop on a concurrent-config accelerator — serializes each
  iteration's configuration behind the previous iteration's compute, so
  the overlap-opportunity lint (ACCFG014) fires by design: these examples
  exist to demonstrate what the optimization pipeline removes.
* Examples written directly in the *optimized* idiom — one hoisted setup
  feeding many launches — rely on the device retaining configuration across
  launch boundaries, which the retention-hazard lint (ACCFG011) flags by
  design: that reliance is the paper's optimization asset and the faults
  subsystem's resilience hazard.
"""

import contextlib
import io
import sys
from pathlib import Path

import pytest

from repro.analysis import Severity, run_lints
from repro.ir import parse_module
from repro.passes import ConvertLinalgToAccfgPass
from repro.workloads import build_opengemm_matmul
from repro.workloads.network import build_mlp

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"


@pytest.fixture(scope="module", autouse=True)
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES))
    yield
    sys.path.remove(str(EXAMPLES))


def import_example(name):
    """Import an example script, swallowing its demo output."""
    with contextlib.redirect_stdout(io.StringIO()):
        return __import__(name)


def assert_lint_profile(module, expected_codes):
    diags = run_lints(module)
    assert not [d for d in diags if d.severity is Severity.ERROR], (
        "examples must never ship error-severity hazards:\n"
        + "\n".join(d.format() for d in diags)
    )
    assert {d.code for d in diags} == expected_codes


class TestExamplesAreClean:
    def test_quickstart(self):
        quickstart = import_example("quickstart")
        assert_lint_profile(
            parse_module(quickstart.PROGRAM), {"ACCFG010", "ACCFG014"}
        )

    def test_linalg_pipeline(self):
        linalg_pipeline = import_example("linalg_pipeline")
        assert_lint_profile(parse_module(linalg_pipeline.SOURCE), set())

    def test_multi_accelerator(self):
        example = import_example("multi_accelerator")
        assert_lint_profile(example.module, {"ACCFG011"})

    def test_custom_accelerator(self):
        example = import_example("custom_accelerator")
        assert_lint_profile(example.module, {"ACCFG014"})

    def test_opengemm_tiled_matmul(self):
        example = import_example("opengemm_tiled_matmul")
        assert_lint_profile(example.workload.module, {"ACCFG011"})

    def test_mlp_inference_ir(self):
        # mlp_inference.py runs four co-simulations on import; lint the
        # same IR it builds instead of importing the script.
        workload = build_mlp([32, 64, 64, 32, 8], batch=16, seed=11)
        ConvertLinalgToAccfgPass().apply(workload.module)
        assert_lint_profile(workload.module, {"ACCFG010", "ACCFG014"})

    def test_timeline_visualization_ir(self):
        # timeline_visualization.py renders the build_opengemm_matmul(16)
        # workload; lint that IR directly.  A 16x16 matmul pays more for
        # configuration than for compute — being configuration-bound is
        # what makes it a good timeline demo, so ACCFG010 is expected.
        assert_lint_profile(
            build_opengemm_matmul(16).module, {"ACCFG010", "ACCFG014"}
        )
