"""Tests for the cross-pass analysis cache (repro.analysis.manager)."""

from repro.analysis.manager import AnalysisManager
from repro.ir import parse_module
from repro.passes import ModulePass, PassManager

TWO_FUNCTIONS = """
func.func @first(%x : i64) -> () {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  func.return
}
func.func @second(%x : i64) -> () {
  %n = arith.constant 8 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  func.return
}
"""


def functions(module):
    return [op for op in module.body_block.ops if op.name == "func.func"]


def setup_module():
    module = parse_module(TWO_FUNCTIONS)
    return module, functions(module)


class TestCaching:
    def test_same_scope_shares_one_instance(self):
        module, (first, _) = setup_module()
        manager = AnalysisManager()
        a = manager.awaited_tokens(first)
        b = manager.awaited_tokens(first)
        assert a is b
        assert (manager.hits, manager.misses) == (1, 1)

    def test_distinct_scopes_get_distinct_instances(self):
        module, (first, second) = setup_module()
        manager = AnalysisManager()
        assert manager.awaited_tokens(first) is not manager.awaited_tokens(second)
        assert manager.misses == 2

    def test_kind_is_part_of_the_key(self):
        module, (first, _) = setup_module()
        manager = AnalysisManager()
        manager.awaited_tokens(first)
        manager.observed_fields(first)
        manager.known_fields(first, "toyvec")
        manager.known_fields(first, "gemmini")
        assert len(manager) == 4
        assert manager.misses == 4


class TestInvalidation:
    def test_invalidate_all(self):
        module, (first, second) = setup_module()
        manager = AnalysisManager()
        manager.awaited_tokens(first)
        manager.awaited_tokens(second)
        manager.invalidate()
        assert len(manager) == 0
        manager.awaited_tokens(first)
        assert manager.misses == 3  # rebuilt, not served stale

    def test_scoped_invalidation_keeps_unrelated_functions(self):
        module, (first, second) = setup_module()
        manager = AnalysisManager()
        kept = manager.awaited_tokens(second)
        manager.awaited_tokens(first)
        manager.invalidate([first])
        # first's entry is gone; second's survives untouched.
        assert manager.awaited_tokens(second) is kept
        manager.awaited_tokens(first)
        assert manager.misses == 3

    def test_mutating_a_function_kills_module_scoped_entries(self):
        module, (first, _) = setup_module()
        manager = AnalysisManager()
        whole = manager.observed_fields(module)
        manager.invalidate([first])
        assert manager.observed_fields(module) is not whole

    def test_mutating_the_module_kills_function_scoped_entries(self):
        module, (first, _) = setup_module()
        manager = AnalysisManager()
        entry = manager.awaited_tokens(first)
        manager.invalidate([module])
        assert manager.awaited_tokens(first) is not entry

    def test_empty_mutation_set_is_a_no_op(self):
        module, (first, _) = setup_module()
        manager = AnalysisManager()
        entry = manager.awaited_tokens(first)
        manager.invalidate([])
        assert manager.awaited_tokens(first) is entry

    def test_detached_mutation_invalidates_everything(self):
        # A mutated op that has been detached from the IR can no longer be
        # attributed to any cached scope by ancestry, so the manager must
        # fall back to full invalidation rather than keep stale entries.
        module, (first, second) = setup_module()
        manager = AnalysisManager()
        kept = manager.awaited_tokens(second)
        detached = first.body.ops[0].detach()
        manager.invalidate([detached])
        assert len(manager) == 0
        assert manager.awaited_tokens(second) is not kept

    def test_detached_scope_root_still_matches_itself(self):
        # Detaching a cached scope op itself stays scope-granular: the op is
        # a known scope, so only its own entries (and enclosing ones) die.
        module, (first, second) = setup_module()
        manager = AnalysisManager()
        kept = manager.awaited_tokens(second)
        manager.awaited_tokens(first)
        first.detach()
        manager.invalidate([first])
        assert manager.awaited_tokens(second) is kept


class _RecordingPass(ModulePass):
    """A modern pass that reports a caller-chosen change set."""

    name = "recording"

    def __init__(self, change_report):
        self.change_report = change_report
        self.saw_analyses = None

    def apply(self, module, analyses=None):
        self.saw_analyses = analyses
        return self.change_report


class TestPassManagerIntegration:
    def test_clean_pass_preserves_the_cache(self):
        module, (first, _) = setup_module()
        pm = PassManager([_RecordingPass(False)])
        entry = pm.analyses.awaited_tokens(first)
        pm.run(module)
        assert pm.analyses.awaited_tokens(first) is entry

    def test_rewriting_pass_invalidates_its_function_only(self):
        module, (first, second) = setup_module()
        rewriter = _RecordingPass([first])
        pm = PassManager([rewriter])
        stale = pm.analyses.awaited_tokens(first)
        kept = pm.analyses.awaited_tokens(second)
        pm.run(module)
        assert rewriter.saw_analyses is pm.analyses
        assert pm.analyses.awaited_tokens(first) is not stale
        assert pm.analyses.awaited_tokens(second) is kept

    def test_legacy_pass_invalidates_everything(self):
        module, (first, _) = setup_module()

        class Legacy(ModulePass):
            name = "legacy"

            def apply(self, module):
                return None

        pm = PassManager([Legacy()])
        entry = pm.analyses.awaited_tokens(first)
        pm.run(module)
        assert pm.analyses.awaited_tokens(first) is not entry
