"""Positive and negative coverage for every lint code ACCFG001..ACCFG009.

(ACCFG010, the configuration-roofline lint, has its own module:
``test_roofline_lint.py``.)
"""

import pytest

from repro.analysis import Severity, run_lints
from repro.ir import parse_module
from repro.passes import state_linearity_diagnostics


def lint_codes(text, **kwargs):
    diags = run_lints(parse_module(text), **kwargs)
    return {d.code for d in diags}, diags


CLEAN = """builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""


class TestCleanProgram:
    def test_no_diagnostics_at_all(self):
        codes, _ = lint_codes(CLEAN)
        assert codes == set()


class TestLaunchNeverAwaited:
    def test_positive(self):
        codes, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    func.return
  }
}
""")
        assert "ACCFG001" in codes
        diag = next(d for d in diags if d.code == "ACCFG001")
        assert diag.severity is Severity.WARNING
        assert any("accfg.await" in note for note in diag.notes)

    def test_negative_await_in_other_branch_via_yield(self):
        # Token flows out of an scf.if; the await outside consumes it.
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64, %c : i1) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
""")
        assert "ACCFG001" not in codes


class TestDoubleAwait:
    def test_positive_straight_line(self):
        codes, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    accfg.await %t
    func.return
  }
}
""")
        assert "ACCFG002" in codes
        assert next(d for d in diags if d.code == "ACCFG002").severity is Severity.ERROR

    def test_positive_loop_reawaits_outer_token(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    scf.for %i = %c0 to %c4 step %c1 {
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
""")
        assert "ACCFG002" in codes

    def test_negative_awaits_in_disjoint_branches(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64, %c : i1) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    scf.if %c {
      accfg.await %t
      scf.yield
    } else {
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
""")
        assert "ACCFG002" not in codes

    def test_negative_fresh_token_every_iteration(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    scf.for %i = %c0 to %c4 step %c1 {
      %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
""")
        assert "ACCFG002" not in codes


class TestUseAfterReset:
    def test_positive(self):
        codes, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    accfg.reset %s
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
""")
        assert "ACCFG003" in codes
        assert next(d for d in diags if d.code == "ACCFG003").severity is Severity.ERROR

    def test_negative_reset_last(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    accfg.reset %s
    func.return
  }
}
""")
        assert "ACCFG003" not in codes


FORKED = """builtin.module {
  func.func @main(%n : i64, %m : i64) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %m : i64) : !accfg.state<"toyvec">
    %s2 = accfg.setup on "toyvec" from %s0 ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s2 : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""

SUPERSEDED = """builtin.module {
  func.func @main(%n : i64, %m : i64) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %m : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s0 : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""


class TestLinearity:
    def test_forked_chain_positive(self):
        codes, diags = lint_codes(FORKED)
        assert "ACCFG004" in codes
        diag = next(d for d in diags if d.code == "ACCFG004")
        assert diag.severity is Severity.ERROR
        assert "forked" in diag.message

    def test_superseded_launch_positive(self):
        codes, diags = lint_codes(SUPERSEDED)
        assert "ACCFG005" in codes
        assert "superseded state" in next(
            d for d in diags if d.code == "ACCFG005"
        ).message

    def test_linear_chain_negative(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64, %m : i64) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %m : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
""")
        assert "ACCFG004" not in codes and "ACCFG005" not in codes

    def test_consumers_in_disjoint_branches_are_not_a_fork(self):
        # dedup's hoist-into-branches clones a setup into both arms of an
        # scf.if; only one arm runs, so the shared input state is not forked.
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64, %m : i64, %c : i1) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %s = scf.if %c -> (!accfg.state<"toyvec">) {
      %a = accfg.setup on "toyvec" from %s0 ("n" = %m : i64) : !accfg.state<"toyvec">
      scf.yield %a : !accfg.state<"toyvec">
    } else {
      %b = accfg.setup on "toyvec" from %s0 ("op" = %m : i64) : !accfg.state<"toyvec">
      scf.yield %b : !accfg.state<"toyvec">
    }
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
""")
        assert "ACCFG004" not in codes and "ACCFG005" not in codes

    def test_rules_do_not_double_report(self):
        # ACCFG004 and ACCFG005 share one walk; running both rules must not
        # duplicate findings.
        _, diags = lint_codes(FORKED)
        assert len([d for d in diags if d.code == "ACCFG004"]) == 1


class TestDeadSetupField:
    def test_positive_overwritten_before_launch(self):
        codes, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64, %m : i64) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %m : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
""")
        assert "ACCFG006" in codes
        assert "'n'" in next(d for d in diags if d.code == "ACCFG006").message

    def test_positive_state_never_launched(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    func.return
  }
}
""")
        assert "ACCFG006" in codes

    def test_negative_field_observed(self):
        codes, _ = lint_codes(CLEAN)
        assert "ACCFG006" not in codes

    def test_negative_observed_through_loop_carried_state(self):
        # The field is written before the loop and consumed by launches
        # inside it — observed through the iter_args cycle, not dead.
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %sf = scf.for %i = %c0 to %c4 step %c1 iter_args(%st = %s0) -> (!accfg.state<"toyvec">) {
      %t = accfg.launch %st : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield %st : !accfg.state<"toyvec">
    }
    func.return
  }
}
""")
        assert "ACCFG006" not in codes


class TestRedundantSetupField:
    def test_positive_same_value_rewritten(self):
        codes, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t0 = accfg.launch %s0 : !accfg.token<"toyvec">
    accfg.await %t0
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %n : i64) : !accfg.state<"toyvec">
    %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t1
    func.return
  }
}
""")
        assert "ACCFG007" in codes
        diag = next(d for d in diags if d.code == "ACCFG007")
        assert any("dedup" in note for note in diag.notes)

    def test_negative_different_value(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64, %m : i64) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t0 = accfg.launch %s0 : !accfg.token<"toyvec">
    accfg.await %t0
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %m : i64) : !accfg.state<"toyvec">
    %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t1
    func.return
  }
}
""")
        assert "ACCFG007" not in codes


BLACKBOX = """builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    "test.blackbox"(%n) {ANNOTATIONS} : (i64) -> ()
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""


class TestPessimisticClobber:
    def test_positive_unknown_op_between_config_ops(self):
        codes, diags = lint_codes(BLACKBOX.replace("{ANNOTATIONS}", "{}"))
        assert "ACCFG008" in codes
        diag = next(d for d in diags if d.code == "ACCFG008")
        assert "test.blackbox" in diag.message
        assert any("accfg.effects" in note for note in diag.notes)

    def test_negative_effects_annotated(self):
        codes, _ = lint_codes(
            BLACKBOX.replace("{ANNOTATIONS}", '{accfg.effects = "none"}')
        )
        assert "ACCFG008" not in codes

    def test_negative_outside_config_sequence(self):
        # The unknown op runs after every accfg op: nothing to clobber.
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    "test.blackbox"(%n) : (i64) -> ()
    func.return
  }
}
""")
        assert "ACCFG008" not in codes


class TestUnknownAccelerator:
    def test_positive_typo_name(self):
        codes, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "gemini" ("A" = %n : i64) : !accfg.state<"gemini">
    func.return
  }
}
""")
        assert "ACCFG009" in codes
        diag = next(d for d in diags if d.code == "ACCFG009")
        assert "gemini" in diag.message
        assert any("toyvec" in note for note in diag.notes)

    def test_reported_once_per_name(self):
        _, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s0 = accfg.setup on "gemini" ("A" = %n : i64) : !accfg.state<"gemini">
    %s1 = accfg.setup on "gemini" from %s0 ("A" = %n : i64) : !accfg.state<"gemini">
    func.return
  }
}
""")
        assert len([d for d in diags if d.code == "ACCFG009"]) == 1

    def test_negative_registered_name(self):
        codes, _ = lint_codes(CLEAN)
        assert "ACCFG009" not in codes


class TestRunLintsFiltering:
    def test_codes_filter(self):
        module_text = FORKED
        codes, _ = lint_codes(module_text, codes={"ACCFG006"})
        assert "ACCFG004" not in codes

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="ACCFG999"):
            run_lints(parse_module(CLEAN), codes={"ACCFG999"})


class TestLegacyWrapper:
    def test_returns_strings_and_flags_unregistered_names(self):
        module = parse_module("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "gemini" ("A" = %n : i64) : !accfg.state<"gemini">
    func.return
  }
}
""")
        diagnostics = state_linearity_diagnostics(module)
        assert diagnostics and all(isinstance(d, str) for d in diagnostics)
        assert any("not registered" in d for d in diagnostics)


class TestRetentionHazard:
    def test_positive_second_launch_relies_on_retention(self):
        codes, diags = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t1 = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t1
    %t2 = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t2
    func.return
  }
}
""")
        assert "ACCFG011" in codes
        diag = next(d for d in diags if d.code == "ACCFG011")
        assert diag.severity is Severity.WARNING
        assert "'n'" in diag.message
        assert any("recovery" in note for note in diag.notes)

    def test_positive_hoisted_setup_feeding_loop(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    scf.for %i = %c0 to %c4 step %c1 {
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
""")
        assert "ACCFG011" in codes

    def test_negative_single_launch(self):
        codes, _ = lint_codes(CLEAN)
        assert "ACCFG011" not in codes

    def test_negative_field_rewritten_before_each_launch(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64, %m : i64) -> () {
    %s1 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t1
    %s2 = accfg.setup on "toyvec" from %s1 ("n" = %m : i64) : !accfg.state<"toyvec">
    %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
    accfg.await %t2
    func.return
  }
}
""")
        assert "ACCFG011" not in codes

    def test_negative_per_iteration_setup(self):
        codes, _ = lint_codes("""builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    scf.for %i = %c0 to %c4 step %c1 {
      %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
""")
        assert "ACCFG011" not in codes
