"""ACCFG012–015 — the cost-engine opportunity lints.

Each lint must (a) fire on the exact inefficiency it names, (b) stay
silent once the named pass has run, and (c) carry a fix-it note naming
that pass.
"""

from repro.analysis import run_lints
from repro.ir import parse_module
from repro.passes import pipeline_by_name


def diags_for(text, code, pipeline=""):
    module = parse_module(text)
    if pipeline:
        pipeline_by_name(pipeline).run(module)
    return [d for d in run_lints(module, codes={code})]


# ---------------------------------------------------------------------------
# ACCFG012: missed dedup (same constant through different SSA values)
# ---------------------------------------------------------------------------


MISSED_DEDUP = """builtin.module {
  func.func @main() -> () {
    %n0 = arith.constant 8 : i64
    %n1 = arith.constant 8 : i64
    %s0 = accfg.setup on "toyvec" ("n" = %n0 : i64) : !accfg.state<"toyvec">
    %s1 = accfg.setup on "toyvec" from %s0 ("n" = %n1 : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""


class TestMissedDedup:
    def test_same_constant_different_ssa_fires(self):
        diags = diags_for(MISSED_DEDUP, "ACCFG012")
        assert len(diags) == 1
        assert "provably already holds" in diags[0].message
        assert any("--pipeline dedup" in note for note in diags[0].notes)

    def test_same_ssa_value_is_accfg007_territory(self):
        # The identical SSA value re-written is ACCFG007's finding; 012
        # only covers the harder same-constant-different-value case.
        same_ssa = MISSED_DEDUP.replace('"n" = %n1', '"n" = %n0')
        assert diags_for(same_ssa, "ACCFG012") == []

    def test_different_constant_is_clean(self):
        changed = MISSED_DEDUP.replace(
            "%n1 = arith.constant 8", "%n1 = arith.constant 16"
        )
        assert diags_for(changed, "ACCFG012") == []

    def test_dedup_pipeline_eliminates_the_finding(self):
        assert diags_for(MISSED_DEDUP, "ACCFG012", pipeline="dedup") == []


# ---------------------------------------------------------------------------
# ACCFG013: loop-invariant setup
# ---------------------------------------------------------------------------


INVARIANT_SETUP = """builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    scf.for %i = %c0 to %c4 step %c1 {
      %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
"""


class TestLoopInvariantSetup:
    def test_invariant_setup_in_loop_fires(self):
        diags = diags_for(INVARIANT_SETUP, "ACCFG013")
        assert len(diags) == 1
        assert "loop-invariant" in diags[0].message
        assert "loop depth 1" in diags[0].message
        assert any("LICMPass" in note for note in diags[0].notes)

    def test_induction_dependent_setup_is_clean(self):
        # A field derived from the induction variable is not invariant.
        variant = INVARIANT_SETUP.replace(
            '%s = accfg.setup on "toyvec" ("n" = %n : i64)',
            '%iv = arith.addi %i, %c1 : index\n'
            '      %s = accfg.setup on "toyvec" ("n" = %iv : index)',
        )
        assert diags_for(variant, "ACCFG013") == []

    def test_conditional_setup_is_not_hoistable(self):
        guarded = INVARIANT_SETUP.replace(
            """%s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t""",
            """%c2 = arith.constant 2 : index
      %go = arith.cmpi ult, %i, %c2 : index
      scf.if %go {
        %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
        %t = accfg.launch %s : !accfg.token<"toyvec">
        accfg.await %t
      }""",
        )
        assert diags_for(guarded, "ACCFG013") == []

    def test_full_pipeline_hoists_and_eliminates_the_finding(self):
        # Plain `licm` cannot hoist the un-threaded idiom (the state chain
        # is rebuilt every iteration); `full` threads it first, then LICM
        # hoists, and the finding disappears.
        assert diags_for(INVARIANT_SETUP, "ACCFG013", pipeline="full") == []


# ---------------------------------------------------------------------------
# ACCFG014: overlappable setup serialized behind compute
# ---------------------------------------------------------------------------


SERIALIZED_LOOP = INVARIANT_SETUP  # setup -> launch -> await, loop-carried

SERIALIZED_STRAIGHT = """builtin.module {
  func.func @main(%n : i64, %m : i64) -> () {
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t0 = accfg.launch %s0 : !accfg.token<"toyvec">
    accfg.await %t0
    %s1 = accfg.setup on "toyvec" ("n" = %m : i64) : !accfg.state<"toyvec">
    %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t1
    func.return
  }
}
"""


class TestSerializedSetup:
    def test_loop_carried_serialization_fires(self):
        diags = diags_for(SERIALIZED_LOOP, "ACCFG014")
        assert len(diags) == 1
        assert "serialized behind" in diags[0].message
        assert any("--pipeline overlap" in note for note in diags[0].notes)

    def test_straight_line_await_setup_launch_fires(self):
        diags = diags_for(SERIALIZED_STRAIGHT, "ACCFG014")
        assert len(diags) == 1
        assert diags[0].op.name == "accfg.setup"

    def test_sequential_config_interface_is_silent(self):
        # toyvec-seq models a device that cannot take configuration while
        # computing: there is nothing to overlap, so no opportunity exists.
        sequential = SERIALIZED_STRAIGHT.replace('"toyvec"', '"toyvec-seq"')
        assert diags_for(sequential, "ACCFG014") == []

    def test_overlap_pipeline_eliminates_the_finding(self):
        assert diags_for(SERIALIZED_LOOP, "ACCFG014", pipeline="overlap") == []


# ---------------------------------------------------------------------------
# ACCFG015: redundant full re-setup where retention suffices
# ---------------------------------------------------------------------------


REDUNDANT_RESETUP = """builtin.module {
  func.func @main() -> () {
    %n = arith.constant 8 : i64
    %s0 = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t0 = accfg.launch %s0 : !accfg.token<"toyvec">
    accfg.await %t0
    %m = arith.constant 8 : i64
    %s1 = accfg.setup on "toyvec" ("n" = %m : i64) : !accfg.state<"toyvec">
    %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t1
    func.return
  }
}
"""


class TestRedundantResetup:
    def test_full_resetup_of_retained_registers_fires(self):
        diags = diags_for(REDUNDANT_RESETUP, "ACCFG015")
        assert len(diags) == 1
        assert "retention" in diags[0].message
        assert any("--pipeline full" in note for note in diags[0].notes)

    def test_changed_constant_is_a_real_reconfiguration(self):
        changed = REDUNDANT_RESETUP.replace(
            "%m = arith.constant 8", "%m = arith.constant 16"
        )
        assert diags_for(changed, "ACCFG015") == []

    def test_reset_in_between_invalidates_retention(self):
        reset = REDUNDANT_RESETUP.replace(
            "%m = arith.constant 8",
            "accfg.reset %s0\n    %m = arith.constant 8",
        )
        assert diags_for(reset, "ACCFG015") == []

    def test_full_pipeline_eliminates_the_finding(self):
        assert diags_for(REDUNDANT_RESETUP, "ACCFG015", pipeline="full") == []
