"""Diagnostics engine and source-location threading."""

import pytest

from repro.analysis import Diagnostic, DiagnosticEngine, Severity, error_code_counts
from repro.ir import SourceLoc, VerifyError, parse_module, verify_operation


class TestSourceLoc:
    def test_str_with_filename(self):
        assert str(SourceLoc(3, 7, "demo.mlir")) == "demo.mlir:3:7"

    def test_str_without_filename(self):
        assert str(SourceLoc(3, 7)) == "<input>:3:7"


PROGRAM = """builtin.module {
  func.func @main(%n : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    func.return
  }
}
"""


class TestLocationThreading:
    def test_parser_records_locations(self):
        module = parse_module(PROGRAM, "demo.mlir")
        locs = {op.name: op.loc for op in module.walk()}
        assert locs["accfg.setup"] == SourceLoc(3, 5, "demo.mlir")
        assert locs["accfg.launch"] == SourceLoc(4, 5, "demo.mlir")
        assert locs["accfg.await"] == SourceLoc(5, 5, "demo.mlir")
        assert locs["builtin.module"] == SourceLoc(1, 1, "demo.mlir")

    def test_filename_defaults_to_none(self):
        module = parse_module(PROGRAM)
        setup = next(op for op in module.walk() if op.name == "accfg.setup")
        assert setup.loc is not None and setup.loc.filename is None

    def test_programmatic_ops_have_no_location(self):
        from repro.dialects import arith
        from repro.ir import i64

        assert arith.ConstantOp.create(1, i64).loc is None

    def test_clone_preserves_location(self):
        module = parse_module(PROGRAM, "demo.mlir")
        setup = next(op for op in module.walk() if op.name == "accfg.setup")
        assert setup.clone({o: o for o in setup.operands}).loc == setup.loc

    def test_verifier_error_names_the_line(self):
        bad = """builtin.module {
  func.func @main(%a : i64, %b : i64) -> () {
    %s = accfg.setup on "toyvec" ("n" = %a : i64, "n" = %b : i64) : !accfg.state<"toyvec">
    func.return
  }
}
"""
        module = parse_module(bad, "bad.mlir")
        with pytest.raises(VerifyError, match=r"bad\.mlir:3:5: duplicate setup field"):
            verify_operation(module)


class TestDiagnostic:
    def test_format_has_code_location_excerpt_and_note(self):
        module = parse_module(PROGRAM, "demo.mlir")
        launch = next(op for op in module.walk() if op.name == "accfg.launch")
        diag = Diagnostic("ACCFG001", Severity.WARNING, "launch never awaited", launch)
        diag.with_note("insert accfg.await")
        text = diag.format()
        assert "warning[ACCFG001]: launch never awaited" in text
        assert "--> demo.mlir:4:5" in text
        assert "accfg.launch" in text
        assert "= note: insert accfg.await" in text

    def test_format_without_op(self):
        diag = Diagnostic("ACCFG999", Severity.ERROR, "module-level problem")
        text = diag.format()
        assert text.startswith("error[ACCFG999]: module-level problem")
        assert "-->" not in text

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.NOTE


class TestDiagnosticEngine:
    def test_collects_and_counts(self):
        engine = DiagnosticEngine()
        engine.error("ACCFG002", "boom")
        engine.warning("ACCFG001", "meh")
        assert engine.has_errors
        assert engine.count(Severity.ERROR) == 1
        assert engine.count(Severity.WARNING) == 1

    def test_deduplicates_repeats(self):
        module = parse_module(PROGRAM)
        launch = next(op for op in module.walk() if op.name == "accfg.launch")
        engine = DiagnosticEngine()
        engine.warning("ACCFG001", "same", launch)
        engine.warning("ACCFG001", "same", launch)
        assert len(engine.diagnostics) == 1

    def test_error_code_counts(self):
        engine = DiagnosticEngine()
        engine.error("ACCFG002", "a")
        engine.error("ACCFG002", "b")
        engine.warning("ACCFG001", "c")
        assert error_code_counts(engine.diagnostics) == {"ACCFG002": 2}
