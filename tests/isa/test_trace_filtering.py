"""Tests for per-accelerator trace filtering (multi-accelerator metrics)."""

import pytest

from repro.isa import HostCostModel, Trace, alu, config_write, launch_instr, sync_instr


def mixed_trace():
    trace = Trace()
    trace.extend(
        [
            alu(),  # unattributed calc
            config_write("csrw", "opengemm", 4),
            config_write("csrw", "opengemm", 4),
            config_write("rocc", "gemmini", 16),
            launch_instr("start", "opengemm", 4),
            sync_instr("poll", "gemmini"),
        ]
    )
    return trace


class TestFiltering:
    def test_unfiltered_sees_everything(self):
        stats = mixed_trace().stats(HostCostModel(1.0))
        assert stats.total_instrs == 6
        assert stats.setup_instrs == 3
        assert stats.config_bytes == 4 + 4 + 16 + 4

    def test_filter_by_accelerator(self):
        stats = mixed_trace().stats(HostCostModel(1.0), accelerator="opengemm")
        assert stats.setup_instrs == 2
        assert stats.launch_instrs == 1
        assert stats.sync_instrs == 0
        assert stats.config_bytes == 12

    def test_unattributed_work_always_included(self):
        stats = mixed_trace().stats(HostCostModel(1.0), accelerator="gemmini")
        assert stats.calc_instrs == 1  # the plain alu
        assert stats.setup_instrs == 1
        assert stats.config_bytes == 16

    def test_unknown_accelerator_gets_only_unattributed(self):
        stats = mixed_trace().stats(HostCostModel(1.0), accelerator="other")
        assert stats.setup_instrs == 0
        assert stats.calc_instrs == 1
        assert stats.config_bytes == 0

    def test_bandwidths_follow_filter(self):
        full = mixed_trace().stats(HostCostModel(1.0))
        opengemm = mixed_trace().stats(HostCostModel(1.0), accelerator="opengemm")
        assert opengemm.theoretical_config_bandwidth() != pytest.approx(
            full.theoretical_config_bandwidth()
        )
