"""Tests for instruction records, cost model, and trace statistics."""

import pytest

from repro.isa import (
    HostCostModel,
    Instr,
    InstrCategory,
    Trace,
    alu,
    branch,
    config_write,
    launch_instr,
    sync_instr,
)


class TestInstr:
    def test_categories(self):
        assert alu().category is InstrCategory.CALC
        assert branch().category is InstrCategory.CONTROL
        assert sync_instr("poll", "x").category is InstrCategory.SYNC

    def test_config_bytes_only_on_setup(self):
        with pytest.raises(ValueError):
            Instr("add", InstrCategory.CALC, config_bytes=8)

    def test_config_write_carries_bytes(self):
        instr = config_write("csrw", "opengemm", 4)
        assert instr.config_bytes == 4
        assert instr.accelerator == "opengemm"

    def test_launch_may_carry_bytes(self):
        instr = launch_instr("start", "x", 4)
        assert instr.config_bytes == 4


class TestHostCostModel:
    def test_default_three_cycles(self):
        model = HostCostModel()
        assert model.cycles(alu()) == 3.0

    def test_category_override(self):
        model = HostCostModel(
            1.0, category_overrides={InstrCategory.SETUP: 10.0}
        )
        assert model.cycles(config_write("mmio", "x", 8)) == 10.0
        assert model.cycles(alu()) == 1.0


class TestTrace:
    def make_trace(self):
        trace = Trace()
        trace.extend(
            [
                alu(),
                alu(),
                config_write("w", "x", 16),
                config_write("w", "x", 16),
                launch_instr("go", "x"),
                sync_instr("poll", "x"),
            ]
        )
        return trace

    def test_counts(self):
        trace = self.make_trace()
        assert len(trace) == 6
        assert trace.count(InstrCategory.CALC) == 2
        assert trace.count(InstrCategory.SETUP) == 2

    def test_config_bytes(self):
        trace = self.make_trace()
        assert trace.config_bytes() == 32
        assert trace.config_bytes("x") == 32
        assert trace.config_bytes("other") == 0

    def test_stats(self):
        stats = self.make_trace().stats(HostCostModel(3.0))
        assert stats.total_instrs == 6
        assert stats.setup_instrs == 2
        assert stats.calc_instrs == 2
        assert stats.config_bytes == 32
        assert stats.setup_cycles == 6.0
        assert stats.calc_cycles == 6.0

    def test_effective_bandwidth_eq4(self):
        stats = self.make_trace().stats(HostCostModel(3.0))
        # Eq. 4: 32 bytes / (6 + 6 cycles)
        assert stats.effective_config_bandwidth() == pytest.approx(32 / 12)
        assert stats.theoretical_config_bandwidth() == pytest.approx(32 / 6)

    def test_empty_trace_bandwidth_infinite(self):
        stats = Trace().stats()
        assert stats.effective_config_bandwidth() == float("inf")

    def test_paper_4_6_numbers(self):
        """160 RoCC writes + 775 calc instrs at 3 cycles -> BW_eff 0.913."""
        trace = Trace()
        for _ in range(160):
            trace.append(config_write("rocc", "gemmini", 16))
        for _ in range(775):
            trace.append(alu())
        stats = trace.stats(HostCostModel(3.0))
        assert stats.effective_config_bandwidth() == pytest.approx(0.913, abs=1e-3)
