"""Tests for configuration field packing (Listing 1 modeling)."""

import pytest

from repro.isa import (
    FieldSpec,
    pack_fields,
    packing_instruction_count,
    total_config_bytes,
)


class TestFieldSpec:
    def test_mask(self):
        assert FieldSpec("x", 4).mask == 0xF
        assert FieldSpec("x", 64).mask == (1 << 64) - 1

    @pytest.mark.parametrize("bits", [0, 65, -3])
    def test_invalid_width(self, bits):
        with pytest.raises(ValueError):
            FieldSpec("x", bits)


class TestPackFields:
    def test_small_fields_share_word(self):
        fields = [FieldSpec("i", 16), FieldSpec("j", 16), FieldSpec("k", 16)]
        words = pack_fields(fields)
        assert len(words) == 1
        assert words[0].bits_used == 48

    def test_large_fields_get_own_words(self):
        fields = [FieldSpec("a", 64), FieldSpec("b", 64)]
        words = pack_fields(fields)
        assert len(words) == 2

    def test_overflow_starts_new_word(self):
        fields = [FieldSpec("a", 48), FieldSpec("b", 32)]
        words = pack_fields(fields)
        assert len(words) == 2
        assert words[0].bits_used == 48

    def test_order_preserved(self):
        fields = [FieldSpec("a", 8), FieldSpec("b", 8)]
        word = pack_fields(fields)[0]
        assert [spec.name for spec, _ in word.lanes] == ["a", "b"]
        assert [offset for _, offset in word.lanes] == [0, 8]

    def test_custom_word_width(self):
        fields = [FieldSpec("a", 16), FieldSpec("b", 16), FieldSpec("c", 16)]
        words = pack_fields(fields, word_bits=32)
        assert len(words) == 2

    def test_empty(self):
        assert pack_fields([]) == []


class TestEncodeDecode:
    def test_roundtrip(self):
        fields = [FieldSpec("i", 16), FieldSpec("j", 16), FieldSpec("k", 16)]
        word = pack_fields(fields)[0]
        values = {"i": 3, "j": 1000, "k": 65535}
        encoded = word.encode(values)
        assert word.decode(encoded) == values

    def test_listing1_layout(self):
        """(pad_K << 32) | (pad_J << 16) | pad_I — exactly Listing 1."""
        fields = [FieldSpec("pad_I", 16), FieldSpec("pad_J", 16), FieldSpec("pad_K", 16)]
        word = pack_fields(fields)[0]
        encoded = word.encode({"pad_I": 1, "pad_J": 2, "pad_K": 3})
        assert encoded == (3 << 32) | (2 << 16) | 1

    def test_values_masked_to_width(self):
        word = pack_fields([FieldSpec("x", 4)])[0]
        assert word.encode({"x": 0xFF}) == 0xF

    def test_missing_values_default_zero(self):
        word = pack_fields([FieldSpec("x", 8), FieldSpec("y", 8)])[0]
        assert word.encode({"y": 1}) == 1 << 8


class TestCosts:
    def test_single_lane_is_one_move(self):
        word = pack_fields([FieldSpec("a", 64)])[0]
        assert packing_instruction_count(word) == 1

    def test_each_extra_lane_costs_shift_plus_or(self):
        fields = [FieldSpec("a", 16), FieldSpec("b", 16), FieldSpec("c", 16)]
        word = pack_fields(fields)[0]
        assert packing_instruction_count(word) == 5  # 1 + 2*2

    def test_total_config_bytes_rounds_per_field(self):
        fields = [FieldSpec("a", 6), FieldSpec("b", 1), FieldSpec("c", 64)]
        assert total_config_bytes(fields) == 1 + 1 + 8
