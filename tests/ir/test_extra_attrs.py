"""Round-trip tests for extra attributes on custom-syntax ops.

The ``#accfg.effects`` escape hatches can be attached to *any* op (paper,
Section 5.1); custom syntax must not drop them."""

from repro.dialects import accfg
from repro.ir import parse_module, verify_operation


def roundtrip(text):
    module = parse_module(text)
    verify_operation(module)
    printed = str(module)
    assert str(parse_module(printed)) == printed
    return module, printed


class TestExtraAttrRoundTrips:
    def test_effects_on_call_site(self):
        module, printed = roundtrip(
            """
            func.func @helper() -> ()
            func.func @main() -> () {
              func.call @helper() : () -> () {accfg.effects = "none"}
              func.return
            }
            """
        )
        call = next(op for op in module.walk() if op.name == "func.call")
        assert accfg.get_effects(call) == "none"
        assert 'accfg.effects = "none"' in printed

    def test_effects_on_function(self):
        module, printed = roundtrip(
            """
            func.func @log() -> () {
              func.return
            } {accfg.effects = "none"}
            """
        )
        fn = next(op for op in module.walk() if op.name == "func.func")
        assert accfg.get_effects(fn) == "none"

    def test_effects_on_loop(self):
        module, printed = roundtrip(
            """
            func.func @main(%x : i64) -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              scf.for %i = %c0 to %c1 step %c1 {
                scf.yield
              } {accfg.effects = "all"}
              func.return
            }
            """
        )
        loop = next(op for op in module.walk() if op.name == "scf.for")
        assert accfg.get_effects(loop) == "all"

    def test_extra_attr_on_setup(self):
        module, printed = roundtrip(
            """
            func.func @main(%x : i64) -> () {
              %s = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec"> {debug_id = 42 : i64}
              func.return
            }
            """
        )
        setup = next(op for op in module.walk() if op.name == "accfg.setup")
        assert "debug_id" in setup.attributes
        assert setup.field_names == ("n",)  # own attrs unaffected

    def test_own_attrs_not_duplicated(self):
        _, printed = roundtrip(
            """
            func.func @main() -> () {
              %c = arith.constant 5 : i64 {origin = "frontend"}
              %s = accfg.setup on "toyvec" ("n" = %c : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        # 'value' is rendered by the constant's custom syntax only.
        assert printed.count("value") == 0
        assert 'origin = "frontend"' in printed

    def test_programmatic_annotation_roundtrips(self):
        module = parse_module(
            """
            func.func @main(%x : i64) -> () {
              %s = accfg.setup on "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        setup = next(op for op in module.walk() if op.name == "accfg.setup")
        accfg.set_effects(setup, "none")
        reparsed = parse_module(str(module))
        setup2 = next(op for op in reparsed.walk() if op.name == "accfg.setup")
        assert accfg.get_effects(setup2) == "none"
