"""Tests for the IR builder and insertion points."""

import pytest

from repro.dialects import arith
from repro.ir import Block, Builder, InsertPoint, IRError, i64


class TestInsertPoint:
    def test_at_end(self):
        block = Block([arith.ConstantOp.create(1, i64)])
        point = InsertPoint.at_end(block)
        assert point.index == 1

    def test_at_start(self):
        block = Block([arith.ConstantOp.create(1, i64)])
        assert InsertPoint.at_start(block).index == 0

    def test_before_after(self):
        c1 = arith.ConstantOp.create(1, i64)
        c2 = arith.ConstantOp.create(2, i64)
        block = Block([c1, c2])
        assert InsertPoint.before(c2).index == 1
        assert InsertPoint.after(c1).index == 1

    def test_before_detached_raises(self):
        c = arith.ConstantOp.create(1, i64)
        with pytest.raises(IRError):
            InsertPoint.before(c)


class TestBuilder:
    def test_insert_advances(self):
        block = Block()
        builder = Builder.at_end(block)
        a = builder.insert(arith.ConstantOp.create(1, i64))
        b = builder.insert(arith.ConstantOp.create(2, i64))
        assert block.ops == [a, b]

    def test_insert_at_start_keeps_order(self):
        block = Block([arith.ConstantOp.create(9, i64)])
        builder = Builder.at_start(block)
        builder.insert(arith.ConstantOp.create(1, i64))
        builder.insert(arith.ConstantOp.create(2, i64))
        assert [op.value for op in block.ops] == [1, 2, 9]

    def test_no_insert_point_raises(self):
        with pytest.raises(IRError):
            Builder().insert(arith.ConstantOp.create(1, i64))

    def test_temporary_insertion_point(self):
        block1 = Block()
        block2 = Block()
        builder = Builder.at_end(block1)
        with builder.at(InsertPoint.at_end(block2)):
            builder.insert(arith.ConstantOp.create(5, i64))
        builder.insert(arith.ConstantOp.create(1, i64))
        assert len(block1.ops) == 1
        assert len(block2.ops) == 1

    def test_insert_all(self):
        block = Block()
        builder = Builder.at_end(block)
        ops = [arith.ConstantOp.create(i, i64) for i in range(3)]
        builder.insert_all(ops)
        assert block.ops == ops
