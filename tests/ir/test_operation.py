"""Tests for the Operation base class: structure, cloning, traits, walking."""

import pytest

from repro.dialects import arith, scf
from repro.ir import (
    Block,
    IntegerAttr,
    IRError,
    Operation,
    Region,
    UnregisteredOp,
    i64,
    index,
)
from repro.ir.traits import IsTerminator, Pure


def simple_loop():
    """for i in 0..10 step 1 { %x = addi %c, %c }  — returns (ops, loop)."""
    lb = arith.ConstantOp.create(0, index)
    ub = arith.ConstantOp.create(10, index)
    step = arith.ConstantOp.create(1, index)
    c = arith.ConstantOp.create(7, index)
    loop = scf.ForOp.create(lb.result, ub.result, step.result)
    add = arith.AddiOp.create(c.result, c.result)
    loop.body.add_op(add)
    loop.body.add_op(scf.YieldOp.create())
    return [lb, ub, step, c, loop], loop


class TestStructure:
    def test_results_numbered(self):
        c = arith.ConstantOp.create(1, i64)
        assert c.results[0].index == 0
        assert c.result is c.results[0]

    def test_result_property_raises_for_zero_results(self):
        op = scf.YieldOp.create()
        with pytest.raises(IRError):
            op.result

    def test_parent_links(self):
        block = Block()
        c = arith.ConstantOp.create(1, i64)
        block.add_op(c)
        assert c.parent is block

    def test_parent_op_through_region(self):
        _, loop = simple_loop()
        add = loop.body.ops[0]
        assert add.parent_op is loop

    def test_is_ancestor_of(self):
        _, loop = simple_loop()
        add = loop.body.ops[0]
        assert loop.is_ancestor_of(add)
        assert not add.is_ancestor_of(loop)

    def test_set_operands_resizes(self):
        c1 = arith.ConstantOp.create(1, i64)
        c2 = arith.ConstantOp.create(2, i64)
        op = UnregisteredOp("test.op", operands=[c1.result])
        op.set_operands([c1.result, c2.result])
        assert len(op.operands) == 2
        op.set_operands([])
        assert not c1.result.has_uses


class TestTraits:
    def test_pure_trait(self):
        assert arith.ConstantOp.create(1, i64).is_pure
        assert arith.AddiOp.has_trait(Pure())

    def test_terminator_trait(self):
        assert scf.YieldOp.create().is_terminator
        assert not arith.ConstantOp.create(1, i64).is_terminator

    def test_unregistered_has_no_traits(self):
        op = UnregisteredOp("foreign.op")
        assert not op.is_pure
        assert not op.is_terminator


class TestWalk:
    def test_walk_preorder(self):
        ops, loop = simple_loop()
        block = Block()
        for op in ops:
            block.add_op(op)
        names = [op.name for op in loop.walk()]
        assert names == ["scf.for", "arith.addi", "scf.yield"]

    def test_walk_reverse(self):
        _, loop = simple_loop()
        names = [op.name for op in loop.walk(reverse=True)]
        assert names[0] == "scf.for"
        assert names[-1] == "arith.addi"


class TestOrdering:
    def test_is_before_in_block(self):
        block = Block()
        c1 = arith.ConstantOp.create(1, i64)
        c2 = arith.ConstantOp.create(2, i64)
        block.add_op(c1)
        block.add_op(c2)
        assert c1.is_before_in_block(c2)
        assert not c2.is_before_in_block(c1)

    def test_is_before_requires_same_block(self):
        c1 = arith.ConstantOp.create(1, i64)
        c2 = arith.ConstantOp.create(2, i64)
        Block([c1])
        Block([c2])
        with pytest.raises(IRError):
            c1.is_before_in_block(c2)


class TestClone:
    def test_clone_remaps_operands(self):
        c1 = arith.ConstantOp.create(1, i64)
        c2 = arith.ConstantOp.create(2, i64)
        add = arith.AddiOp.create(c1.result, c1.result)
        clone = add.clone({c1.result: c2.result})
        assert clone.operands == (c2.result, c2.result)
        assert clone is not add

    def test_clone_copies_attributes(self):
        c = arith.ConstantOp.create(42, i64)
        clone = c.clone()
        assert clone.attributes["value"] == IntegerAttr(42, i64)
        clone.attributes["value"] = IntegerAttr(0, i64)
        assert c.value == 42

    def test_clone_regions_deep(self):
        _, loop = simple_loop()
        value_map = {o: o for o in loop.operands}
        clone = loop.clone(dict(value_map))
        assert isinstance(clone, scf.ForOp)
        assert len(clone.body.ops) == 2
        assert clone.body is not loop.body
        # The cloned body ops reference the cloned block args, not originals.
        assert clone.induction_var is not loop.induction_var

    def test_clone_maps_nested_results(self):
        c1 = arith.ConstantOp.create(1, i64)
        block = Block()
        a = arith.AddiOp.create(c1.result, c1.result)
        b = arith.MuliOp.create(a.result, a.result)
        block.add_op(a)
        block.add_op(b)
        region_op = UnregisteredOp("test.wrap", regions=[Region([block])])
        clone = region_op.clone()
        cloned_block = clone.regions[0].block
        assert cloned_block.ops[1].operands[0] is cloned_block.ops[0].results[0]

    def test_unregistered_clone_keeps_name(self):
        op = UnregisteredOp("weird.op")
        assert op.clone().op_name == "weird.op"


class TestErase:
    def test_detach_then_reattach(self):
        block1 = Block()
        block2 = Block()
        c = arith.ConstantOp.create(1, i64)
        block1.add_op(c)
        c.detach()
        block2.add_op(c)
        assert c.parent is block2
        assert len(block1.ops) == 0

    def test_double_adopt_raises(self):
        block1 = Block()
        block2 = Block()
        c = arith.ConstantOp.create(1, i64)
        block1.add_op(c)
        with pytest.raises(IRError):
            block2.add_op(c)

    def test_unsafe_erase_skips_check(self):
        c1 = arith.ConstantOp.create(1, i64)
        add = arith.AddiOp.create(c1.result, c1.result)
        c1.erase(safe=False)
        assert add is not None  # the op object survives; IR is now dangling
