"""Tests for structural_key: the exact, hashable module cache key."""

from repro.ir import IntegerAttr, i64, parse_module, structural_key


def parse(text: str):
    return parse_module(text)


PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""


class TestEquality:
    def test_deterministic(self):
        module = parse(PROGRAM)
        assert structural_key(module) == structural_key(module)

    def test_clone_has_equal_key(self):
        module = parse(PROGRAM)
        assert structural_key(module.clone()) == structural_key(module)

    def test_reparsed_text_has_equal_key(self):
        # Keys depend only on structure, never on object identity, so two
        # independent parses of the same text must collide (that is what
        # makes the trace cache hit across pipeline clones).
        assert structural_key(parse(PROGRAM)) == structural_key(parse(PROGRAM))

    def test_key_is_hashable(self):
        cache = {structural_key(parse(PROGRAM)): "entry"}
        assert cache[structural_key(parse(PROGRAM))] == "entry"


class TestInequality:
    def test_attribute_value_changes_key(self):
        module = parse(PROGRAM)
        before = structural_key(module)
        constant = next(op for op in module.walk() if op.name == "arith.constant")
        constant.attributes["value"] = IntegerAttr(4, i64)
        assert structural_key(module) != before

    def test_different_op_changes_key(self):
        other = parse(PROGRAM.replace("arith.addi", "arith.muli"))
        assert structural_key(other) != structural_key(parse(PROGRAM))

    def test_operand_topology_changes_key(self):
        swapped = parse(PROGRAM.replace("%x, %c", "%c, %x"))
        assert structural_key(swapped) != structural_key(parse(PROGRAM))

    def test_region_structure_changes_key(self):
        looped = parse(
            """
            func.func @main(%x : i64) -> (i64) {
              %c = arith.constant 3 : i64
              %lb = arith.constant 0 : index
              %ub = arith.constant 2 : index
              %st = arith.constant 1 : index
              scf.for %i = %lb to %ub step %st {
                %y = arith.addi %x, %c : i64
              }
              func.return %c : i64
            }
            """
        )
        assert structural_key(looped) != structural_key(parse(PROGRAM))


class TestAtomInterning:
    def test_atom_ids_are_stable_across_modules(self):
        # The process-global atom table must assign the same id to equal
        # attributes/types every time, or long-lived caches would corrupt.
        first = structural_key(parse(PROGRAM))
        for _ in range(3):
            assert structural_key(parse(PROGRAM)) == first
