"""Tests for structural rewriting and the greedy pattern driver."""

import pytest

from repro.dialects import arith, scf
from repro.ir import (
    Block,
    IRError,
    Operation,
    PatternRewriter,
    RewritePattern,
    Rewriter,
    apply_patterns_greedily,
    i64,
)


def block_with_chain():
    block = Block()
    c1 = arith.ConstantOp.create(1, i64)
    c2 = arith.ConstantOp.create(2, i64)
    add = arith.AddiOp.create(c1.result, c2.result)
    mul = arith.MuliOp.create(add.result, add.result)
    block.add_ops([c1, c2, add, mul])
    return block, c1, c2, add, mul


class TestReplaceOp:
    def test_replace_with_new_op(self):
        block, c1, c2, add, mul = block_with_chain()
        sub = arith.SubiOp.create(c1.result, c2.result)
        Rewriter.replace_op(add, sub)
        assert mul.operands == (sub.result, sub.result)
        assert add.parent is None

    def test_replace_values_reroutes(self):
        block, c1, c2, add, mul = block_with_chain()
        Rewriter.replace_values(add, [c1.result])
        assert mul.operands == (c1.result, c1.result)

    def test_result_count_checked(self):
        block, c1, c2, add, mul = block_with_chain()
        with pytest.raises(IRError, match="results"):
            Rewriter.replace_op(add, [], new_results=[c1.result, c2.result])

    def test_none_result_requires_unused(self):
        block, c1, c2, add, mul = block_with_chain()
        with pytest.raises(IRError):
            Rewriter.replace_op(add, [], new_results=[None])


class TestMove:
    def test_move_before(self):
        block, c1, c2, add, mul = block_with_chain()
        Rewriter.move_op_before(c2, c1)
        assert block.index_of(c2) == 0

    def test_move_after(self):
        block, c1, c2, add, mul = block_with_chain()
        Rewriter.move_op_after(c1, add)
        # dominance now broken, but the structural move itself works
        assert block.index_of(c1) == block.index_of(add) + 1


class TestInlineBlock:
    def test_inline_substitutes_args(self):
        inner = Block(arg_types=[i64])
        double = arith.AddiOp.create(inner.args[0], inner.args[0])
        inner.add_op(double)

        outer = Block()
        c = arith.ConstantOp.create(21, i64)
        anchor = arith.MuliOp.create(c.result, c.result)
        outer.add_ops([c, anchor])
        Rewriter.inline_block_before(inner, anchor, [c.result])
        assert double.parent is outer
        assert double.operands == (c.result, c.result)

    def test_arg_count_checked(self):
        inner = Block(arg_types=[i64])
        outer = Block()
        anchor = arith.ConstantOp.create(1, i64)
        outer.add_op(anchor)
        with pytest.raises(IRError):
            Rewriter.inline_block_before(inner, anchor, [])


class ReplaceAddWithSub(RewritePattern):
    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, arith.AddiOp):
            return False
        sub = arith.SubiOp.create(op.lhs, op.rhs)
        rewriter.replace_op(op, sub)
        return True


class TestGreedyDriver:
    def test_applies_to_fixpoint(self):
        block, *_ = block_with_chain()
        wrapper = _wrap(block)
        changed = apply_patterns_greedily(wrapper, [ReplaceAddWithSub()])
        assert changed
        names = [op.name for op in block.ops]
        assert "arith.addi" not in names
        assert "arith.subi" in names

    def test_no_change_returns_false(self):
        block = Block([arith.ConstantOp.create(1, i64)])
        wrapper = _wrap(block)
        assert not apply_patterns_greedily(wrapper, [ReplaceAddWithSub()])

    def test_max_iterations_bounds_runaway(self):
        class Flipper(RewritePattern):
            """Alternates addi <-> subi forever."""

            def match_and_rewrite(self, op, rewriter):
                if isinstance(op, arith.AddiOp):
                    rewriter.replace_op(op, arith.SubiOp.create(op.lhs, op.rhs))
                    return True
                if isinstance(op, arith.SubiOp):
                    rewriter.replace_op(op, arith.AddiOp.create(op.lhs, op.rhs))
                    return True
                return False

        block, *_ = block_with_chain()
        wrapper = _wrap(block)
        # Terminates despite the non-converging pattern.
        assert apply_patterns_greedily(wrapper, [Flipper()], max_iterations=5)


def _wrap(block: Block) -> Operation:
    from repro.ir import Region, UnregisteredOp

    return UnregisteredOp("test.wrapper", regions=[Region([block])])
