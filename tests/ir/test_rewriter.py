"""Tests for structural rewriting and the greedy pattern driver."""

import pytest

from repro.dialects import arith, scf
from repro.ir import (
    Block,
    IRError,
    Operation,
    PatternRewriter,
    RewritePattern,
    Rewriter,
    apply_patterns_greedily,
    i64,
)


def block_with_chain():
    block = Block()
    c1 = arith.ConstantOp.create(1, i64)
    c2 = arith.ConstantOp.create(2, i64)
    add = arith.AddiOp.create(c1.result, c2.result)
    mul = arith.MuliOp.create(add.result, add.result)
    block.add_ops([c1, c2, add, mul])
    return block, c1, c2, add, mul


class TestReplaceOp:
    def test_replace_with_new_op(self):
        block, c1, c2, add, mul = block_with_chain()
        sub = arith.SubiOp.create(c1.result, c2.result)
        Rewriter.replace_op(add, sub)
        assert mul.operands == (sub.result, sub.result)
        assert add.parent is None

    def test_replace_values_reroutes(self):
        block, c1, c2, add, mul = block_with_chain()
        Rewriter.replace_values(add, [c1.result])
        assert mul.operands == (c1.result, c1.result)

    def test_result_count_checked(self):
        block, c1, c2, add, mul = block_with_chain()
        with pytest.raises(IRError, match="results"):
            Rewriter.replace_op(add, [], new_results=[c1.result, c2.result])

    def test_none_result_requires_unused(self):
        block, c1, c2, add, mul = block_with_chain()
        with pytest.raises(IRError):
            Rewriter.replace_op(add, [], new_results=[None])


class TestMove:
    def test_move_before(self):
        block, c1, c2, add, mul = block_with_chain()
        Rewriter.move_op_before(c2, c1)
        assert block.index_of(c2) == 0

    def test_move_after(self):
        block, c1, c2, add, mul = block_with_chain()
        Rewriter.move_op_after(c1, add)
        # dominance now broken, but the structural move itself works
        assert block.index_of(c1) == block.index_of(add) + 1


class TestInlineBlock:
    def test_inline_substitutes_args(self):
        inner = Block(arg_types=[i64])
        double = arith.AddiOp.create(inner.args[0], inner.args[0])
        inner.add_op(double)

        outer = Block()
        c = arith.ConstantOp.create(21, i64)
        anchor = arith.MuliOp.create(c.result, c.result)
        outer.add_ops([c, anchor])
        Rewriter.inline_block_before(inner, anchor, [c.result])
        assert double.parent is outer
        assert double.operands == (c.result, c.result)

    def test_arg_count_checked(self):
        inner = Block(arg_types=[i64])
        outer = Block()
        anchor = arith.ConstantOp.create(1, i64)
        outer.add_op(anchor)
        with pytest.raises(IRError):
            Rewriter.inline_block_before(inner, anchor, [])


class ReplaceAddWithSub(RewritePattern):
    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, arith.AddiOp):
            return False
        sub = arith.SubiOp.create(op.lhs, op.rhs)
        rewriter.replace_op(op, sub)
        return True


class TestGreedyDriver:
    def test_applies_to_fixpoint(self):
        block, *_ = block_with_chain()
        wrapper = _wrap(block)
        changed = apply_patterns_greedily(wrapper, [ReplaceAddWithSub()])
        assert changed
        names = [op.name for op in block.ops]
        assert "arith.addi" not in names
        assert "arith.subi" in names

    def test_no_change_returns_false(self):
        block = Block([arith.ConstantOp.create(1, i64)])
        wrapper = _wrap(block)
        assert not apply_patterns_greedily(wrapper, [ReplaceAddWithSub()])

    def test_max_iterations_bounds_runaway(self):
        class Flipper(RewritePattern):
            """Alternates addi <-> subi forever."""

            def match_and_rewrite(self, op, rewriter):
                if isinstance(op, arith.AddiOp):
                    rewriter.replace_op(op, arith.SubiOp.create(op.lhs, op.rhs))
                    return True
                if isinstance(op, arith.SubiOp):
                    rewriter.replace_op(op, arith.AddiOp.create(op.lhs, op.rhs))
                    return True
                return False

        block, *_ = block_with_chain()
        wrapper = _wrap(block)
        # Terminates despite the non-converging pattern.
        assert apply_patterns_greedily(wrapper, [Flipper()], max_iterations=5)


def _wrap(block: Block) -> Operation:
    from repro.ir import Region, UnregisteredOp

    return UnregisteredOp("test.wrapper", regions=[Region([block])])


# ---------------------------------------------------------------------------
# Worklist driver: indexing, incrementality, and driver selection
# ---------------------------------------------------------------------------

from repro.ir import (  # noqa: E402 - grouped with the tests that use them
    GreedyPatternDriver,
    PatternDriverWarning,
    Region,
    UnregisteredOp,
    active_driver,
    drive_patterns,
    i1,
    print_operation,
    use_driver,
)
from repro.passes.canonicalize import (  # noqa: E402
    DEFAULT_PATTERNS,
    DeadPureOpPattern,
    FoldPattern,
    SimplifyConstantIfPattern,
)


class AddToSub(RewritePattern):
    root_ops = (arith.AddiOp,)

    def match_and_rewrite(self, op, rewriter):
        if not isinstance(op, arith.AddiOp) or op.parent is None:
            return False
        rewriter.replace_op(op, arith.SubiOp.create(op.lhs, op.rhs))
        return True


class MulOfSubsToLhs(RewritePattern):
    """mul(a, b) -> a, but only once both operands come from subi ops."""

    root_ops = (arith.MuliOp,)

    def match_and_rewrite(self, op, rewriter):
        if not isinstance(op, arith.MuliOp) or op.parent is None:
            return False
        if not all(
            isinstance(v.owner, arith.SubiOp) for v in op.operands
        ):
            return False
        rewriter.replace_values(op, [op.lhs])
        return True


class RecordingAddPattern(RewritePattern):
    """Never rewrites; records every addi the driver offers it."""

    root_ops = (arith.AddiOp,)

    def __init__(self):
        self.seen = []

    def match_and_rewrite(self, op, rewriter):
        self.seen.append(op)
        return False


class TestPatternIndex:
    def test_root_ops_limits_candidates(self):
        pattern = SimplifyConstantIfPattern()
        driver = GreedyPatternDriver([pattern])
        add = arith.AddiOp.create(
            arith.ConstantOp.create(1, i64).result,
            arith.ConstantOp.create(2, i64).result,
        )
        cond = arith.ConstantOp.create(1, i1)
        if_op = scf.IfOp.create(cond.result)
        assert driver._patterns_for(add) == ()
        assert driver._patterns_for(if_op) == (pattern,)

    def test_applies_to_filters_by_class(self):
        driver = GreedyPatternDriver([FoldPattern()])
        # scf.yield has no fold override, so FoldPattern never indexes it.
        assert driver._patterns_for(scf.YieldOp.create()) == ()

    def test_index_entries_are_cached(self):
        driver = GreedyPatternDriver([AddToSub()])
        add = arith.AddiOp.create(
            arith.ConstantOp.create(1, i64).result,
            arith.ConstantOp.create(2, i64).result,
        )
        first = driver._patterns_for(add)
        assert driver._patterns_for(add) is first
        assert arith.AddiOp in driver._index

    def test_unregistered_roots_are_keyed_by_name(self):
        class NamedRoot(RewritePattern):
            root_ops = ("test.target",)

            def match_and_rewrite(self, op, rewriter):
                return False

        driver = GreedyPatternDriver([NamedRoot()])
        target = UnregisteredOp("test.target")
        other = UnregisteredOp("test.other")
        assert len(driver._patterns_for(target)) == 1
        assert driver._patterns_for(other) == ()


class TestWorklistIncrementality:
    def test_replace_reenqueues_users(self):
        # Seed mul *before* add: mul fails its first match, and can only
        # succeed if replacing add re-enqueues its users.
        block, c1, c2, add, mul = block_with_chain()
        wrapper = _wrap(block)
        driver = GreedyPatternDriver([AddToSub(), MulOfSubsToLhs()])
        result = driver.run(wrapper, seeds=[mul, add])
        assert result.changed
        names = [op.name for op in block.ops]
        assert "arith.muli" not in names
        assert "arith.subi" in names

    def test_erase_reenqueues_operand_definers(self):
        # Erasing the unused mul makes add dead, which makes the constants
        # dead: the cascade only happens if erasure re-enqueues definers.
        block, *_ = block_with_chain()
        wrapper = _wrap(block)
        assert apply_patterns_greedily(wrapper, [DeadPureOpPattern()])
        assert list(block.ops) == []

    def test_inserted_ops_are_processed(self):
        class MulToAdd(RewritePattern):
            root_ops = (arith.MuliOp,)

            def match_and_rewrite(self, op, rewriter):
                if not isinstance(op, arith.MuliOp) or op.parent is None:
                    return False
                rewriter.replace_op(op, arith.AddiOp.create(op.lhs, op.rhs))
                return True

        block = Block()
        c2 = arith.ConstantOp.create(2, i64)
        mul = arith.MuliOp.create(c2.result, c2.result)
        sink = scf.YieldOp.create([mul.result])
        block.add_ops([c2, mul, sink])
        wrapper = _wrap(block)
        # MulToAdd inserts a fresh addi; FoldPattern must still see it.
        assert apply_patterns_greedily(wrapper, [MulToAdd(), FoldPattern()])
        names = [op.name for op in block.ops]
        assert "arith.addi" not in names and "arith.muli" not in names
        assert isinstance(sink.operands[0].owner, arith.ConstantOp)
        assert sink.operands[0].owner.value == 4

    def test_erased_subtree_ops_are_skipped(self):
        recorder = RecordingAddPattern()
        then = Block()
        t1 = arith.ConstantOp.create(1, i64)
        t2 = arith.ConstantOp.create(2, i64)
        inner_add = arith.AddiOp.create(t1.result, t2.result)
        then.add_ops([t1, t2, inner_add, scf.YieldOp.create()])
        block = Block()
        cond = arith.ConstantOp.create(0, i1)
        if_op = scf.IfOp.create(cond.result, then_block=then)
        block.add_ops([cond, if_op])
        wrapper = _wrap(block)
        # The if is popped first (walk order) and erased wholesale; the
        # already-queued inner addi must be skipped, not offered to patterns.
        apply_patterns_greedily(
            wrapper, [SimplifyConstantIfPattern(), recorder]
        )
        assert inner_add not in recorder.seen

    def test_nonconvergence_warns(self):
        class Flipper(RewritePattern):
            def match_and_rewrite(self, op, rewriter):
                if isinstance(op, arith.AddiOp):
                    rewriter.replace_op(op, arith.SubiOp.create(op.lhs, op.rhs))
                    return True
                if isinstance(op, arith.SubiOp):
                    rewriter.replace_op(op, arith.AddiOp.create(op.lhs, op.rhs))
                    return True
                return False

        for driver in ("worklist", "sweep"):
            block, *_ = block_with_chain()
            wrapper = _wrap(block)
            with pytest.warns(PatternDriverWarning):
                apply_patterns_greedily(
                    wrapper, [Flipper()], max_iterations=3, driver=driver
                )

    def test_report_names_changed_scopes_only(self):
        fn_blocks = [Block(), Block()]
        functions = [
            UnregisteredOp(f"test.fn{i}", regions=[Region([b])])
            for i, b in enumerate(fn_blocks)
        ]
        touched_block = fn_blocks[0]
        c1 = arith.ConstantOp.create(1, i64)
        c2 = arith.ConstantOp.create(2, i64)
        add = arith.AddiOp.create(c1.result, c2.result)
        touched_block.add_ops([c1, c2, add])
        fn_blocks[1].add_op(arith.ConstantOp.create(3, i64))
        outer = Block(functions)
        root = UnregisteredOp("test.module", regions=[Region([outer])])
        result = GreedyPatternDriver([AddToSub()]).run(root)
        assert result.report() == [functions[0]]


class TestDriverSelection:
    def test_default_is_worklist(self):
        assert active_driver() in ("worklist", "both")

    def test_use_driver_scopes_and_restores(self):
        before = active_driver()
        with use_driver("sweep"):
            assert active_driver() == "sweep"
            with use_driver("worklist"):
                assert active_driver() == "worklist"
            assert active_driver() == "sweep"
        assert active_driver() == before

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            with use_driver("bogus"):
                pass

    def test_drivers_agree_on_default_patterns(self):
        def canonicalized(driver):
            block, *_ = block_with_chain()
            sink = scf.YieldOp.create([block.ops[-1].results[0]])
            block.add_op(sink)
            wrapper = _wrap(block)
            drive_patterns(wrapper, DEFAULT_PATTERNS, driver=driver)
            return print_operation(wrapper)

        assert canonicalized("worklist") == canonicalized("sweep")

    def test_driver_instances_are_cached(self):
        from repro.ir.rewriter import _cached_driver

        patterns = (FoldPattern(),)
        assert _cached_driver(patterns, 10) is _cached_driver(patterns, 10)
