"""Tests for SSA values and def-use chains."""

import pytest

from repro.dialects import arith
from repro.ir import Block, IRError, Use, i64


def make_constants():
    c1 = arith.ConstantOp.create(1, i64)
    c2 = arith.ConstantOp.create(2, i64)
    return c1, c2


class TestUseTracking:
    def test_operand_registers_use(self):
        c1, c2 = make_constants()
        add = arith.AddiOp.create(c1.result, c2.result)
        assert Use(add, 0) in c1.result.uses
        assert Use(add, 1) in c2.result.uses

    def test_has_uses(self):
        c1, c2 = make_constants()
        assert not c1.result.has_uses
        arith.AddiOp.create(c1.result, c2.result)
        assert c1.result.has_uses

    def test_users_deduplicates(self):
        c1, _ = make_constants()
        add = arith.AddiOp.create(c1.result, c1.result)
        assert c1.result.users() == [add]

    def test_set_operand_moves_use(self):
        c1, c2 = make_constants()
        add = arith.AddiOp.create(c1.result, c1.result)
        add.set_operand(1, c2.result)
        assert Use(add, 1) in c2.result.uses
        assert Use(add, 1) not in c1.result.uses
        assert Use(add, 0) in c1.result.uses

    def test_replace_all_uses_with(self):
        c1, c2 = make_constants()
        a = arith.AddiOp.create(c1.result, c1.result)
        b = arith.MuliOp.create(c1.result, c1.result)
        c1.result.replace_all_uses_with(c2.result)
        assert not c1.result.has_uses
        assert a.operands == (c2.result, c2.result)
        assert b.operands == (c2.result, c2.result)

    def test_replace_all_uses_with_self_is_noop(self):
        c1, _ = make_constants()
        add = arith.AddiOp.create(c1.result, c1.result)
        c1.result.replace_all_uses_with(c1.result)
        assert add.operands == (c1.result, c1.result)

    def test_use_equality_is_slot_identity(self):
        c1, _ = make_constants()
        add = arith.AddiOp.create(c1.result, c1.result)
        assert Use(add, 0) == Use(add, 0)
        assert Use(add, 0) != Use(add, 1)


class TestValueIdentity:
    def test_values_compare_by_identity(self):
        c1, c2 = make_constants()
        assert c1.result != c2.result
        assert c1.result == c1.result

    def test_owner_of_result(self):
        c1, _ = make_constants()
        assert c1.result.owner is c1

    def test_owner_of_block_argument(self):
        block = Block(arg_types=[i64])
        assert block.args[0].owner is block

    def test_type_checked(self):
        with pytest.raises(TypeError):
            arith.ConstantOp(result_types=["not a type"])


class TestEraseSemantics:
    def test_erase_with_uses_raises(self):
        c1, c2 = make_constants()
        arith.AddiOp.create(c1.result, c2.result)
        with pytest.raises(IRError):
            c1.erase()

    def test_erase_releases_uses(self):
        c1, c2 = make_constants()
        add = arith.AddiOp.create(c1.result, c2.result)
        add.erase()
        assert not c1.result.has_uses
        assert not c2.result.has_uses
