"""Tests for IR attributes and types."""

import pytest

from repro.ir import (
    ArrayAttr,
    BoolAttr,
    DictAttr,
    FunctionType,
    IndexType,
    IntegerAttr,
    IntegerType,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
    i1,
    i32,
    i64,
    index,
)


class TestIntegerType:
    def test_str(self):
        assert str(IntegerType(32)) == "i32"
        assert str(IntegerType(1)) == "i1"

    def test_equality_by_value(self):
        assert IntegerType(64) == i64
        assert IntegerType(32) != i64

    def test_hashable(self):
        assert len({IntegerType(8), IntegerType(8), IntegerType(16)}) == 2

    @pytest.mark.parametrize("width", [0, -1, -64])
    def test_invalid_width_rejected(self, width):
        with pytest.raises(ValueError):
            IntegerType(width)

    def test_singletons_consistent(self):
        assert i1.width == 1
        assert i32.width == 32
        assert i64.width == 64


class TestIndexType:
    def test_str(self):
        assert str(index) == "index"

    def test_distinct_from_integers(self):
        assert index != i64
        assert IndexType() == index


class TestFunctionType:
    def test_single_result_str(self):
        ft = FunctionType.from_lists([i64, i32], [i64])
        assert str(ft) == "(i64, i32) -> i64"

    def test_multi_result_str(self):
        ft = FunctionType.from_lists([i64], [i64, i1])
        assert str(ft) == "(i64) -> (i64, i1)"

    def test_empty(self):
        ft = FunctionType.from_lists([], [])
        assert str(ft) == "() -> ()"

    def test_equality(self):
        a = FunctionType.from_lists([i64], [i64])
        b = FunctionType((i64,), (i64,))
        assert a == b


class TestScalarAttrs:
    def test_integer_attr_str(self):
        assert str(IntegerAttr(5, i32)) == "5 : i32"

    def test_integer_attr_default_type(self):
        assert IntegerAttr(7).type == i64

    def test_bool_attr(self):
        assert str(BoolAttr(True)) == "true"
        assert str(BoolAttr(False)) == "false"

    def test_string_attr(self):
        assert str(StringAttr("gemmini")) == '"gemmini"'

    def test_symbol_ref(self):
        assert str(SymbolRefAttr("main")) == "@main"

    def test_unit(self):
        assert str(UnitAttr()) == "unit"
        assert UnitAttr() == UnitAttr()


class TestContainerAttrs:
    def test_array_attr(self):
        arr = ArrayAttr.from_list([IntegerAttr(1, i64), StringAttr("x")])
        assert len(arr) == 2
        assert arr[1] == StringAttr("x")
        assert list(arr) == [IntegerAttr(1, i64), StringAttr("x")]

    def test_array_str(self):
        arr = ArrayAttr.from_list([BoolAttr(True)])
        assert str(arr) == "[true]"

    def test_dict_attr_roundtrip(self):
        d = DictAttr.from_dict({"a": IntegerAttr(1, i64), "b": BoolAttr(False)})
        assert d.as_dict()["b"] == BoolAttr(False)

    def test_dict_attr_preserves_order(self):
        d = DictAttr.from_dict({"z": BoolAttr(True), "a": BoolAttr(False)})
        assert [k for k, _ in d.entries] == ["z", "a"]

    def test_nested_attrs_hashable(self):
        inner = ArrayAttr.from_list([IntegerAttr(3, i32)])
        outer = DictAttr.from_dict({"k": inner})
        assert hash(outer) == hash(DictAttr.from_dict({"k": inner}))
