"""Tests for blocks and regions."""

import pytest

from repro.dialects import arith, scf
from repro.ir import Block, IRError, Region, i64, index, values_defined_above


class TestBlockOps:
    def test_add_and_index(self):
        block = Block()
        c1 = arith.ConstantOp.create(1, i64)
        c2 = arith.ConstantOp.create(2, i64)
        block.add_ops([c1, c2])
        assert block.index_of(c2) == 1
        assert len(block) == 2

    def test_insert_before_after(self):
        block = Block()
        c1 = arith.ConstantOp.create(1, i64)
        c3 = arith.ConstantOp.create(3, i64)
        block.add_ops([c1, c3])
        c2 = arith.ConstantOp.create(2, i64)
        block.insert_op_after(c1, c2)
        c0 = arith.ConstantOp.create(0, i64)
        block.insert_op_before(c1, c0)
        values = [op.value for op in block.ops]
        assert values == [0, 1, 2, 3]

    def test_first_last_op(self):
        block = Block()
        assert block.first_op is None
        assert block.last_op is None
        c = arith.ConstantOp.create(1, i64)
        block.add_op(c)
        assert block.first_op is c
        assert block.last_op is c

    def test_terminator(self):
        block = Block()
        assert block.terminator is None
        block.add_op(arith.ConstantOp.create(1, i64))
        assert block.terminator is None
        y = scf.YieldOp.create()
        block.add_op(y)
        assert block.terminator is y

    def test_detach_unowned_raises(self):
        block = Block()
        c = arith.ConstantOp.create(1, i64)
        with pytest.raises(IRError):
            block.detach_op(c)

    def test_iteration(self):
        block = Block([arith.ConstantOp.create(i, i64) for i in range(3)])
        assert [op.value for op in block] == [0, 1, 2]


class TestBlockArguments:
    def test_add_arg(self):
        block = Block()
        arg = block.add_arg(i64, "x")
        assert arg.index == 0
        assert arg.name_hint == "x"
        assert block.args == [arg]

    def test_erase_arg_renumbers(self):
        block = Block(arg_types=[i64, i64, i64])
        middle = block.args[1]
        block.erase_arg(middle)
        assert [a.index for a in block.args] == [0, 1]

    def test_erase_used_arg_raises(self):
        block = Block(arg_types=[i64])
        arith.AddiOp.create(block.args[0], block.args[0])
        with pytest.raises(IRError):
            block.erase_arg(block.args[0])


class TestRegion:
    def test_single_block_accessor(self):
        region = Region([Block()])
        assert region.block is region.blocks[0]

    def test_multi_block_accessor_raises(self):
        region = Region([Block(), Block()])
        with pytest.raises(IRError):
            region.block

    def test_empty(self):
        assert Region([]).empty
        assert Region([Block()]).empty
        assert not Region([Block([scf.YieldOp.create()])]).empty

    def test_block_double_add_raises(self):
        block = Block()
        Region([block])
        with pytest.raises(IRError):
            Region([block])


class TestValuesDefinedAbove:
    def test_captures_external_values(self):
        outer = arith.ConstantOp.create(5, index)
        lb = arith.ConstantOp.create(0, index)
        ub = arith.ConstantOp.create(4, index)
        step = arith.ConstantOp.create(1, index)
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        add = arith.AddiOp.create(outer.result, loop.induction_var)
        loop.body.add_op(add)
        loop.body.add_op(scf.YieldOp.create())
        captured = values_defined_above(loop.regions[0])
        assert outer.result in captured
        assert loop.induction_var not in captured

    def test_internal_values_not_captured(self):
        lb = arith.ConstantOp.create(0, index)
        ub = arith.ConstantOp.create(4, index)
        step = arith.ConstantOp.create(1, index)
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        inner = arith.ConstantOp.create(1, index)
        add = arith.AddiOp.create(inner.result, inner.result)
        loop.body.add_ops([inner, add, scf.YieldOp.create()])
        captured = values_defined_above(loop.regions[0])
        assert inner.result not in captured
