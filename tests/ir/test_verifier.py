"""Tests for IR verification: dominance, terminators, structure."""

import pytest

from repro.dialects import arith, func, scf
from repro.dialects.builtin import ModuleOp
from repro.ir import (
    Block,
    FunctionType,
    VerifyError,
    i64,
    index,
    parse_module,
    verify_operation,
)


def make_func(body_ops, results=()):
    block = Block(body_ops)
    fn = func.FuncOp.create("f", FunctionType.from_lists([], list(results)), block)
    return ModuleOp.create([fn])


class TestDominance:
    def test_use_before_def_rejected(self):
        c = arith.ConstantOp.create(1, i64)
        add = arith.AddiOp.create(c.result, c.result)
        # add placed before c: dominance violation.
        module = make_func([add, c, func.ReturnOp.create()])
        with pytest.raises(VerifyError, match="dominance"):
            verify_operation(module)

    def test_use_after_def_accepted(self):
        c = arith.ConstantOp.create(1, i64)
        add = arith.AddiOp.create(c.result, c.result)
        module = make_func([c, add, func.ReturnOp.create()])
        verify_operation(module)

    def test_region_use_of_enclosing_value(self):
        module = parse_module(
            """
            func.func @f() -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              %c9 = arith.constant 9 : index
              scf.for %i = %c0 to %c9 step %c1 {
                %x = arith.addi %c1, %i : index
                scf.yield
              }
              func.return
            }
            """
        )
        verify_operation(module)

    def test_value_escaping_region_rejected(self):
        lb = arith.ConstantOp.create(0, index)
        ub = arith.ConstantOp.create(2, index)
        step = arith.ConstantOp.create(1, index)
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        inner = arith.ConstantOp.create(5, index)
        loop.body.add_ops([inner, scf.YieldOp.create()])
        # Use the loop-internal value outside the loop.
        escape = arith.AddiOp.create(inner.result, inner.result)
        module = make_func(
            [lb, ub, step, loop, escape, func.ReturnOp.create()]
        )
        with pytest.raises(VerifyError, match="dominance"):
            verify_operation(module)

    def test_isolated_from_above_blocks_capture(self):
        c = arith.ConstantOp.create(1, i64)
        # A function body using a value from outside the function.
        ret = func.ReturnOp.create([c.result])
        inner = func.FuncOp.create(
            "inner", FunctionType.from_lists([], [i64]), Block([ret])
        )
        module = ModuleOp.create([c, inner])
        with pytest.raises(VerifyError):
            verify_operation(module)


class TestTerminators:
    def test_terminator_must_be_last(self):
        c = arith.ConstantOp.create(1, i64)
        module = make_func([func.ReturnOp.create(), c])
        with pytest.raises(VerifyError, match="terminator"):
            verify_operation(module)

    def test_missing_return_rejected(self):
        module = make_func([arith.ConstantOp.create(1, i64)])
        with pytest.raises(VerifyError, match="func.return"):
            verify_operation(module)


class TestOpSpecificVerification:
    def test_for_yield_arity_checked(self):
        module = parse_module(
            """
            func.func @f() -> () {
              %c0 = arith.constant 0 : index
              %c1 = arith.constant 1 : index
              scf.for %i = %c0 to %c1 step %c1 {
                scf.yield
              }
              func.return
            }
            """
        )
        loop = next(o for o in module.walk() if isinstance(o, scf.ForOp))
        loop.yield_op.set_operands([loop.induction_var])
        with pytest.raises(VerifyError):
            verify_operation(module)

    def test_return_type_mismatch(self):
        c = arith.ConstantOp.create(1, i64)
        module = make_func([c, func.ReturnOp.create([c.result])], results=[index])
        with pytest.raises(VerifyError):
            verify_operation(module)

    def test_def_use_consistency_checked(self):
        c = arith.ConstantOp.create(1, i64)
        add = arith.AddiOp.create(c.result, c.result)
        module = make_func([c, add, func.ReturnOp.create()])
        # Corrupt the use list directly.
        from repro.ir import Use

        c.result.remove_use(Use(add, 0))
        with pytest.raises(VerifyError, match="def-use"):
            verify_operation(module)
