"""Round-trip and error tests for the textual printer/parser pair."""

import pytest

from repro.ir import ParseError, parse_module, parse_operation, verify_operation
from repro.ir.parser import tokenize


def roundtrip(text: str) -> str:
    module = parse_module(text)
    verify_operation(module)
    printed = str(module)
    module2 = parse_module(printed)
    verify_operation(module2)
    assert str(module2) == printed, "second round-trip diverged"
    return printed


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('%x = "foo.bar"() : () -> ()')]
        assert kinds[:3] == ["PERCENT", "PUNCT", "STRING"]

    def test_comments_skipped(self):
        tokens = tokenize("// a comment\n%x")
        assert [t.kind for t in tokens] == ["PERCENT", "EOF"]

    def test_line_numbers(self):
        tokens = tokenize("\n\n%x")
        assert tokens[0].line == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("€")

    def test_arrow_token(self):
        assert tokenize("->")[0].kind == "ARROW"


class TestRoundTrips:
    def test_constants_and_arith(self):
        roundtrip(
            """
            builtin.module {
              func.func @f(%a : i64) -> (i64) {
                %c = arith.constant 3 : i64
                %s = arith.shli %a, %c : i64
                %o = arith.ori %s, %c : i64
                %m = arith.muli %o, %o : i64
                func.return %m : i64
              }
            }
            """
        )

    def test_cmp_select(self):
        roundtrip(
            """
            builtin.module {
              func.func @f(%a : i64, %b : i64) -> (i64) {
                %c = arith.cmpi slt, %a, %b : i64
                %r = arith.select %c, %a, %b : i64
                func.return %r : i64
              }
            }
            """
        )

    def test_nested_loops_with_iter_args(self):
        roundtrip(
            """
            builtin.module {
              func.func @f() -> (index) {
                %c0 = arith.constant 0 : index
                %c1 = arith.constant 1 : index
                %c4 = arith.constant 4 : index
                %sum = scf.for %i = %c0 to %c4 step %c1 iter_args(%acc = %c0) -> (index) {
                  %inner = scf.for %j = %c0 to %c4 step %c1 iter_args(%acc2 = %acc) -> (index) {
                    %n = arith.addi %acc2, %j : index
                    scf.yield %n : index
                  }
                  scf.yield %inner : index
                }
                func.return %sum : index
              }
            }
            """
        )

    def test_if_else_with_results(self):
        roundtrip(
            """
            builtin.module {
              func.func @f(%cond : i1, %a : i64, %b : i64) -> (i64) {
                %r = scf.if %cond -> (i64) {
                  scf.yield %a : i64
                } else {
                  scf.yield %b : i64
                }
                func.return %r : i64
              }
            }
            """
        )

    def test_if_without_else(self):
        printed = roundtrip(
            """
            builtin.module {
              func.func @f(%cond : i1) -> () {
                scf.if %cond {
                  %c = arith.constant 1 : i64
                  scf.yield
                }
                func.return
              }
            }
            """
        )
        assert "else" not in printed

    def test_accfg_cluster(self):
        printed = roundtrip(
            """
            builtin.module {
              func.func @f(%v : i64) -> () {
                %s = accfg.setup on "toyvec" ("n" = %v : i64) : !accfg.state<"toyvec">
                %s2 = accfg.setup on "toyvec" from %s ("op" = %v : i64) : !accfg.state<"toyvec">
                %t = accfg.launch %s2 : !accfg.token<"toyvec">
                accfg.await %t
                accfg.reset %s2
                func.return
              }
            }
            """
        )
        assert 'accfg.setup on "toyvec" from' in printed

    def test_launch_with_fields(self):
        roundtrip(
            """
            builtin.module {
              func.func @f(%v : i64) -> () {
                %s = accfg.setup on "gemmini" () : !accfg.state<"gemmini">
                %t = accfg.launch %s ("op" = %v : i64) : !accfg.token<"gemmini">
                func.return
              }
            }
            """
        )

    def test_generic_unregistered_op(self):
        printed = roundtrip(
            """
            builtin.module {
              func.func @f(%a : i64) -> () {
                "foreign.barrier"(%a) {tag = 7 : i64} : (i64) -> ()
                func.return
              }
            }
            """
        )
        assert '"foreign.barrier"' in printed

    def test_function_call_and_declaration(self):
        roundtrip(
            """
            builtin.module {
              func.func @helper(i64) -> (i64)
              func.func @main(%a : i64) -> (i64) {
                %r = func.call @helper(%a) : (i64) -> (i64)
                func.return %r : i64
              }
            }
            """
        )

    def test_bare_ops_without_module_wrapper(self):
        module = parse_module("func.func @f() -> () { func.return }")
        assert module.name == "builtin.module"

    def test_name_hints_preserved(self):
        printed = roundtrip(
            """
            builtin.module {
              func.func @f() -> () {
                %my_value = arith.constant 1 : i64
                func.return
              }
            }
            """
        )
        assert "%my_value" in printed


class TestParseErrors:
    def test_undefined_value(self):
        with pytest.raises(ParseError, match="undefined value"):
            parse_module("func.func @f() -> () { %x = arith.addi %y, %y : i64 \n func.return }")

    def test_unknown_op(self):
        with pytest.raises(ParseError, match="unknown operation"):
            parse_module("func.func @f() -> () { frobnicate %x \n func.return }")

    def test_result_count_mismatch(self):
        with pytest.raises(ParseError, match="results"):
            parse_operation('%a, %b = "test.op"() : () -> (i64)')

    def test_operand_type_count_mismatch(self):
        with pytest.raises(ParseError, match="operand"):
            parse_module(
                """
                func.func @f(%a : i64) -> () {
                  "test.op"(%a) : (i64, i64) -> ()
                  func.return
                }
                """
            )

    def test_unknown_type(self):
        with pytest.raises(ParseError, match="unknown type"):
            parse_module("func.func @f(%a : floof) -> () { func.return }")

    def test_unknown_accfg_type_kind(self):
        with pytest.raises(ParseError, match="unknown accfg type"):
            parse_module('func.func @f(%a : !accfg.blah<"x">) -> () { func.return }')

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_operation("func.return }")


class TestValueNaming:
    def test_colliding_hints_get_suffixes(self):
        from repro.dialects import arith as _arith
        from repro.ir import Printer, i64

        a = _arith.ConstantOp.create(1, i64)
        b = _arith.ConstantOp.create(2, i64)
        a.result.name_hint = "x"
        b.result.name_hint = "x"
        printer = Printer()
        name_a = printer.assign_name(a.result)
        name_b = printer.assign_name(b.result)
        assert name_a == "x"
        assert name_b == "x_1"

    def test_invalid_hint_falls_back_to_number(self):
        from repro.dialects import arith as _arith
        from repro.ir import Printer, i64

        a = _arith.ConstantOp.create(1, i64)
        a.result.name_hint = "not a valid name!"
        assert Printer().assign_name(a.result) == "0"
