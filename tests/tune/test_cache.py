"""The persistent surrogate-score cache: keying, round-trips, corruption."""

import json

from repro.tune import ScoreCache, score_key
from repro.tune.cache import SCHEMA
from repro.tune.surrogate import SURROGATE_VERSION


class TestScoreKey:
    def test_embeds_every_identity_component(self):
        key = score_key("fp", "full", "opengemm")
        assert key == f"fp|full|opengemm|v{SURROGATE_VERSION}"

    def test_distinct_pipelines_do_not_collide(self):
        assert score_key("fp", "full", "x") != score_key("fp", "dedup", "x")


class TestScoreCache:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "scores.json")
        cache = ScoreCache(path)
        assert cache.get("k") is None
        cache.put("k", {"total_cycles_est": 1.0})
        cache.save()

        warm = ScoreCache(path)
        assert warm.get("k") == {"total_cycles_est": 1.0}
        assert warm.hits == 1 and warm.misses == 0

    def test_save_without_path_is_a_noop(self):
        cache = ScoreCache(None)
        cache.put("k", {"v": 1})
        cache.save()  # must not raise

    def test_corrupt_file_reads_as_empty(self, tmp_path):
        path = tmp_path / "scores.json"
        path.write_text("{ not json")
        cache = ScoreCache(str(path))
        assert cache.scores == {}

    def test_schema_mismatch_reads_as_empty(self, tmp_path):
        path = tmp_path / "scores.json"
        path.write_text(json.dumps({"schema": "other/9", "scores": {"k": {}}}))
        cache = ScoreCache(str(path))
        assert cache.scores == {}

    def test_written_file_carries_schema(self, tmp_path):
        path = tmp_path / "scores.json"
        cache = ScoreCache(str(path))
        cache.put("k", {"v": 1})
        cache.save()
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_clean_cache_does_not_rewrite(self, tmp_path):
        path = tmp_path / "scores.json"
        cache = ScoreCache(str(path))
        cache.put("k", {"v": 1})
        cache.save()
        stamp = path.stat().st_mtime_ns
        cache.put("k", {"v": 1})  # identical value: still clean
        cache.save()
        assert path.stat().st_mtime_ns == stamp

    def test_seed_preloads_without_dirtying(self, tmp_path):
        path = tmp_path / "scores.json"
        cache = ScoreCache(str(path))
        cache.seed({"k": {"v": 1}})
        assert cache.get("k") == {"v": 1}
        cache.save()
        assert not path.exists()

    def test_seed_does_not_clobber_existing(self):
        cache = ScoreCache(None)
        cache.put("k", {"v": 2})
        cache.seed({"k": {"v": 1}})
        assert cache.scores["k"] == {"v": 2}

    def test_hit_rate(self):
        cache = ScoreCache(None)
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.get("absent")
        assert cache.hit_rate == 0.5
