"""The symbolic surrogate: exactness, field contract, and its relation to
real simulated cycles on concrete candidates."""

import pytest

from repro.backends.base import get_accelerator
from repro.interp import run_module
from repro.passes.pipeline import pipeline_by_name
from repro.sim import CoSimulator
from repro.tune import Candidate, get_space, score_candidate

FIELDS = {
    "total_cycles_est", "host_cycles", "accel_cycles_exposed",
    "config_cycles", "config_bytes", "launches", "ops", "i_oc",
}


def _simulate(space, cand, size):
    built = space.build(cand, size, seed=0)
    pipeline_by_name(cand.pipeline).run(built.module)
    sim = CoSimulator(
        memory=built.memory,
        cost_model=get_accelerator(space.host_accelerator).host_cost_model(),
        functional=True,
    )
    run_module(built.module, sim, args=built.main_args)
    return sim.total_cycles


@pytest.mark.parametrize("family", ["opengemm", "gemmini", "mlp"])
def test_score_shape_and_positivity(family):
    space = get_space(family)
    size = space.quick_sizes[0]
    score = score_candidate(space, space.default(size), size)
    assert set(score) == FIELDS
    assert score["total_cycles_est"] > 0
    assert score["config_bytes"] > 0
    assert score["launches"] > 0
    assert score["i_oc"] == pytest.approx(
        score["ops"] / score["config_bytes"], rel=1e-3
    )


def test_gemmini_estimate_tracks_simulation_closely():
    # No overlap on the RoCC interface: host and device cycles simply add,
    # so the estimate should be nearly exact (small constant drift only).
    space = get_space("gemmini")
    cand = space.default(32)
    score = score_candidate(space, cand, 32)
    simulated = _simulate(space, cand, 32)
    assert score["total_cycles_est"] == pytest.approx(simulated, rel=0.05)


def test_overlap_pipeline_scores_below_nonoverlap():
    # Same schedule, overlap-capable vs not: the surrogate must credit the
    # hidden configuration time.
    space = get_space("opengemm")
    base = Candidate.make(
        "opengemm", "dedup", tile_m=8, tile_n=8, loop_order="flat"
    )
    over = Candidate.make(
        "opengemm", "full", tile_m=8, tile_n=8, loop_order="flat"
    )
    assert not space.overlap_hides(base)
    assert space.overlap_hides(over)
    s_base = score_candidate(space, base, 32)
    s_over = score_candidate(space, over, 32)
    assert s_over["total_cycles_est"] < s_base["total_cycles_est"]
    assert (
        s_over["accel_cycles_exposed"] < s_base["accel_cycles_exposed"]
    )


def test_score_is_deterministic():
    space = get_space("opengemm")
    cand = space.default(32)
    assert score_candidate(space, cand, 32) == score_candidate(space, cand, 32)
