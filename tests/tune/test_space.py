"""Schedule-space validity: every enumerated candidate must be buildable."""

import pytest

from repro.backends import gemmini as gemmini_backend
from repro.backends import opengemm as opengemm_backend
from repro.tune import SPACES, Candidate, get_space
from repro.workloads.matmul import OpenGemmSchedule


class TestCandidate:
    def test_params_are_order_insensitive(self):
        a = Candidate.make("opengemm", "full", tile_m=8, tile_n=16)
        b = Candidate.make("opengemm", "full", tile_n=16, tile_m=8)
        assert a == b
        assert hash(a) == hash(b)
        assert a.key == b.key

    def test_doc_round_trip(self):
        cand = Candidate.make(
            "gemmini", "unroll-full", chunk=32, loop_order="kij",
            specialize_size=True,
        )
        assert Candidate.from_doc(cand.to_doc()) == cand

    def test_param_lookup(self):
        cand = Candidate.make("mlp", "full", targets="ogo", ew_chunk=64)
        assert cand.param("targets") == "ogo"
        assert cand.param("missing") is None
        assert cand.param("missing", 7) == 7

    def test_key_is_stable_and_readable(self):
        cand = Candidate.make("opengemm", "dedup", tile_m=8, tile_n=16,
                              loop_order="ij")
        assert cand.key == "opengemm|dedup|loop_order=ij,tile_m=8,tile_n=16"


class TestGrids:
    @pytest.mark.parametrize("family", sorted(SPACES))
    @pytest.mark.parametrize("quick", [False, True])
    def test_default_is_in_grid_and_grid_is_unique(self, family, quick):
        space = get_space(family)
        size = space.quick_sizes[0]
        grid = space.grid(size, quick=quick)
        assert space.default(size) in grid
        assert len(grid) == len(set(grid))
        assert all(c.family == family for c in grid)

    def test_opengemm_tiles_divide_and_fit(self):
        space = get_space("opengemm")
        for size in space.sizes:
            for cand in space.grid(size):
                tile_m, tile_n = cand.param("tile_m"), cand.param("tile_n")
                assert size % tile_m == 0 and size % tile_n == 0
                schedule = OpenGemmSchedule(tile_m=tile_m, tile_n=tile_n)
                assert (
                    schedule.scratchpad_bytes(size)
                    <= opengemm_backend.SCRATCHPAD_BYTES
                )

    def test_gemmini_unroll_requires_specialization(self):
        space = get_space("gemmini")
        for cand in space.grid(64):
            chunk = cand.param("chunk")
            assert chunk % gemmini_backend.ARRAY_DIM == 0
            assert chunk <= gemmini_backend.max_invocation_edge(64)
            if cand.pipeline == "unroll-full":
                assert cand.param("specialize_size") is True

    def test_mlp_grid_covers_all_assignments(self):
        space = get_space("mlp")
        targets = {c.param("targets") for c in space.grid(32)}
        assert len(targets) == 2 ** space.LAYERS

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown tuning family"):
            get_space("nope")


class TestNeighbors:
    @pytest.mark.parametrize("family", sorted(SPACES))
    def test_neighbors_of_default_are_valid_moves(self, family):
        space = get_space(family)
        size = space.quick_sizes[0]
        default = space.default(size)
        moves = space.neighbors(default, size)
        assert moves
        assert default not in moves
        # Every move stays buildable (build raising would kill the search).
        for move in moves:
            built = space.build(move, size, seed=0)
            assert built.module is not None


class TestBuild:
    @pytest.mark.parametrize("family", sorted(SPACES))
    def test_default_builds_with_positive_work(self, family):
        space = get_space(family)
        size = space.quick_sizes[0]
        built = space.build(space.default(size), size, seed=0)
        assert built.total_ops > 0
        assert built.workload is not None

    def test_same_candidate_builds_identical_ir(self):
        from repro.engine.cache import module_fingerprint

        space = get_space("opengemm")
        cand = space.default(32)
        a = space.build(cand, 32, seed=0)
        b = space.build(cand, 32, seed=0)
        assert module_fingerprint(a.module) == module_fingerprint(b.module)
