"""The search driver: winners, oracle gates, dedup, cache warmth, resume,
and shard determinism."""

import json

import pytest

from repro.tune import ScoreCache, TuneConfig, run_tune
from repro.tune.search import (
    REPORT_SCHEMA,
    _FamilyState,
    _pareto_frontier,
    _score_new,
)
from repro.tune.space import Candidate, get_space


def _without_stats(results):
    """Search results minus the cache bookkeeping (which legitimately
    differs between a cold and a warm run)."""
    return [
        {k: v for k, v in section.items() if k != "stats"}
        for section in results
    ]


def _quick_config(**overrides):
    defaults = dict(
        families=("opengemm",), sizes=(32,), quick=True, jobs=1, seed=0,
        refine_rounds=1,
    )
    defaults.update(overrides)
    return TuneConfig(**defaults)


@pytest.fixture(scope="module")
def quick_report():
    return run_tune(_quick_config())


class TestTuneFamily:
    def test_winner_strictly_beats_default(self, quick_report):
        section = quick_report["results"][0]
        assert (
            section["best"]["simulated_cycles"]
            < section["default"]["simulated_cycles"]
        )
        assert section["improvement_pct"] > 0

    def test_zero_oracle_mismatches_and_all_correct(self, quick_report):
        section = quick_report["results"][0]
        assert section["oracle_mismatches"] == 0
        for entry in section["validated"]:
            assert entry["mismatches"] == []
            assert entry["correct"] is True

    def test_ranking_uses_simulated_cycles(self, quick_report):
        cycles = [
            e["simulated_cycles"]
            for e in quick_report["results"][0]["validated"]
        ]
        assert cycles == sorted(cycles)

    def test_default_is_always_validated(self, quick_report):
        section = quick_report["results"][0]
        keys = {e["key"] for e in section["validated"]}
        assert section["default"]["key"] in keys

    def test_stats_add_up(self, quick_report):
        stats = quick_report["results"][0]["stats"]
        assert stats["candidates"] == (
            stats["unique"] + stats["deduped"]
        )
        assert stats["scored"] + stats["cache_hits"] == stats["unique"]
        assert stats["failed"] == 0

    def test_report_schema_and_no_timing_fields(self, quick_report):
        assert quick_report["schema"] == REPORT_SCHEMA
        text = json.dumps(quick_report)
        assert "wall" not in text
        assert "jobs" not in json.dumps(quick_report["config"])


class TestDeterminismAndCache:
    def test_byte_identical_at_any_job_count(self, quick_report):
        sharded = run_tune(_quick_config(jobs=2))
        assert json.dumps(sharded, sort_keys=True) == json.dumps(
            quick_report, sort_keys=True
        )

    def test_warm_persistent_cache_rescores_nothing(self, tmp_path):
        path = str(tmp_path / "scores.json")
        cold = run_tune(_quick_config(), cache_path=path)
        assert cold["cache"]["scored"] > 0
        warm = run_tune(_quick_config(), cache_path=path)
        assert warm["cache"]["scored"] == 0
        assert warm["cache"]["hit_rate"] == 1.0
        # Warm results are the search results, not a degraded subset.
        assert json.dumps(
            _without_stats(warm["results"]), sort_keys=True
        ) == json.dumps(_without_stats(cold["results"]), sort_keys=True)

    def test_resume_from_report_rescores_nothing(self, quick_report):
        resumed = run_tune(
            _quick_config(), resume_scores=quick_report["evaluated"]
        )
        assert resumed["cache"]["scored"] == 0
        assert json.dumps(
            _without_stats(resumed["results"]), sort_keys=True
        ) == json.dumps(
            _without_stats(quick_report["results"]), sort_keys=True
        )


class TestParetoFrontier:
    def _state(self, scores):
        state = _FamilyState()
        cands = []
        for index, (est, bytes_) in enumerate(scores):
            cand = Candidate.make("opengemm", "full", tile_m=8 * (index + 1))
            key = f"k{index}"
            state.key_of[cand] = key
            state.scores[key] = {
                "total_cycles_est": est, "config_bytes": bytes_,
            }
            cands.append(cand)
        return cands, state

    def test_dominated_points_are_dropped(self):
        cands, state = self._state([(100, 10), (200, 20), (150, 5)])
        frontier = _pareto_frontier(cands, state)
        # (200, 20) is dominated by (100, 10); the others trade off.
        assert cands[0] in frontier
        assert cands[2] in frontier
        assert cands[1] not in frontier

    def test_single_point_is_the_frontier(self):
        cands, state = self._state([(100, 10)])
        assert _pareto_frontier(cands, state) == cands


class TestStructuralDedup:
    def test_spelled_differently_scored_once(self):
        # An all-gemmini mlp assignment ignores the OpenGeMM tile
        # parameters, so two spellings differing only in tile_m build
        # byte-identical IR and must share one surrogate evaluation.
        space = get_space("mlp")
        cands = [
            Candidate.make(
                "mlp", "full", targets="ggg", tile_m=tile_m, tile_n=8,
                ew_chunk=64,
            )
            for tile_m in (8, 16)
        ]
        config = _quick_config(families=("mlp",))
        cache = ScoreCache(None)
        state = _FamilyState()
        _score_new(space, 32, cands, config, cache, state)
        assert state.deduped == 1
        assert state.scored == 1
        assert state.key_of[cands[0]] == state.key_of[cands[1]]
