"""The deterministic fault model (repro.faults.model)."""

from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultRates


def drive(injector, interactions=40):
    """Run a fixed interaction sequence; returns the decision vector."""
    decisions = []
    for index in range(interactions):
        kind = list(FaultKind)[index % len(FaultKind)]
        decisions.append(injector.should(kind, "toyvec", f"i{index}"))
    return decisions


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(7, FaultRates.uniform(0.3))
        b = FaultInjector(7, FaultRates.uniform(0.3))
        assert drive(a) == drive(b)
        assert a.schedule() == b.schedule()
        assert any(drive(FaultInjector(7, FaultRates.uniform(0.3), 4)))

    def test_different_seeds_diverge(self):
        a = FaultInjector(7, FaultRates.uniform(0.3))
        b = FaultInjector(8, FaultRates.uniform(0.3))
        assert drive(a) != drive(b)

    def test_streams_are_independent_per_kind(self):
        # Consuming extra draws on one kind's stream must not shift any
        # other kind's decisions — each kind indexes its own stream.
        a = FaultInjector(3, FaultRates.uniform(0.5))
        b = FaultInjector(3, FaultRates.uniform(0.5))
        for _ in range(10):
            a.should(FaultKind.DROP_WRITE, "toyvec")
        stalls_a = [a.should(FaultKind.AWAIT_STALL, "toyvec") for _ in range(10)]
        stalls_b = [b.should(FaultKind.AWAIT_STALL, "toyvec") for _ in range(10)]
        assert stalls_a == stalls_b

    def test_corrupt_is_deterministic_and_changes_value(self):
        a = FaultInjector(5, FaultRates())
        b = FaultInjector(5, FaultRates())
        va = a.corrupt(0x1234, bits=32)
        vb = b.corrupt(0x1234, bits=32)
        assert va == vb
        assert va != 0x1234

    def test_stall_polls_bounded(self):
        injector = FaultInjector(0, FaultRates(), max_stall_polls=4)
        draws = {injector.stall_polls() for _ in range(50)}
        assert draws <= set(range(1, 5))
        assert len(draws) > 1  # actually varies


class TestRates:
    def test_uniform(self):
        rates = FaultRates.uniform(0.25)
        for kind in FaultKind:
            assert rates.rate(kind) == 0.25
        assert rates.any()

    def test_zero_rates_never_fire(self):
        injector = FaultInjector(0, FaultRates())
        assert not any(drive(injector))
        assert injector.log == []
        assert not FaultRates().any()

    def test_rate_one_always_fires(self):
        injector = FaultInjector(0, FaultRates.uniform(1.0))
        assert all(drive(injector, 10))
        assert len(injector.log) == 10


class TestSchedule:
    def test_log_records_kind_index_and_detail(self):
        injector = FaultInjector(0, FaultRates(drop_write=1.0))
        injector.should(FaultKind.DROP_WRITE, "gemmini", "k")
        injector.should(FaultKind.AWAIT_STALL, "gemmini")
        injector.should(FaultKind.DROP_WRITE, "gemmini")
        events = injector.log
        assert [e.index for e in events] == [0, 1]
        assert events[0].detail == "k"
        assert "drop-write#0 on gemmini (k)" in injector.format_schedule()

    def test_render_without_detail(self):
        event = FaultEvent(FaultKind.STATE_LOSS, 3, "toyvec")
        assert event.render() == "state-loss#3 on toyvec"
