"""The ``python -m repro faults`` campaign command."""

from repro.__main__ import main


class TestFaultsCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main(
            [
                "faults",
                "--seed",
                "0",
                "--iterations",
                "2",
                "--backend",
                "toyvec",
                "--pipeline",
                "none",
                "--pipeline",
                "full",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "fault campaign: seed 0" in out
        assert "findings:         0" in out

    def test_uniform_rate_flag(self, capsys):
        code = main(
            [
                "faults",
                "--seed",
                "0",
                "--iterations",
                "1",
                "--backend",
                "toyvec",
                "--pipeline",
                "none",
                "--rate",
                "0.3",
            ]
        )
        assert code == 0
        assert "faults injected" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, capsys):
        # rate 1.0 drops every write; the default retry budget cannot win
        # against a 100% fault rate, so the campaign must report findings
        # and exit 1.
        code = main(
            [
                "faults",
                "--seed",
                "0",
                "--iterations",
                "1",
                "--backend",
                "toyvec",
                "--pipeline",
                "none",
                "--rate",
                "1.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "findings" in out

    def test_full_resetup_flag(self, capsys):
        code = main(
            [
                "faults",
                "--seed",
                "0",
                "--iterations",
                "1",
                "--backend",
                "toyvec",
                "--pipeline",
                "full",
                "--resetup",
                "full",
            ]
        )
        assert code == 0, capsys.readouterr().out
