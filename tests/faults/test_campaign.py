"""The seeded fault-injection correctness campaign."""

from repro.faults import FaultRates, RecoveryPolicy
from repro.faults.campaign import run_campaign


class TestCleanCampaign:
    def test_smoke_campaign_is_clean_and_injects_faults(self):
        report = run_campaign(
            seed=0,
            iterations=3,
            backends=["toyvec"],
            pipelines=["none", "full"],
            rates=FaultRates.uniform(0.2),
        )
        assert report.ok, report.summary()
        # 4 runs per (iteration, pipeline): reference, tree recovery, trace
        # recovery, detect-only — minus detect-only runs that (correctly)
        # raised on a detected fault.
        assert report.runs >= 3 * 2 * 3
        assert report.faults_injected > 0
        totals = report.recovery_totals
        assert totals.verify_reads > 0
        assert totals.write_faults + totals.launch_rejects > 0

    def test_campaign_is_deterministic(self):
        kwargs = dict(
            seed=9,
            iterations=2,
            backends=["toyvec"],
            pipelines=["full"],
            rates=FaultRates.uniform(0.3),
        )
        a = run_campaign(**kwargs)
        b = run_campaign(**kwargs)
        assert a.faults_injected == b.faults_injected
        assert a.recovery_totals.as_dict() == b.recovery_totals.as_dict()
        assert a.summary() == b.summary()

    def test_summary_mentions_the_accounting(self):
        report = run_campaign(
            seed=0, iterations=1, backends=["toyvec"], pipelines=["none"]
        )
        summary = report.summary()
        for needle in ("faults injected", "state losses", "findings"):
            assert needle in summary


class TestFindings:
    def test_exhausted_retry_budget_becomes_a_finding(self):
        # Every write drops and there is no retry budget: the recovery run
        # must surface that as a campaign finding, not a crash.
        report = run_campaign(
            seed=0,
            iterations=1,
            backends=["toyvec"],
            pipelines=["none"],
            rates=FaultRates(drop_write=1.0),
            policy=RecoveryPolicy(max_retries=0),
            max_findings=1,
        )
        assert not report.ok
        finding = report.findings[0]
        assert finding.stage == "recovery"
        assert finding.pipeline == "none"
        assert "recovery" in finding.render()

    def test_max_findings_caps_the_run(self):
        report = run_campaign(
            seed=0,
            iterations=5,
            backends=["toyvec"],
            pipelines=["none", "full"],
            rates=FaultRates(drop_write=1.0),
            policy=RecoveryPolicy(max_retries=0),
            max_findings=2,
        )
        assert len(report.findings) == 2


class TestProgress:
    def test_on_progress_called_per_iteration(self):
        seen = []
        run_campaign(
            seed=0,
            iterations=2,
            backends=["toyvec"],
            pipelines=["none"],
            on_progress=lambda done, report: seen.append(done),
        )
        assert seen == [1, 2]
