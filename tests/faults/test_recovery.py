"""Recovery policy knobs and the static minimal-re-setup planner."""

from repro.analysis.dataflow import FieldSet, RegisterLivenessAnalysis
from repro.dialects import accfg, func
from repro.faults import RecoveryPolicy, RecoveryStats, ReliancePlan
from repro.ir import parse_module

# One accelerator, two launches: "op" is relied on across the whole program
# (written once, read by both launches), while "n" is rewritten before the
# second launch can read it.
PROGRAM = """builtin.module {
  func.func @main(%n : i64, %m : i64, %o : i64) -> () {
    %s1 = accfg.setup on "toyvec" ("n" = %n : i64, "op" = %o : i64) : !accfg.state<"toyvec">
    %t1 = accfg.launch %s1 : !accfg.token<"toyvec">
    accfg.await %t1
    %s2 = accfg.setup on "toyvec" from %s1 ("n" = %m : i64) : !accfg.state<"toyvec">
    %t2 = accfg.launch %s2 : !accfg.token<"toyvec">
    accfg.await %t2
    func.return
  }
}
"""

LOOP_PROGRAM = """builtin.module {
  func.func @main(%n : i64) -> () {
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c4 = arith.constant 4 : index
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    scf.for %i = %c0 to %c4 step %c1 {
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }
    func.return
  }
}
"""


def ops_of(module, kind):
    return [op for op in module.walk() if isinstance(op, kind)]


class TestRegisterLiveness:
    def analyze(self, text):
        module = parse_module(text)
        analysis = RegisterLivenessAnalysis("toyvec")
        for op in module.walk():
            if isinstance(op, func.FuncOp) and not op.is_declaration:
                analysis.run_function(op)
        return module, analysis

    def test_rewritten_field_is_dead_relied_field_is_live(self):
        module, analysis = self.analyze(PROGRAM)
        s2 = ops_of(module, accfg.SetupOp)[1]
        live = analysis.live_in[s2]
        # "n" is rewritten by s2 itself before any later launch reads it;
        # "op" flows through to the second launch untouched.
        assert not live.contains("n")
        assert live.contains("op")

    def test_launch_reads_the_whole_register_file(self):
        module, analysis = self.analyze(PROGRAM)
        first_launch = ops_of(module, accfg.LaunchOp)[0]
        live = analysis.live_in[first_launch]
        assert live.is_top
        assert live.contains("n") and live.contains("anything-at-all")

    def test_nothing_live_after_the_last_launch(self):
        module, analysis = self.analyze(PROGRAM)
        last_launch = ops_of(module, accfg.LaunchOp)[1]
        # live_in of the terminator region: check via the await's entry —
        # after the final launch no launch remains to read anything.
        awaits = ops_of(module, accfg.AwaitOp)
        assert analysis.live_in[awaits[1]] == FieldSet.bottom()

    def test_loop_setup_excludes_only_its_own_field(self):
        module, analysis = self.analyze(LOOP_PROGRAM)
        setup = ops_of(module, accfg.SetupOp)[0]
        live = analysis.live_in[setup]
        # The loop's launches may read anything the register file retains
        # (TOP), minus "n" — the setup rewrites that itself either way.
        assert live == FieldSet(is_top=True, names=frozenset({"n"}))


class TestReliancePlan:
    def test_minimal_restore_set_drops_rewritten_fields(self):
        module = parse_module(PROGRAM)
        plan = ReliancePlan(module)
        s2 = ops_of(module, accfg.SetupOp)[1]
        restore = plan.restore_set(s2)
        assert restore.contains("op")
        assert not restore.contains("n")

    def test_launch_site_restores_everything_shadowed(self):
        module = parse_module(LOOP_PROGRAM)
        plan = ReliancePlan(module)
        launch = ops_of(module, accfg.LaunchOp)[0]
        assert plan.restore_set(launch).contains("n")

    def test_unknown_site_is_conservative(self):
        module = parse_module(PROGRAM)
        plan = ReliancePlan(module)
        assert plan.restore_set(ops_of(module, func.ReturnOp)[0]).is_top

    def test_known_retained_names_dedup_assumptions(self):
        module = parse_module(PROGRAM)
        plan = ReliancePlan(module)
        s2 = ops_of(module, accfg.SetupOp)[1]
        # Entering s2 the known-fields analysis pins exactly what s1 wrote.
        assert plan.known_retained(s2) == frozenset({"n", "op"})
        # Cached second query returns the same frozenset.
        assert plan.known_retained(s2) is plan.known_retained(s2)


class TestPolicyAndStats:
    def test_backoff_is_geometric(self):
        policy = RecoveryPolicy(backoff_base=16.0, backoff_factor=2.0)
        assert [policy.backoff(a) for a in range(3)] == [16.0, 32.0, 64.0]

    def test_stats_as_dict_roundtrip(self):
        stats = RecoveryStats(verify_reads=3, state_losses=1, resetup_bytes=40)
        doc = stats.as_dict()
        assert doc["verify_reads"] == 3
        assert doc["state_losses"] == 1
        assert doc["resetup_bytes"] == 40
        assert set(doc) == {
            name for name in RecoveryStats().as_dict()
        }

    def test_default_policy_recovers_minimally(self):
        policy = RecoveryPolicy()
        assert policy.enabled
        assert policy.resetup == "minimal"
        assert policy.max_retries > 0
