"""Property-based tests on co-simulation timing invariants.

Random configure/launch/await traces are replayed against devices with
different configuration schemes; the scheme comparisons the paper makes
analytically (Section 2.2 / 4.3) must hold on every trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import get_accelerator, register_accelerator
from repro.backends.toyvec import ToyVecSpec
from repro.isa import HostCostModel
from repro.sim import CoSimulator


@st.composite
def traces(draw):
    """A list of invocation descriptors: (#fields to write, vector length,
    whether to await)."""
    count = draw(st.integers(min_value=1, max_value=8))
    return [
        (
            draw(st.integers(min_value=0, max_value=5)),
            draw(st.integers(min_value=1, max_value=128)),
            draw(st.booleans()),
        )
        for _ in range(count)
    ]


FIELD_NAMES = ("ptr_x", "ptr_y", "ptr_out", "n", "op")


def replay(trace, accelerator: str) -> CoSimulator:
    sim = CoSimulator(cost_model=HostCostModel(1.0), functional=False)
    tokens = []
    for field_count, length, do_await in trace:
        fields = {FIELD_NAMES[i]: 0 for i in range(field_count)}
        fields["n"] = length
        sim.exec_setup(accelerator, fields)
        tokens.append(sim.exec_launch(accelerator))
        if do_await:
            sim.exec_await(tokens[-1])
    for token in tokens:
        sim.exec_await(token)
    return sim


def _depth_variant(depth: int) -> str:
    name = f"toyvec-prop-q{depth}"
    from repro.backends import get_accelerator_or_none

    if get_accelerator_or_none(name) is None:
        cls = type(
            f"PropToyVecQ{depth}",
            (ToyVecSpec,),
            {"name": name, "launch_queue_depth": depth},
        )
        register_accelerator(cls())
    return name


@settings(max_examples=50, deadline=None)
@given(traces())
def test_concurrent_never_slower_than_sequential(trace):
    concurrent = replay(trace, "toyvec")
    sequential = replay(trace, "toyvec-seq")
    assert concurrent.total_cycles <= sequential.total_cycles + 1e-9


@settings(max_examples=50, deadline=None)
@given(traces())
def test_deeper_queue_never_slower(trace):
    shallow = replay(trace, _depth_variant(1))
    deep = replay(trace, _depth_variant(4))
    assert deep.total_cycles <= shallow.total_cycles + 1e-9


@settings(max_examples=50, deadline=None)
@given(traces())
def test_total_cycles_cover_all_activity(trace):
    sim = replay(trace, "toyvec")
    device = sim.device("toyvec")
    assert sim.total_cycles + 1e-9 >= device.busy_until
    assert sim.total_cycles + 1e-9 >= sim.host_time
    assert device.busy_cycles <= sim.total_cycles + 1e-9


@settings(max_examples=50, deadline=None)
@given(traces())
def test_launch_accounting_consistent(trace):
    sim = replay(trace, "toyvec")
    device = sim.device("toyvec")
    assert device.launch_count == len(trace)
    assert device.total_ops == sum(length for _, length, _ in trace)


@settings(max_examples=50, deadline=None)
@given(traces())
def test_scheme_does_not_change_functional_config(trace):
    """Both schemes commit the same final register contents."""
    concurrent = replay(trace, "toyvec")
    sequential = replay(trace, "toyvec-seq")
    conc = concurrent.device("toyvec")
    seq = sequential.device("toyvec-seq")
    assert conc.registers == seq.registers
