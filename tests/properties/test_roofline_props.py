"""Property-based tests on the roofline model's mathematical invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigRoofline

positive = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
intensity = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)


@given(positive, positive, intensity)
def test_sequential_never_above_concurrent(peak, bw, i_oc):
    r = ConfigRoofline(peak, bw)
    assert r.attainable_sequential(i_oc) <= r.attainable_concurrent(i_oc)


@given(
    st.floats(min_value=1.0, max_value=1e4),
    st.floats(min_value=0.1, max_value=1e3),
    st.floats(min_value=0.1, max_value=1e5),
)
def test_sequential_strictly_below_concurrent_in_moderate_range(peak, bw, i_oc):
    """Strict inequality holds wherever floats don't saturate."""
    r = ConfigRoofline(peak, bw)
    assert r.attainable_sequential(i_oc) < r.attainable_concurrent(i_oc)


@given(positive, positive, intensity)
def test_attainable_never_exceeds_peak(peak, bw, i_oc):
    r = ConfigRoofline(peak, bw)
    assert r.attainable_concurrent(i_oc) <= peak
    assert r.attainable_sequential(i_oc) <= peak


@given(positive, positive, intensity, intensity)
def test_monotone_in_intensity(peak, bw, a, b):
    r = ConfigRoofline(peak, bw)
    lo, hi = min(a, b), max(a, b)
    assert r.attainable_sequential(lo) <= r.attainable_sequential(hi)
    assert r.attainable_concurrent(lo) <= r.attainable_concurrent(hi)


@given(positive, positive)
def test_sequential_half_peak_exactly_at_knee(peak, bw):
    r = ConfigRoofline(peak, bw)
    assert math.isclose(
        r.attainable_sequential(r.knee_intensity), peak / 2, rel_tol=1e-9
    )


@given(positive, positive, intensity)
def test_overlap_headroom_bounded_by_two(peak, bw, i_oc):
    """Concurrent configuration can at most halve the run time (Section 4.3:
    the maximum discrepancy is at the knee, where config time equals compute
    time)."""
    r = ConfigRoofline(peak, bw)
    headroom = r.overlap_headroom(i_oc)
    assert 1.0 <= headroom <= 2.0 + 1e-9


@given(positive, positive, st.floats(min_value=1.01, max_value=100))
def test_increasing_bandwidth_moves_knee_left(peak, bw, factor):
    slow = ConfigRoofline(peak, bw)
    fast = ConfigRoofline(peak, bw * factor)
    assert fast.knee_intensity < slow.knee_intensity


@given(positive, positive, positive, intensity, intensity)
def test_combined_is_min_of_terms(peak, config_bw, mem_bw, i_op, i_oc):
    r = ConfigRoofline(peak, config_bw, mem_bw)
    combined = r.attainable_combined(i_op, i_oc)
    assert combined <= r.attainable_processor(i_op)
    assert combined <= r.attainable_concurrent(i_oc)
    assert combined == min(
        peak, mem_bw * i_op, config_bw * i_oc
    )


@given(positive, positive, intensity)
def test_boundness_consistent_with_attainable(peak, bw, i_oc):
    from repro.core import Boundness

    r = ConfigRoofline(peak, bw)
    region = r.boundness(i_oc)
    if region is Boundness.CONFIG_BOUND:
        assert bw * i_oc < peak
    elif region is Boundness.COMPUTE_BOUND:
        assert bw * i_oc >= peak * (1 - 1e-6)
