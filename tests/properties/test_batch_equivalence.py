"""Property: batch execution is bit-identical to the scalar trace engine.

The standing version of the fuzzer's ``batch-vs-scalar`` oracle: every
generated program is run as a multi-lane batch — one lane replaying the
canonical arguments, one forced down the other branch of the top-level
condition, and (in the fault property) lanes carrying seeded fault
injectors.  Each lane must match an independent scalar run exactly:
results, protocol-error type *and message*, charged cycles, per-device
launch counts, and the final memory image.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    BatchExecutor,
    BatchLane,
    TraceCompileError,
    TraceExecutor,
    compile_module,
)
from repro.faults import FaultInjector, FaultRates
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator
from repro.testing.oracles import _batch_lane_divergences

from .program_gen import build, programs

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

RATE_MIXES = st.sampled_from(
    [
        FaultRates.uniform(0.1),
        FaultRates(state_loss=0.4),
        FaultRates(launch_reject=0.2, await_stall=0.2),
    ]
)


def scalar_run(program, pipeline, args, faults=None):
    """(results, error, sim, memory) of one independent scalar run."""
    built = build(program)
    pipeline_by_name(pipeline).run(built.module)
    compiled = compile_module(built.module)
    sim = CoSimulator(memory=built.memory, faults=faults)
    try:
        results = TraceExecutor(compiled, sim).run("main", list(args))
        error = None
    except Exception as exc:  # noqa: BLE001 - lanes must reproduce it
        results, error = None, (type(exc).__name__, str(exc))
    return results, error, sim, built.memory


def assert_batch_matches(program, pipeline, lane_specs):
    """``lane_specs`` is a list of (args, fault seed or None, rates)."""
    batch_built = build(program)
    pipeline_by_name(pipeline).run(batch_built.module)
    try:
        compiled = compile_module(batch_built.module)
    except TraceCompileError:
        return  # tree-only module: the batch engine doesn't run these
    lanes = []
    expected = []
    for args, fault_seed, rates in lane_specs:
        lane_built = build(program)
        pipeline_by_name(pipeline).run(lane_built.module)
        injector = (
            FaultInjector(fault_seed, rates) if fault_seed is not None else None
        )
        lanes.append(
            BatchLane(
                memory=lane_built.memory, args=list(args), faults=injector
            )
        )
        scalar_faults = (
            FaultInjector(fault_seed, rates) if fault_seed is not None else None
        )
        expected.append(scalar_run(program, pipeline, args, scalar_faults))
    lane_results = BatchExecutor(
        compiled, module=batch_built.module
    ).run(lanes)
    for index, (lane, exp) in enumerate(zip(lane_results, expected)):
        problems = _batch_lane_divergences(lane, *exp)
        assert not problems, f"lane {index}: " + "; ".join(problems)


def branch_lane_specs(program):
    """Canonical args plus the flipped-condition lane (group splitting)."""
    cond = int(program.cond_value)
    return [
        ((cond, 0), None, None),
        ((1 - cond, 0), None, None),
        ((cond, 0), None, None),  # duplicate lane: stays in lockstep
    ]


@RELAXED
@given(programs())
def test_batch_matches_scalar_unoptimized(program):
    assert_batch_matches(program, "none", branch_lane_specs(program))


@RELAXED
@given(programs())
def test_batch_matches_scalar_after_full(program):
    assert_batch_matches(program, "full", branch_lane_specs(program))


@RELAXED
@given(programs())
def test_batch_matches_scalar_after_overlap(program):
    assert_batch_matches(program, "overlap", branch_lane_specs(program))


@RELAXED
@given(programs(), st.integers(min_value=0, max_value=2**32 - 1), RATE_MIXES)
def test_fault_lanes_match_seeded_scalar_runs(program, fault_seed, rates):
    cond = int(program.cond_value)
    assert_batch_matches(
        program,
        "none",
        [
            ((cond, 0), None, None),
            ((cond, 0), fault_seed, rates),
            ((1 - cond, 0), fault_seed + 1, rates),
        ],
    )
