"""Property: the trace-compiled engine is bit-identical to the tree
interpreter on every generated program, before and after optimization.

This is the standing version of the fuzzer's ``trace-vs-tree`` oracle:
results, total cycles, launch counts, instruction traces, timeline spans,
and final memory images must all match exactly.
"""

from hypothesis import HealthCheck, given, settings

from repro.engine import TraceCompileError, compile_module, TraceExecutor
from repro.interp import run_module
from repro.ir import verify_operation
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator
from repro.testing.oracles import _engine_divergences

from .program_gen import build, programs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_both(program, pipeline: str):
    """(tree run, trace run) of one optimized build — or None if the trace
    compiler rejects the module (the oracle falls back to the tree there)."""
    tree_built = build(program)
    pipeline_by_name(pipeline).run(tree_built.module)
    verify_operation(tree_built.module)
    args = [int(program.cond_value), 0]
    tree_sim = CoSimulator(memory=tree_built.memory)
    tree_results = run_module(tree_built.module, tree_sim, args=list(args))[0]

    trace_built = build(program)
    pipeline_by_name(pipeline).run(trace_built.module)
    verify_operation(trace_built.module)
    try:
        compiled = compile_module(trace_built.module)
    except TraceCompileError:
        return None
    trace_sim = CoSimulator(memory=trace_built.memory)
    trace_results = TraceExecutor(compiled, trace_sim).run("main", list(args))

    return (
        tree_results,
        tree_sim,
        tree_built.memory,
        trace_results,
        trace_sim,
        trace_built.memory,
    )


def assert_bit_identical(program, pipeline: str):
    runs = run_both(program, pipeline)
    if runs is None:
        return
    tree_results, tree_sim, tree_mem, trace_results, trace_sim, trace_mem = runs
    problems = _engine_divergences(
        trace_results, trace_sim, trace_mem, tree_results, tree_sim, tree_mem
    )
    assert not problems, f"{pipeline}: " + "; ".join(problems)


@RELAXED
@given(programs())
def test_trace_matches_tree_unoptimized(program):
    assert_bit_identical(program, "none")


@RELAXED
@given(programs())
def test_trace_matches_tree_after_baseline(program):
    assert_bit_identical(program, "baseline")


@RELAXED
@given(programs())
def test_trace_matches_tree_after_dedup(program):
    assert_bit_identical(program, "dedup")


@RELAXED
@given(programs())
def test_trace_matches_tree_after_overlap(program):
    assert_bit_identical(program, "overlap")


@RELAXED
@given(programs())
def test_trace_matches_tree_after_full(program):
    assert_bit_identical(program, "full")
