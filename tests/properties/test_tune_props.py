"""Properties of the autotuner's surrogate and search driver.

Two claims the tuner's design rests on:

1. **Ranking consistency.** The surrogate is allowed to be *approximate*
   (overlap hiding is modeled as an average budget, not a schedule), but a
   candidate it scores *far* better must really simulate better — otherwise
   searching on the surrogate would systematically discard winners before
   validation ever sees them.  "Far" is a generous 2x margin, comfortably
   above the worst distortion the overlap approximation can introduce.
2. **Shard determinism.**  Scores are pure functions of the candidate, the
   shard merge preserves input order, and the report embeds no wall-clock
   or job-count data — so the same (config, seed) must yield a
   byte-identical report at any ``--jobs``.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.base import get_accelerator
from repro.interp import run_module
from repro.passes.pipeline import pipeline_by_name
from repro.sim import CoSimulator
from repro.tune import TuneConfig, get_space, run_tune, score_candidate

RANKING_MARGIN = 2.0

_SPACE = get_space("opengemm")
_SIZE = 32
_GRID = _SPACE.grid(_SIZE, quick=False)

# Scores and simulated cycles are pure functions of the candidate, so the
# property caches them across hypothesis examples.
_scores: dict = {}
_cycles: dict = {}


def _score(cand):
    if cand not in _scores:
        _scores[cand] = score_candidate(_SPACE, cand, _SIZE, seed=0)
    return _scores[cand]


def _simulate(cand):
    if cand not in _cycles:
        built = _SPACE.build(cand, _SIZE, seed=0)
        pipeline_by_name(cand.pipeline).run(built.module)
        sim = CoSimulator(
            memory=built.memory,
            cost_model=get_accelerator(
                _SPACE.host_accelerator
            ).host_cost_model(),
            functional=True,
        )
        run_module(built.module, sim, args=built.main_args)
        _cycles[cand] = sim.total_cycles
    return _cycles[cand]


@given(
    a=st.integers(min_value=0, max_value=len(_GRID) - 1),
    b=st.integers(min_value=0, max_value=len(_GRID) - 1),
)
@settings(max_examples=25, deadline=None)
def test_far_better_estimate_really_simulates_better(a, b):
    lhs, rhs = _GRID[a], _GRID[b]
    est_l = _score(lhs)["total_cycles_est"]
    est_r = _score(rhs)["total_cycles_est"]
    if est_l * RANKING_MARGIN < est_r:
        assert _simulate(lhs) < _simulate(rhs), (
            f"{lhs.key} estimated {est_l} vs {rhs.key} estimated {est_r} "
            f"(>{RANKING_MARGIN}x apart) but simulation disagrees"
        )


@given(jobs=st.sampled_from([2, 3]))
@settings(max_examples=2, deadline=None)
def test_report_is_byte_identical_at_any_job_count(jobs):
    config = dict(
        families=("opengemm",), sizes=(_SIZE,), quick=True, seed=0,
        refine_rounds=1,
    )
    baseline = run_tune(TuneConfig(jobs=1, **config))
    sharded = run_tune(TuneConfig(jobs=jobs, **config))
    assert json.dumps(sharded, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
