"""Property: the static cost engine agrees with the co-simulator.

On loop-free generator programs every trip count is trivially concrete, so
the engine's summary must be *exact* — :func:`compare_with_simulation` has
to return no mismatches for every backend and every optimization pipeline.
This is the same oracle the fuzz driver runs by default; here hypothesis
drives the seed/backend/pipeline space directly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import compare_with_simulation
from repro.interp.interpreter import Interpreter
from repro.ir import parse_module
from repro.passes import PIPELINES, pipeline_by_name
from repro.sim.cosim import CoSimulator
from repro.testing.generator import (
    PROFILES,
    Branch,
    Invoke,
    Loop,
    ProgramSpec,
    build_spec,
    generate_spec,
)

BACKENDS = sorted(PROFILES)


def _strip_loops(stmts):
    """Inline every loop body once, so the program becomes loop-free while
    keeping the invoke/branch mix the generator drew."""
    flat = []
    for stmt in stmts:
        if isinstance(stmt, Loop):
            flat.extend(_strip_loops(stmt.body))
        elif isinstance(stmt, Branch):
            flat.append(
                Branch(_strip_loops(stmt.then), _strip_loops(stmt.orelse))
            )
        else:
            assert isinstance(stmt, Invoke)
            flat.append(stmt)
    return tuple(flat)


def _loop_free_program(seed: int, backend: str):
    spec = generate_spec(random.Random(seed), backend, max_stmts=6)
    spec = ProgramSpec(
        backend=spec.backend,
        stmts=_strip_loops(spec.stmts),
        cond_value=spec.cond_value,
    )
    return build_spec(spec, memory_seed=seed)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    backend=st.sampled_from(BACKENDS),
)
def test_prediction_matches_simulation_exactly(seed, backend):
    built = _loop_free_program(seed, backend)
    sim = CoSimulator(memory=built.memory)
    Interpreter(built.module, sim).run("main", built.args)
    assert compare_with_simulation(built.module, sim, built.args) == []


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    backend=st.sampled_from(BACKENDS),
    pipeline=st.sampled_from(sorted(PIPELINES)),
)
def test_prediction_survives_every_pipeline(seed, backend, pipeline):
    # Optimization must never break the model: after any registered
    # pipeline rewrites the configuration stream, prediction and
    # measurement still agree on the rewritten module.
    built = _loop_free_program(seed, backend)
    pipeline_by_name(pipeline).run(built.module)
    sim = CoSimulator(memory=built.memory)
    Interpreter(built.module, sim).run("main", built.args)
    assert compare_with_simulation(built.module, sim, built.args) == []


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_prediction_roundtrips_through_text(seed):
    # The engine works off parsed IR just as well as built IR: printing
    # and re-parsing the module must not change the verdict.
    built = _loop_free_program(seed, "toyvec")
    reparsed = parse_module(str(built.module))
    sim = CoSimulator(memory=built.memory)
    Interpreter(reparsed, sim).run("main", built.args)
    assert compare_with_simulation(reparsed, sim, built.args) == []
