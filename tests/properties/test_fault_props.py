"""Property: faulted execution never changes results — or fails loudly.

Random accfg programs x random fault schedules x optimization pipelines:

* with recovery enabled, the faulted run's outputs and launch counts are
  identical to the fault-free run of the same program;
* with recovery disabled (detect-only), a faulted run either raises a
  loc-tagged ``InterpreterError`` or is bit-equal to the fault-free run —
  injected faults are never silently absorbed into wrong results;
* the fault schedule and the recovered execution are a pure function of the
  fault seed: re-running is byte-identical.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultRates, RecoveryPolicy, ReliancePlan
from repro.interp import InterpreterError, run_module
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator

from .program_gen import build, programs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: schedules worth exploring: background noise on every kind, plus skewed
#: mixes that hammer one recovery path.  Rates stay low enough that the
#: default bounded-retry budget (8 attempts) recovers with overwhelming
#: probability — an exhausted budget would *correctly* raise, but then the
#: property would not be testing silent corruption any more.
RATE_MIXES = st.sampled_from(
    [
        FaultRates.uniform(0.05),
        FaultRates.uniform(0.1),
        FaultRates(state_loss=0.4),
        FaultRates(drop_write=0.15, corrupt_write=0.15),
        FaultRates(launch_reject=0.2, await_stall=0.2),
    ]
)

PIPELINES_UNDER_TEST = ("none", "baseline", "dedup", "overlap", "full")


def run_one(program, pipeline, injector=None, policy=None):
    built = build(program)
    pipeline_by_name(pipeline).run(built.module)
    reliance = ReliancePlan(built.module) if injector is not None else None
    sim = CoSimulator(
        memory=built.memory,
        faults=injector,
        recovery=policy,
        reliance=reliance,
    )
    run_module(built.module, sim, args=[int(program.cond_value), 0])
    outs = [buf.array.copy() for buf in built.out_buffers]
    return outs, sim


@RELAXED
@given(programs(), st.integers(0, 2**32), RATE_MIXES)
def test_recovery_preserves_results_across_pipelines(program, fault_seed, rates):
    for pipeline in PIPELINES_UNDER_TEST:
        reference, ref_sim = run_one(program, pipeline)
        injector = FaultInjector(fault_seed, rates)
        faulted, fault_sim = run_one(program, pipeline, injector)
        for a, b in zip(reference, faulted):
            assert (a == b).all(), f"pipeline {pipeline} diverged under faults"
        for name in ("toyvec", "toyvec-seq"):
            assert (
                fault_sim.device(name).launch_count
                == ref_sim.device(name).launch_count
            )


@RELAXED
@given(programs(), st.integers(0, 2**32), RATE_MIXES)
def test_detect_only_never_silently_corrupts(program, fault_seed, rates):
    # "full" leans hardest on register retention, so it is the pipeline
    # where an undetected fault would do the most damage.
    reference, _ = run_one(program, "full")
    injector = FaultInjector(fault_seed, rates)
    try:
        outs, _ = run_one(
            program, "full", injector, RecoveryPolicy(enabled=False)
        )
    except InterpreterError:
        return  # detected and raised: the guarantee holds
    for a, b in zip(reference, outs):
        assert (a == b).all(), "undetected fault silently corrupted memory"


@RELAXED
@given(programs(), st.integers(0, 2**32), RATE_MIXES)
def test_fault_schedule_is_reproducible(program, fault_seed, rates):
    first_injector = FaultInjector(fault_seed, rates)
    first_outs, first_sim = run_one(program, "full", first_injector)
    second_injector = FaultInjector(fault_seed, rates)
    second_outs, second_sim = run_one(program, "full", second_injector)
    assert first_injector.schedule() == second_injector.schedule()
    assert first_sim.total_cycles == second_sim.total_cycles
    assert (
        first_sim.recovery_stats.as_dict() == second_sim.recovery_stats.as_dict()
    )
    for a, b in zip(first_outs, second_outs):
        assert (a == b).all()
