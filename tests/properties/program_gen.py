"""Random accfg program generation for property-based testing.

Generates random-but-valid toyvec programs: a sequence of accelerator
invocations (some inside loops, some behind branches), where each invocation
writes a random *subset* of the configuration fields — deliberately relying
on configuration-register retention, which is exactly the behaviour the
dedup pass must preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from hypothesis import strategies as st

from repro.ir import i64
from repro.sim.memory import Memory
from repro.workloads import build_function, new_module
from repro.workloads.irgen import IRGen

VECTOR_LENGTH = 16
FIELD_NAMES = ("ptr_x", "ptr_y", "ptr_out", "n", "op")


@dataclass(frozen=True)
class Invocation:
    """One setup(+launch+await) with a subset of fields."""

    fields: tuple[tuple[str, int], ...]  # name -> symbolic value index
    launch: bool
    # 0 = straight-line; >0 = loop with that many trips; -1 = a loop whose
    # bounds make it execute ZERO times (registers must stay untouched).
    loop_trips: int
    guarded: bool = False  # wrapped in `scf.if %cond`
    accelerator: str = "toyvec"  # or the sequential twin "toyvec-seq"


@dataclass
class GeneratedProgram:
    invocations: tuple[Invocation, ...]
    cond_value: bool = True  # runtime value of the opaque branch condition


@st.composite
def invocations(draw) -> Invocation:
    chosen = draw(
        st.lists(
            st.sampled_from(FIELD_NAMES), min_size=0, max_size=5, unique=True
        )
    )
    fields = tuple(
        (name, draw(st.integers(min_value=0, max_value=2))) for name in chosen
    )
    launch = draw(st.booleans())
    loop_trips = draw(st.sampled_from([0, 0, 0, 1, 2, 3, -1]))
    guarded = draw(st.sampled_from([False, False, False, True]))
    accelerator = draw(st.sampled_from(["toyvec", "toyvec", "toyvec-seq"]))
    return Invocation(fields, launch, loop_trips, guarded, accelerator)


def programs() -> st.SearchStrategy[GeneratedProgram]:
    return st.builds(
        GeneratedProgram,
        st.lists(invocations(), min_size=1, max_size=6).map(tuple),
        st.booleans(),
    )


@dataclass
class BuiltProgram:
    module: object
    memory: Memory
    buffers: list
    out_buffers: list


def build(program: GeneratedProgram, seed: int = 0) -> BuiltProgram:
    """Emit the IR for a generated program, with a fresh memory image."""
    memory = Memory()
    rng = np.random.default_rng(seed)
    buffers = [
        memory.place(rng.integers(-100, 100, VECTOR_LENGTH, dtype=np.int32))
        for _ in range(2)
    ]
    out_buffers = [memory.alloc(VECTOR_LENGTH, np.int32) for _ in range(2)]
    module = new_module()

    def field_value(gen: IRGen, name: str, index: int) -> object:
        if name == "ptr_x" or name == "ptr_y":
            return gen.const(buffers[index % len(buffers)].addr, i64)
        if name == "ptr_out":
            return gen.const(out_buffers[index % len(out_buffers)].addr, i64)
        if name == "n":
            return gen.const((4, 8, VECTOR_LENGTH)[index % 3], i64)
        return gen.const(index % 3, i64)  # op

    from repro.ir import i1, index

    # main(%cond : i1, %rt_zero : index) — %rt_zero is always 0 at runtime
    # but opaque to the optimizer (used as a zero-trip loop bound).
    with build_function(module, "main", input_types=[i1, index]) as (gen, args):
        (cond, rt_zero) = args
        # A safe initial full configuration (per accelerator) so partial
        # updates always act on defined registers.
        for accel in ("toyvec", "toyvec-seq"):
            gen.setup(
                accel,
                [
                    ("ptr_x", gen.const(buffers[0].addr, i64)),
                    ("ptr_y", gen.const(buffers[1].addr, i64)),
                    ("ptr_out", gen.const(out_buffers[0].addr, i64)),
                    ("n", gen.const(VECTOR_LENGTH, i64)),
                    ("op", gen.const(0, i64)),
                ],
            )
        zero = gen.const(0)
        one = gen.const(1)
        for invocation in program.invocations:
            def emit_body(gen: IRGen) -> None:
                fields = [
                    (name, field_value(gen, name, index))
                    for name, index in invocation.fields
                ]
                inner = gen.setup(invocation.accelerator, fields)
                if invocation.launch:
                    token = gen.launch(inner)
                    gen.await_(token)

            def emit_maybe_looped(gen: IRGen) -> None:
                if invocation.loop_trips == -1:
                    # A zero-trip loop: ub = the opaque runtime zero, so the
                    # optimizer cannot prove the trip count and the hoisting
                    # guards stay exercised.
                    with gen.loop(zero, rt_zero, one):
                        emit_body(gen)
                elif invocation.loop_trips:
                    trips = gen.const(invocation.loop_trips)
                    with gen.loop(zero, trips, one):
                        emit_body(gen)
                else:
                    emit_body(gen)

            if invocation.guarded:
                from repro.dialects import scf
                from repro.ir.builder import Builder, InsertPoint

                if_op = gen.builder.insert(scf.IfOp.create(cond))
                inner_gen = IRGen(Builder.at_end(if_op.then_block))
                emit_maybe_looped(inner_gen)
                inner_gen.builder.insert(scf.YieldOp.create())
            else:
                emit_maybe_looped(gen)
    return BuiltProgram(module, memory, buffers, out_buffers)


def golden_result(program: GeneratedProgram, seed: int = 0) -> list[np.ndarray]:
    """Reference semantics: simulate the register file in plain Python."""
    built = build(program, seed)  # fresh image, never executed
    memory = built.memory
    register_files = {
        accel: {
            "ptr_x": built.buffers[0].addr,
            "ptr_y": built.buffers[1].addr,
            "ptr_out": built.out_buffers[0].addr,
            "n": VECTOR_LENGTH,
            "op": 0,
        }
        for accel in ("toyvec", "toyvec-seq")
    }

    def value_of(name: str, index: int) -> int:
        if name in ("ptr_x", "ptr_y"):
            return built.buffers[index % 2].addr
        if name == "ptr_out":
            return built.out_buffers[index % 2].addr
        if name == "n":
            return (4, 8, VECTOR_LENGTH)[index % 3]
        return index % 3

    def do_launch(registers: dict) -> None:
        n = registers["n"]
        x = memory.read_matrix(registers["ptr_x"], 1, n, n, np.int32)[0]
        y = memory.read_matrix(registers["ptr_y"], 1, n, n, np.int32)[0]
        op = registers["op"]
        out = x + y if op == 0 else x * y if op == 1 else np.maximum(x, y)
        memory.write_matrix(registers["ptr_out"], out.reshape(1, n), n)

    for invocation in program.invocations:
        if invocation.guarded and not program.cond_value:
            continue
        if invocation.loop_trips == -1:
            continue  # a zero-trip loop never runs its body
        registers = register_files[invocation.accelerator]
        trips = invocation.loop_trips if invocation.loop_trips else 1
        for _ in range(trips):
            for name, index in invocation.fields:
                registers[name] = value_of(name, index)
            if invocation.launch:
                do_launch(registers)
    return [buf.array.copy() for buf in built.out_buffers]
