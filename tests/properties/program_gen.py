"""Random accfg program generation for property-based testing.

The generator was promoted into the shipped package as
:mod:`repro.testing.generator` (it now also powers ``python -m repro fuzz``);
this module re-exports the original surface so existing property tests keep
importing from ``program_gen`` unchanged.
"""

from repro.testing.generator import (
    FIELD_NAMES,
    VECTOR_LENGTH,
    BuiltProgram,
    GeneratedProgram,
    Invocation,
    build,
    golden_result,
    invocations,
    programs,
)

__all__ = [
    "FIELD_NAMES",
    "VECTOR_LENGTH",
    "BuiltProgram",
    "GeneratedProgram",
    "Invocation",
    "build",
    "golden_result",
    "invocations",
    "programs",
]
