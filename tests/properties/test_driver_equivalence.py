"""Property: the worklist and legacy sweep pattern drivers are equivalent.

The incremental worklist driver's correctness claim is that it reaches the
*same normal form* as the legacy fixpoint-of-full-sweeps driver — it only
skips the redundant re-walks, never a rewrite.  This property drives every
registered pipeline over random accfg programs once per driver and requires
the printed IR to match exactly.
"""

from hypothesis import HealthCheck, given, settings

from repro.ir import print_operation, use_driver, verify_operation
from repro.passes import PIPELINES, pipeline_by_name

from .program_gen import build, programs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def normal_form(program, pipeline: str, driver: str) -> str:
    built = build(program)
    with use_driver(driver):
        pipeline_by_name(pipeline).run(built.module)
    verify_operation(built.module)
    return print_operation(built.module)


@RELAXED
@given(programs())
def test_drivers_reach_identical_normal_forms(program):
    for name in PIPELINES:
        worklist = normal_form(program, name, "worklist")
        sweep = normal_form(program, name, "sweep")
        assert worklist == sweep, f"drivers diverge under pipeline {name!r}"
