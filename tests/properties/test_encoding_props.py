"""Property-based tests for field packing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import FieldSpec, pack_fields


@st.composite
def field_lists(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    return [
        FieldSpec(f"f{i}", draw(st.integers(min_value=1, max_value=64)))
        for i in range(count)
    ]


@given(field_lists())
def test_every_field_packed_exactly_once(fields):
    words = pack_fields(fields)
    packed = [spec.name for word in words for spec, _ in word.lanes]
    assert packed == [spec.name for spec in fields]


@given(field_lists())
def test_no_word_overflows(fields):
    for word in pack_fields(fields):
        assert word.bits_used <= 64
        for spec, offset in word.lanes:
            assert offset + spec.bits <= 64


@given(field_lists())
def test_lanes_do_not_overlap(fields):
    for word in pack_fields(fields):
        cursor = 0
        for spec, offset in word.lanes:
            assert offset >= cursor
            cursor = offset + spec.bits


@given(field_lists(), st.data())
def test_encode_decode_roundtrip(fields, data):
    values = {
        spec.name: data.draw(
            st.integers(min_value=0, max_value=spec.mask), label=spec.name
        )
        for spec in fields
    }
    for word in pack_fields(fields):
        decoded = word.decode(word.encode(values))
        for spec, _ in word.lanes:
            assert decoded[spec.name] == values[spec.name]


@given(field_lists())
def test_word_count_bounded(fields):
    words = pack_fields(fields)
    total_bits = sum(spec.bits for spec in fields)
    assert len(words) >= -(-total_bits // 64)  # at least ceil(bits/64)
    assert len(words) <= len(fields)  # at most one word per field
