"""Property: textual round-trips are lossless for generated programs."""

from hypothesis import HealthCheck, given, settings

from repro.ir import parse_module, verify_operation

from .program_gen import build, programs

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(programs())
def test_print_parse_print_fixpoint(program):
    built = build(program)
    printed = str(built.module)
    reparsed = parse_module(printed)
    verify_operation(reparsed)
    assert str(reparsed) == printed


@RELAXED
@given(programs())
def test_roundtrip_preserves_structure(program):
    built = build(program)
    original_ops = [op.name for op in built.module.walk()]
    reparsed = parse_module(str(built.module))
    assert [op.name for op in reparsed.walk()] == original_ops


@RELAXED
@given(programs())
def test_roundtrip_after_optimization(program):
    from repro.passes import pipeline_by_name

    built = build(program)
    pipeline_by_name("full").run(built.module)
    printed = str(built.module)
    reparsed = parse_module(printed)
    verify_operation(reparsed)
    assert str(reparsed) == printed
