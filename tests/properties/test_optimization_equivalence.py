"""Property: every optimization pipeline preserves program semantics.

Random accfg programs (partial setups relying on register retention, loops,
launch-free setups) are run unoptimized and through each pipeline; the final
memory image must be identical, and must match an independent Python golden
model of the configure/launch semantics.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.interp import run_module
from repro.ir import verify_operation
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator
from repro.sim.metrics import collect_metrics

from .program_gen import build, golden_result, programs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_with_pipeline(program, pipeline: str):
    built = build(program)
    pipeline_by_name(pipeline).run(built.module)
    verify_operation(built.module)
    sim = CoSimulator(memory=built.memory)
    run_module(built.module, sim, args=[int(program.cond_value), 0])
    outs = [buf.array.copy() for buf in built.out_buffers]
    return outs, sim


@RELAXED
@given(programs())
def test_unoptimized_matches_golden_model(program):
    outs, _ = run_with_pipeline(program, "none")
    golden = golden_result(program)
    for out, expected in zip(outs, golden):
        assert (out == expected).all()


@RELAXED
@given(programs())
def test_dedup_preserves_semantics(program):
    baseline, _ = run_with_pipeline(program, "none")
    optimized, _ = run_with_pipeline(program, "dedup")
    for a, b in zip(baseline, optimized):
        assert (a == b).all()


@RELAXED
@given(programs())
def test_overlap_preserves_semantics(program):
    baseline, _ = run_with_pipeline(program, "none")
    optimized, _ = run_with_pipeline(program, "overlap")
    for a, b in zip(baseline, optimized):
        assert (a == b).all()


@RELAXED
@given(programs())
def test_licm_preserves_semantics(program):
    baseline, _ = run_with_pipeline(program, "none")
    optimized, _ = run_with_pipeline(program, "licm")
    for a, b in zip(baseline, optimized):
        assert (a == b).all()


@RELAXED
@given(programs())
def test_unroll_pipeline_preserves_semantics(program):
    baseline, _ = run_with_pipeline(program, "none")
    optimized, _ = run_with_pipeline(program, "unroll")
    for a, b in zip(baseline, optimized):
        assert (a == b).all()


@RELAXED
@given(programs())
def test_full_pipeline_preserves_semantics(program):
    baseline, _ = run_with_pipeline(program, "none")
    optimized, _ = run_with_pipeline(program, "full")
    for a, b in zip(baseline, optimized):
        assert (a == b).all()


@RELAXED
@given(programs())
def test_dedup_never_increases_executed_config_writes(program):
    _, base_sim = run_with_pipeline(program, "baseline")
    _, dedup_sim = run_with_pipeline(program, "dedup")
    base = collect_metrics(base_sim, "toyvec")
    dedup = collect_metrics(dedup_sim, "toyvec")
    assert dedup.config_bytes <= base.config_bytes


@RELAXED
@given(programs())
def test_launch_count_invariant(program):
    """No pipeline may drop or duplicate accelerator launches."""
    _, base_sim = run_with_pipeline(program, "none")
    for pipeline in ("baseline", "licm", "unroll", "dedup", "overlap", "full"):
        _, opt_sim = run_with_pipeline(program, pipeline)
        for accelerator in ("toyvec", "toyvec-seq"):
            assert (
                opt_sim.device(accelerator).launch_count
                == base_sim.device(accelerator).launch_count
            )


@RELAXED
@given(programs())
def test_full_pipeline_never_materially_slower(program):
    """The optimized program may pay a small constant for soundness guards
    (the ``lb < ub`` check around hoisted setups of possibly-zero-trip
    loops) but never a proportional slowdown."""
    _, base_sim = run_with_pipeline(program, "baseline")
    _, full_sim = run_with_pipeline(program, "full")
    guard_slack = 8.0 * sum(
        1 for inv in program.invocations if inv.loop_trips == -1
    )
    assert full_sim.total_cycles <= base_sim.total_cycles * 1.001 + guard_slack


@RELAXED
@given(programs())
def test_unroll_then_full_preserves_semantics(program):
    """Unrolling composes with the accfg pipeline without changing results."""
    from repro.passes import PassManager, UnrollPass, full_pipeline

    baseline, _ = run_with_pipeline(program, "none")
    built = build(program)
    UnrollPass().apply(built.module)
    full_pipeline().run(built.module)
    verify_operation(built.module)
    sim = CoSimulator(memory=built.memory)
    run_module(built.module, sim, args=[int(program.cond_value), 0])
    for a, b in zip(baseline, [buf.array.copy() for buf in built.out_buffers]):
        assert (a == b).all()


@RELAXED
@given(programs())
def test_unroll_preserves_launch_count(program):
    from repro.passes import UnrollPass

    _, base_sim = run_with_pipeline(program, "none")
    built = build(program)
    UnrollPass().apply(built.module)
    verify_operation(built.module)
    sim = CoSimulator(memory=built.memory)
    run_module(built.module, sim, args=[int(program.cond_value), 0])
    assert (
        sim.device("toyvec").launch_count
        == base_sim.device("toyvec").launch_count
    )
