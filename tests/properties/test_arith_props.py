"""Property-based tests: folding is consistent with interpretation.

For random constant expression trees, the value computed by the interpreter
on the unoptimized IR must equal the single constant canonicalization folds
the tree to.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.dialects import arith, func
from repro.dialects.builtin import ModuleOp
from repro.interp import run_module
from repro.ir import Block, FunctionType, i64, verify_operation
from repro.passes import CanonicalizePass

SAFE_BINARY_OPS = (
    arith.AddiOp,
    arith.SubiOp,
    arith.MuliOp,
    arith.AndiOp,
    arith.OriOp,
    arith.XoriOp,
    arith.MinUIOp,
    arith.MaxUIOp,
)


@st.composite
def expression_trees(draw, depth=3):
    """A nested tuple tree: int leaf or (op_class, left, right)."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.integers(min_value=0, max_value=2**32))
    op = draw(st.sampled_from(SAFE_BINARY_OPS))
    left = draw(expression_trees(depth=depth - 1))
    right = draw(expression_trees(depth=depth - 1))
    return (op, left, right)


def build_module(tree):
    block = Block()

    def emit(node):
        if isinstance(node, int):
            op = arith.ConstantOp.create(node, i64)
            block.add_op(op)
            return op.result
        cls, left, right = node
        op = cls.create(emit(left), emit(right))
        block.add_op(op)
        return op.result

    result = emit(tree)
    block.add_op(func.ReturnOp.create([result]))
    fn = func.FuncOp.create("main", FunctionType.from_lists([], [i64]), block)
    return ModuleOp.create([fn])


@given(expression_trees())
def test_folding_matches_interpretation(tree):
    module = build_module(tree)
    interpreted, _ = run_module(module)

    folded_module = build_module(tree)
    CanonicalizePass().apply(folded_module)
    verify_operation(folded_module)
    ops = [
        op
        for op in folded_module.walk()
        if op.name.startswith("arith") and not isinstance(op, arith.ConstantOp)
    ]
    assert ops == [], "tree of constants must fold completely"
    folded_value, _ = run_module(folded_module)
    assert folded_value == interpreted


@given(expression_trees())
def test_canonicalization_idempotent(tree):
    module = build_module(tree)
    CanonicalizePass().apply(module)
    once = str(module)
    CanonicalizePass().apply(module)
    assert str(module) == once


@given(st.integers(min_value=-(2**70), max_value=2**70))
def test_truncate_in_range(value):
    from repro.ir import i8, i32

    for type in (i8, i32):
        truncated = arith.truncate_to_type(value, type)
        assert 0 <= truncated < (1 << type.width)
        # idempotent
        assert arith.truncate_to_type(truncated, type) == truncated
