"""Batch executor vs the scalar trace engine on hand-written programs.

The hypothesis sweep in ``tests/properties/test_batch_equivalence.py``
covers generated programs; these pin down specific shapes — lockstep
divergence at branches, exact protocol-error parity, fault-injected
lanes, mixed per-lane outcomes — using the same lane-comparison helper
the fuzzer's batch-vs-scalar oracle uses.
"""

import pytest

from repro.engine import (
    BatchExecutor,
    BatchLane,
    TraceExecutor,
    compile_module,
    fuse_module,
    run_batch,
)
from repro.faults import FaultInjector, FaultRates
from repro.ir import parse_module
from repro.sim import CoSimulator, Memory
from repro.testing.oracles import _batch_lane_divergences

BRANCHY = """
func.func @main(%c : i1, %x : i64) -> (i64) {
  %three = arith.constant 3 : i64
  %r = scf.if %c -> (i64) {
    %n = arith.constant 4 : i64
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
    %y = arith.muli %x, %three : i64
    scf.yield %y : i64
  } else {
    %y = arith.addi %x, %three : i64
    scf.yield %y : i64
  }
  func.return %r : i64
}
"""

LOOPY = """
func.func @main(%x : i64) -> (i64) {
  %lb = arith.constant 0 : index
  %ub = arith.constant 5 : index
  %st = arith.constant 1 : index
  %n = arith.constant 4 : i64
  scf.for %i = %lb to %ub step %st {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
  }
  %two = arith.constant 2 : i64
  %y = arith.muli %x, %two : i64
  func.return %y : i64
}
"""

DOUBLE_AWAIT = """
func.func @main() -> () {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  accfg.await %t
  func.return
}
"""

UNKNOWN_DEVICE_IF_SET = """
func.func @main(%c : i1) -> () {
  scf.if %c {
    %n = arith.constant 4 : i64
    %s = accfg.setup on "nosuch" ("n" = %n : i64) : !accfg.state<"nosuch">
    scf.yield
  }
  func.return
}
"""


def scalar_run(module, args, faults=None):
    """(results, error, sim, memory) of one scalar trace-engine run."""
    compiled = compile_module(module)
    sim = CoSimulator(functional=False, faults=faults)
    try:
        results = TraceExecutor(compiled, sim).run("main", list(args))
        error = None
    except Exception as exc:  # noqa: BLE001 - compared against the lane
        results, error = None, (type(exc).__name__, str(exc))
    return results, error, sim, sim.memory


def assert_lanes_match(module, lane_args, faults=None):
    """Run one batch and hold every lane to its own scalar run."""
    faults = faults or [None] * len(lane_args)
    compiled = compile_module(module)
    lanes = [
        BatchLane(memory=Memory(), args=list(args), faults=injector)
        for args, injector in zip(lane_args, faults)
    ]
    lane_results = BatchExecutor(compiled, functional=False).run(lanes)
    for index, (args, lane) in enumerate(zip(lane_args, lane_results)):
        scalar_faults = faults[index]
        if scalar_faults is not None:
            # Same seed and rates => identical deterministic schedule.
            scalar_faults = FaultInjector(
                scalar_faults.seed, scalar_faults.rates
            )
        expected = scalar_run(module, args, faults=scalar_faults)
        problems = _batch_lane_divergences(lane, *expected)
        assert not problems, f"lane {index}: " + "; ".join(problems)
    return lane_results


class TestLockstep:
    def test_identical_lanes(self):
        module = parse_module(LOOPY)
        results = assert_lanes_match(module, [[7]] * 4)
        assert [lane.results for lane in results] == [[14]] * 4

    def test_lanes_split_at_branch(self):
        module = parse_module(BRANCHY)
        results = assert_lanes_match(
            module, [[1, 5], [0, 5], [1, 9], [0, 9]]
        )
        assert [lane.results for lane in results] == [[15], [8], [27], [12]]

    def test_branch_lanes_diverge_in_launch_counts(self):
        module = parse_module(BRANCHY)
        taken, skipped = assert_lanes_match(module, [[1, 2], [0, 2]])
        assert taken.launch_counts == {"toyvec": 1}
        assert skipped.launch_counts == {}
        assert taken.total_cycles != skipped.total_cycles


class TestErrorParity:
    def test_protocol_error_message_and_cycles(self):
        module = parse_module(DOUBLE_AWAIT)
        (lane,) = assert_lanes_match(module, [[]])
        assert not lane.ok
        assert lane.error_type == "InterpreterError"

    def test_arity_error(self):
        module = parse_module(LOOPY)
        assert_lanes_match(module, [[1, 2, 3]])

    def test_mixed_ok_and_error_lanes(self):
        module = parse_module(UNKNOWN_DEVICE_IF_SET)
        erroring, fine = assert_lanes_match(module, [[1], [0]])
        assert not erroring.ok and "nosuch" in erroring.error
        assert fine.ok

    def test_missing_function(self):
        module = parse_module(LOOPY)
        compiled = compile_module(module)
        lanes = [BatchLane(memory=Memory(), args=[1])]
        (lane,) = BatchExecutor(compiled, functional=False).run(
            lanes, function="nope"
        )
        assert not lane.ok
        assert lane.error_type == "InterpreterError"


class TestFaultLanes:
    def test_fault_lane_matches_seeded_scalar_run(self):
        module = parse_module(LOOPY)
        rates = FaultRates.uniform(0.3)
        assert_lanes_match(
            module,
            [[3], [3], [3]],
            faults=[None, FaultInjector(7, rates), FaultInjector(11, rates)],
        )

    def test_fault_lane_on_stripped_trace_needs_module(self):
        from repro.engine.pcache import strip_sites

        module = parse_module(LOOPY)
        stripped = strip_sites(compile_module(module))
        lanes = [
            BatchLane(
                memory=Memory(),
                args=[1],
                faults=FaultInjector(1, FaultRates.uniform(0.2)),
            )
        ]
        with pytest.raises(ValueError, match="recovery sites"):
            BatchExecutor(stripped, functional=False).run(lanes)
        # With the source module available the executor recompiles instead.
        BatchExecutor(stripped, functional=False, module=module).run(lanes)


class TestEntryPoints:
    def test_run_batch_accepts_source_module(self):
        module = parse_module(LOOPY)
        (lane,) = run_batch(
            module,
            [BatchLane(memory=Memory(), args=[2])],
            functional=False,
            cache=False,
        )
        assert lane.ok and lane.results == [4]

    def test_run_batch_accepts_compiled_module(self):
        compiled = compile_module(parse_module(LOOPY))
        (lane,) = run_batch(
            compiled,
            [BatchLane(memory=Memory(), args=[2])],
            functional=False,
        )
        assert lane.results == [4]

    def test_prefused_input_matches_unfused(self):
        module = parse_module(BRANCHY)
        compiled = compile_module(module)
        args = [[1, 4], [0, 4]]
        plain = BatchExecutor(compiled, functional=False).run(
            [BatchLane(memory=Memory(), args=list(a)) for a in args]
        )
        fused = BatchExecutor(fuse_module(compiled), functional=False).run(
            [BatchLane(memory=Memory(), args=list(a)) for a in args]
        )
        for a, b in zip(plain, fused):
            assert (a.results, a.error, a.total_cycles, a.launch_counts) == (
                b.results,
                b.error,
                b.total_cycles,
                b.launch_counts,
            )


class TestMemoryDuplicate:
    def test_duplicate_is_deep_and_preserves_layout(self):
        import numpy as np

        memory = Memory()
        buffer = memory.alloc(4, np.int64)
        buffer.array[:] = [1, 2, 3, 4]
        clone = memory.duplicate()
        assert [b.array.tolist() for b in clone.buffers] == [[1, 2, 3, 4]]
        assert clone.buffers[0].addr == buffer.addr
        clone.buffers[0].array[0] = 99
        assert buffer.array[0] == 1
        # Allocation cursor is preserved: next addresses stay identical.
        assert clone.alloc(2, np.int64).addr == memory.alloc(2, np.int64).addr
