"""Thread-safety of the shared caches under a concurrent server.

The serving layer hands ONE TraceCache (and one PersistentStore) to many
handler threads; these tests hammer the shared structures from 8 threads
and pin the two guarantees the server relies on: no entry is ever lost,
and concurrent same-key callers coalesce onto exactly one compilation.
"""

import threading
import time

import repro.engine.cache as cache_mod
from repro.engine import TraceCache
from repro.engine.pcache import PersistentStore
from repro.ir import parse_module

PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""

THREADS = 8


def run_threads(worker) -> None:
    barrier = threading.Barrier(THREADS)
    failures = []

    def wrapped(index: int) -> None:
        try:
            barrier.wait(timeout=30)
            worker(index)
        except Exception as error:  # noqa: BLE001 - surfaced via assert
            failures.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures


class TestTraceCacheHammer:
    def test_same_key_compiles_exactly_once(self, monkeypatch):
        real_compile = cache_mod.compile_module
        compiles = []
        record = threading.Lock()

        def counting_compile(module):
            with record:
                compiles.append(threading.get_ident())
            time.sleep(0.02)  # widen the race window
            return real_compile(module)

        monkeypatch.setattr(cache_mod, "compile_module", counting_compile)
        cache = TraceCache()
        module = parse_module(PROGRAM)
        results = [None] * THREADS

        def worker(index: int) -> None:
            results[index] = cache.get_or_compile(module, key="shared")

        run_threads(worker)
        assert len(compiles) == 1  # single-flight: one compile served all 8
        assert all(result is results[0] for result in results)
        assert cache.misses == 1
        assert cache.hits == THREADS - 1
        assert cache.coalesced >= 1

    def test_hammer_loses_no_entries_and_never_double_compiles(
        self, monkeypatch
    ):
        real_compile = cache_mod.compile_module
        compiles = []
        record = threading.Lock()

        def counting_compile(module):
            with record:
                compiles.append(1)
            time.sleep(0.001)
            return real_compile(module)

        monkeypatch.setattr(cache_mod, "compile_module", counting_compile)
        keys = [f"key-{i}" for i in range(16)]
        cache = TraceCache(maxsize=len(keys))
        module = parse_module(PROGRAM)

        def worker(index: int) -> None:
            # Every thread touches every key, in a thread-specific order.
            for key in keys[index:] + keys[:index]:
                assert cache.get_or_compile(module, key=key) is not None

        run_threads(worker)
        assert len(compiles) == len(keys)  # exactly one compile per key
        assert len(cache) == len(keys)  # no entry lost
        for key in keys:
            assert cache.get(key) is not None
        assert cache.misses == len(keys)
        assert cache.hits == THREADS * len(keys) - len(keys)

    def test_compile_failure_wakes_waiters_without_poisoning(
        self, monkeypatch
    ):
        real_compile = cache_mod.compile_module
        attempts = []
        record = threading.Lock()

        def flaky_compile(module):
            with record:
                attempts.append(1)
                first = len(attempts) == 1
            if first:
                time.sleep(0.02)
                raise RuntimeError("injected compile failure")
            return real_compile(module)

        monkeypatch.setattr(cache_mod, "compile_module", flaky_compile)
        cache = TraceCache()
        module = parse_module(PROGRAM)
        outcomes = [None] * THREADS

        def worker(index: int) -> None:
            try:
                outcomes[index] = cache.get_or_compile(module, key="flaky")
            except RuntimeError as error:
                outcomes[index] = error

        run_threads(worker)
        errors = [o for o in outcomes if isinstance(o, RuntimeError)]
        # The failure propagated to the owner and everyone coalesced with
        # it — nobody hung, nobody got None.
        assert errors
        assert all(o is not None for o in outcomes)
        # And the failed flight left no poison behind: the next caller
        # compiles fresh and succeeds.
        assert cache.get_or_compile(module, key="flaky") is not None
        assert cache.get("flaky") is not None


class TestPersistentStoreHammer:
    def test_counters_stay_consistent_under_threads(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        rounds = 10

        def worker(index: int) -> None:
            for round_index in range(rounds):
                store.save("blob", f"k{index}-{round_index}", b"x" * 64)
                assert (
                    store.load("blob", f"k{index}-{round_index}") == b"x" * 64
                )
                store.load("blob", f"absent-{index}-{round_index}")

        run_threads(worker)
        total = THREADS * rounds
        assert store.stores == total
        assert store.hits == total
        assert store.misses == total  # the absent probes
        assert store.rejected == 0
        for index in range(THREADS):
            for round_index in range(rounds):
                assert store.load("blob", f"k{index}-{round_index}") is not None

    def test_shared_key_with_eviction_pressure(self, tmp_path):
        # Every thread rewrites the same key while the size bound forces
        # eviction sweeps; whatever survives must be complete and loadable.
        store = PersistentStore(str(tmp_path), max_bytes=4096)

        def worker(index: int) -> None:
            for _ in range(10):
                store.save("blob", "shared", bytes([index]) * 128)
                store.save("blob", f"mine-{index}", bytes([index]) * 128)

        run_threads(worker)
        loaded = store.load("blob", "shared")
        if loaded is not None:  # may have been evicted, never torn
            assert len(loaded) == 128
            assert len(set(loaded)) == 1
        assert store.rejected == 0
