"""Robustness of the persistent on-disk cache store.

Every design rule from the :mod:`repro.engine.pcache` docstring is pinned
here: corrupted/truncated/version-skewed/foreign entries are misses (never
crashes, never stale data), concurrent writers cannot torn-write, the
directory respects its size bound, loaded traces are marked
``sites_stripped`` and fault-injected runs recompile around them, and the
generator's memory-image cache persists across (simulated) processes.
"""

import multiprocessing
import os
import pickle

from repro.engine import (
    TraceCache,
    compile_module,
    configure_persistent_cache,
    module_fingerprint,
    run_module_traced,
)
from repro.engine.pcache import SCHEMA, PersistentStore, strip_sites
from repro.faults import FaultInjector, FaultRates
from repro.ir import parse_module
from repro.sim import CoSimulator

PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""


def entry_path(store: PersistentStore, kind: str, key: str) -> str:
    return store._path(kind, key)


def saved_trace(store: PersistentStore, key: str = "k"):
    compiled = compile_module(parse_module(PROGRAM))
    store.save_trace(key, compiled)
    return compiled


class TestRoundTrip:
    def test_trace_survives_a_fresh_store(self, tmp_path):
        key = module_fingerprint(parse_module(PROGRAM))
        saved_trace(PersistentStore(str(tmp_path)), key)
        loaded = PersistentStore(str(tmp_path)).load_trace(key)
        assert loaded is not None
        assert loaded.sites_stripped
        assert loaded.fingerprint == key
        sim = CoSimulator(functional=False)
        from repro.engine import TraceExecutor

        assert TraceExecutor(loaded, sim).run("main", [1]) == [4]

    def test_loaded_trace_matches_fresh_compile(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        compiled = saved_trace(store, "k")
        loaded = store.load_trace("k")
        stripped = strip_sites(compiled)
        assert loaded.declarations == compiled.declarations
        for name, fn in stripped.functions.items():
            assert loaded.functions[name].code == fn.code

    def test_missing_entry_is_a_clean_miss(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        assert store.load("trace", "absent") is None
        assert (store.hits, store.misses, store.rejected) == (0, 1, 0)


class TestCorruptionTolerance:
    def test_truncated_entry_is_a_miss_and_unlinked(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        saved_trace(store, "k")
        path = entry_path(store, "trace", "k")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.load_trace("k") is None
        assert store.rejected == 1
        assert not os.path.exists(path)

    def test_garbage_entry_is_a_miss(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        saved_trace(store, "k")
        with open(entry_path(store, "trace", "k"), "wb") as handle:
            handle.write(b"\x00not a pickle at all")
        assert store.load_trace("k") is None
        assert store.rejected == 1

    def test_schema_version_skew_is_a_miss(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        entry = {
            "schema": SCHEMA + "-older",
            "kind": "trace",
            "key": "k",
            "payload": 123,
        }
        with open(entry_path(store, "trace", "k"), "wb") as handle:
            pickle.dump(entry, handle)
        assert store.load("trace", "k") is None
        assert store.rejected == 1
        assert not os.path.exists(entry_path(store, "trace", "k"))

    def test_foreign_kind_or_key_is_a_miss(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        # A file that lands on trace:k's path but identifies as something
        # else entirely (e.g. a hash collision or a tool writing into the
        # directory) must not be served.
        entry = {
            "schema": SCHEMA,
            "kind": "image",
            "key": "other",
            "payload": [1, 2],
        }
        with open(entry_path(store, "trace", "k"), "wb") as handle:
            pickle.dump(entry, handle)
        assert store.load("trace", "k") is None
        assert store.rejected == 1

    def test_wrong_payload_type_for_trace_is_a_miss(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.save("trace", "k", {"not": "a compiled module"})
        assert store.load_trace("k") is None

    def test_unpicklable_payload_is_skipped_not_fatal(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.save("trace", "k", lambda: None)  # locals don't pickle
        assert store.stores == 0
        assert store.load("trace", "k") is None


class TestEvictionDeterminism:
    """LRU eviction must not depend on listing order or mtime granularity."""

    def test_lru_ticks_strictly_increase(self):
        from repro.engine.pcache import _lru_tick

        ticks = [_lru_tick() for _ in range(1000)]
        assert all(a < b for a, b in zip(ticks, ticks[1:]))

    def test_lru_ticks_unique_across_threads(self):
        import threading

        from repro.engine.pcache import _lru_tick

        collected: list[int] = []
        lock = threading.Lock()

        def worker() -> None:
            mine = [_lru_tick() for _ in range(200)]
            with lock:
                collected.extend(mine)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(set(collected)) == len(collected) == 8 * 200

    def test_identical_mtimes_break_ties_by_path(self, tmp_path):
        store = PersistentStore(str(tmp_path), max_bytes=1 << 20)
        for i in range(4):
            store.save("blob", f"k{i}", b"z" * 256)
        entries = store._entries()
        paths = sorted(path for _, path, _ in entries)
        # Simulate cross-process writers whose ticks collided on a
        # coarse-mtime filesystem: every entry lands on one timestamp.
        for path in paths:
            os.utime(path, ns=(1_000_000, 1_000_000))
        total = sum(size for _, _, size in entries)
        store.max_bytes = total - 1  # exactly one must go
        store._evict()
        survivors = sorted(path for _, path, _ in store._entries())
        # The lexicographically smallest path is the deterministic victim.
        assert survivors == paths[1:]

    def test_load_touch_protects_an_entry_from_eviction(self, tmp_path):
        store = PersistentStore(str(tmp_path), max_bytes=1 << 20)
        store.save("blob", "protected", b"a" * 256)
        store.save("blob", "stale", b"b" * 256)
        # "protected" is older by save order; loading it refreshes its
        # recency, so the size bound evicts "stale" instead.
        assert store.load("blob", "protected") is not None
        store.max_bytes = max(size for _, _, size in store._entries())
        store._evict()
        assert store.load("blob", "protected") is not None
        assert store.load("blob", "stale") is None


class TestEviction:
    def test_size_bound_evicts_oldest_first(self, tmp_path):
        store = PersistentStore(str(tmp_path), max_bytes=1)
        store.save("blob", "a", b"x" * 512)
        store.save("blob", "b", b"y" * 512)
        # The bound admits at most one entry; "a" (older mtime) went first.
        names = [n for n in os.listdir(str(tmp_path)) if n.endswith(".bin")]
        assert len(names) <= 1

    def test_generous_bound_keeps_everything(self, tmp_path):
        store = PersistentStore(str(tmp_path), max_bytes=1 << 20)
        for i in range(8):
            store.save("blob", f"k{i}", b"z" * 64)
        for i in range(8):
            assert store.load("blob", f"k{i}") == b"z" * 64


def _hammer_store(directory: str) -> None:
    from repro.engine import compile_module as _compile
    from repro.engine.pcache import PersistentStore as _Store
    from repro.ir import parse_module as _parse

    store = _Store(directory)
    compiled = _compile(_parse(PROGRAM))
    for _ in range(20):
        store.save_trace("shared-key", compiled)
        store.load_trace("shared-key")


class TestConcurrentWriters:
    def test_parallel_writers_never_torn_write(self, tmp_path):
        workers = [
            multiprocessing.Process(
                target=_hammer_store, args=(str(tmp_path),)
            )
            for _ in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        # Whatever won, the surviving entry is complete and loadable.
        store = PersistentStore(str(tmp_path))
        loaded = store.load_trace("shared-key")
        assert loaded is not None
        assert store.rejected == 0


class TestCacheIntegration:
    def test_cross_process_shaped_hit(self, tmp_path):
        module = parse_module(PROGRAM)
        first = TraceCache(store=PersistentStore(str(tmp_path)))
        first.get_or_compile(module)
        assert first.store.stores == 1
        # A fresh in-memory cache over the same directory models a new
        # process: the compile is skipped, the store reports the hit.
        second = TraceCache(store=PersistentStore(str(tmp_path)))
        compiled = second.get_or_compile(parse_module(PROGRAM))
        assert compiled.sites_stripped
        assert (second.store.hits, second.store.misses) == (1, 0)
        assert (second.hits, second.misses) == (0, 1)

    def test_structural_key_still_hits_persistent_tier(self, tmp_path):
        from repro.ir import structural_key

        module = parse_module(PROGRAM)
        first = TraceCache(store=PersistentStore(str(tmp_path)))
        first.get_or_compile(module, key=structural_key(module))
        second = TraceCache(store=PersistentStore(str(tmp_path)))
        clone = parse_module(PROGRAM)
        second.get_or_compile(clone, key=structural_key(clone))
        assert second.store.hits == 1

    def test_faulted_run_recompiles_stripped_entry(self, tmp_path):
        module = parse_module(PROGRAM)
        key = module_fingerprint(module)
        cache = TraceCache(store=PersistentStore(str(tmp_path)))
        cache.put(key, strip_sites(compile_module(module)))
        sim = CoSimulator(
            functional=False,
            faults=FaultInjector(3, FaultRates.uniform(0.0)),
        )
        run_module_traced(module, sim, args=[1], cache=cache)
        # The recompiled (site-carrying) trace replaced the stripped entry.
        assert cache.get(key) is not None
        assert not cache.get(key).sites_stripped


class TestImageCachePersistence:
    def test_memory_images_persist_across_processes(self, tmp_path):
        from repro.testing import generator

        try:
            store = configure_persistent_cache(str(tmp_path))
            generator._IMAGE_CACHE.clear()
            memory, _ = generator.build_memory("toyvec", memory_seed=5)
            assert store.stores >= 1
            # New "process": in-memory image cache gone, same directory.
            generator._IMAGE_CACHE.clear()
            fresh = configure_persistent_cache(str(tmp_path))
            again, _ = generator.build_memory("toyvec", memory_seed=5)
            assert fresh.hits >= 1
        finally:
            configure_persistent_cache(None)
            generator._IMAGE_CACHE.clear()
        assert len(memory.buffers) == len(again.buffers)
        for a, b in zip(memory.buffers, again.buffers):
            assert a.addr == b.addr
            assert (a.array == b.array).all()

    def test_rejected_image_entry_regenerates(self, tmp_path):
        from repro.testing import generator

        try:
            store = configure_persistent_cache(str(tmp_path))
            generator._IMAGE_CACHE.clear()
            baseline, _ = generator.build_memory("toyvec", memory_seed=5)
            path = entry_path(store, "image", "toyvec-5")
            with open(path, "wb") as handle:
                handle.write(b"garbage")
            generator._IMAGE_CACHE.clear()
            fresh = configure_persistent_cache(str(tmp_path))
            regenerated, _ = generator.build_memory("toyvec", memory_seed=5)
            assert fresh.rejected >= 1
        finally:
            configure_persistent_cache(None)
            generator._IMAGE_CACHE.clear()
        for a, b in zip(baseline.buffers, regenerated.buffers):
            assert (a.array == b.array).all()
