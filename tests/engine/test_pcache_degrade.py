"""PersistentStore graceful degradation: a broken disk never breaks work.

Satellite of the chaos-hardening PR: a cache directory deleted or turned
unwritable mid-run degrades the store to in-memory-only operation — every
load a miss counted as ``rejected``, every save a no-op, the vanished
directory never resurrected — instead of raising into the caller.
"""

import os
import shutil

import pytest

import repro.engine.pcache as pcache_module
from repro.engine.pcache import DEGRADE_AFTER, PersistentStore


@pytest.fixture
def store(tmp_path):
    return PersistentStore(str(tmp_path / "cache"))


class TestDirectoryDeleted:
    def test_load_degrades_to_rejected_miss(self, store):
        store.save("blob", "k", {"v": 1})
        shutil.rmtree(store.directory)
        assert store.load("blob", "k") is None
        assert store.rejected >= 1
        assert store.misses >= 1
        assert store.degraded  # directory-gone degrades immediately

    def test_degraded_save_does_not_resurrect_directory(self, store):
        store.save("blob", "k", {"v": 1})
        shutil.rmtree(store.directory)
        store.load("blob", "k")  # flips to degraded
        store.save("blob", "k2", {"v": 2})
        assert not os.path.isdir(store.directory)
        assert store.degraded

    def test_degraded_loads_count_rejected_misses(self, store):
        shutil.rmtree(store.directory)
        store.load("blob", "a")
        before = (store.misses, store.rejected)
        store.load("blob", "b")
        store.load("blob", "c")
        assert store.misses == before[0] + 2
        assert store.rejected == before[1] + 2

    def test_absent_entry_with_healthy_directory_is_plain_miss(self, store):
        assert store.load("blob", "nope") is None
        assert store.misses == 1
        assert store.rejected == 0
        assert not store.degraded

    def test_never_raises(self, store):
        store.save("blob", "k", {"v": 1})
        shutil.rmtree(store.directory)
        for _ in range(10):
            assert store.load("blob", "k") is None
            store.save("blob", "k", {"v": 1})


class TestUnwritable:
    """chmod tricks do not bind under root; monkeypatch the writer/opener."""

    def test_save_io_errors_degrade_after_streak(self, store, monkeypatch):
        def refuse(path, blob):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(pcache_module, "atomic_write_bytes", refuse)
        for _ in range(DEGRADE_AFTER):
            store.save("blob", "k", {"v": 1})
        assert store.io_errors == DEGRADE_AFTER
        assert store.degraded

    def test_one_transient_failure_does_not_degrade(self, store, monkeypatch):
        real = pcache_module.atomic_write_bytes
        calls = {"n": 0}

        def flaky(path, blob):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError(5, "Input/output error")
            return real(path, blob)

        monkeypatch.setattr(pcache_module, "atomic_write_bytes", flaky)
        store.save("blob", "a", {"v": 1})  # fails
        store.save("blob", "b", {"v": 2})  # succeeds, resets the streak
        store.save("blob", "c", {"v": 3})
        assert store.io_errors == 1
        assert not store.degraded
        assert store.load("blob", "b") == {"v": 2}

    def test_unreadable_entries_strike_toward_degradation(
        self, store, monkeypatch
    ):
        store.save("blob", "k", {"v": 1})
        real_open = open

        def refuse(*args, **kwargs):
            if args and str(args[0]).endswith(".bin"):
                raise PermissionError(13, "Permission denied")
            return real_open(*args, **kwargs)

        monkeypatch.setattr("builtins.open", refuse)
        for _ in range(DEGRADE_AFTER):
            assert store.load("blob", "k") is None
        assert store.degraded
        assert store.rejected >= DEGRADE_AFTER


class TestCorruptEntryStillJustAMiss:
    def test_garbled_entry_rejected_not_degraded(self, store):
        store.save("blob", "k", {"v": 1})
        path = store._path("blob", "k")
        with open(path, "wb") as handle:
            handle.write(b"\x00garbage")
        assert store.load("blob", "k") is None
        assert store.rejected == 1
        assert not store.degraded  # corruption is not an I/O failure streak
        # the bad entry was unlinked; a re-save repairs the cache
        store.save("blob", "k", {"v": 2})
        assert store.load("blob", "k") == {"v": 2}
