"""Tests for the compiled-trace cache: keying, invalidation, eviction."""

from repro.engine import TraceCache, compile_module, module_fingerprint
from repro.ir import IntegerAttr, i64, parse_module, structural_key

PROGRAM = """
func.func @main(%x : i64) -> (i64) {
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
"""


def parse(text: str = PROGRAM):
    return parse_module(text)


class TestGetOrCompile:
    def test_identical_module_hits(self):
        cache = TraceCache()
        module = parse()
        first = cache.get_or_compile(module)
        second = cache.get_or_compile(module)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_reparsed_module_hits_via_fingerprint(self):
        cache = TraceCache()
        first = cache.get_or_compile(parse())
        second = cache.get_or_compile(parse())
        assert first is second
        assert cache.hits == 1

    def test_structural_key_hits_across_clones(self):
        cache = TraceCache()
        module = parse()
        clone = module.clone()
        first = cache.get_or_compile(module, key=structural_key(module))
        second = cache.get_or_compile(clone, key=structural_key(clone))
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_hit_rate(self):
        cache = TraceCache()
        assert cache.hit_rate == 0.0
        cache.get_or_compile(parse())
        cache.get_or_compile(parse())
        assert cache.hit_rate == 0.5


class TestInvalidation:
    def test_in_place_mutation_misses(self):
        # There is no explicit invalidation: mutating a module changes its
        # structural key / fingerprint, so the stale entry is simply never
        # looked up again.
        cache = TraceCache()
        module = parse()
        stale = cache.get_or_compile(module, key=structural_key(module))
        constant = next(op for op in module.walk() if op.name == "arith.constant")
        constant.attributes["value"] = IntegerAttr(7, i64)
        fresh = cache.get_or_compile(module, key=structural_key(module))
        assert fresh is not stale
        assert cache.misses == 2

    def test_fingerprint_tracks_mutation_too(self):
        module = parse()
        before = module_fingerprint(module)
        constant = next(op for op in module.walk() if op.name == "arith.constant")
        constant.attributes["value"] = IntegerAttr(7, i64)
        assert module_fingerprint(module) != before

    def test_clear_resets_everything(self):
        cache = TraceCache()
        cache.get_or_compile(parse())
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)


class TestEviction:
    def test_lru_bound(self):
        cache = TraceCache(maxsize=2)
        for value in (1, 2, 3):
            cache.put(f"key-{value}", compile_module(parse()))
        assert len(cache) == 2
        assert cache.get("key-1") is None  # oldest evicted
        assert cache.get("key-3") is not None

    def test_get_refreshes_recency(self):
        cache = TraceCache(maxsize=2)
        cache.put("a", compile_module(parse()))
        cache.put("b", compile_module(parse()))
        cache.get("a")  # "b" is now least recently used
        cache.put("c", compile_module(parse()))
        assert cache.get("a") is not None
        assert cache.get("b") is None
