"""Trace executor vs. tree interpreter on concrete programs.

The hypothesis sweep in ``tests/properties/test_engine_props.py`` covers
generated programs; these pin down hand-written shapes (loops, branches,
accelerator protocol, fallback) with exact observables.
"""

import pytest

from repro.engine import run_module_traced
from repro.interp import run_module
from repro.ir import parse_module
from repro.sim import CoSimulator
from repro.testing.oracles import _engine_divergences


def assert_engines_agree(text: str, args: list[int] | None = None):
    args = args or []
    tree_sim = CoSimulator(functional=False)
    tree_results = run_module(parse_module(text), tree_sim, args=list(args))[0]
    trace_sim = CoSimulator(functional=False)
    trace_results, _ = run_module_traced(
        parse_module(text), trace_sim, args=list(args), cache=False, fallback=False
    )
    problems = _engine_divergences(
        trace_results,
        trace_sim,
        trace_sim.memory,
        tree_results,
        tree_sim,
        tree_sim.memory,
    )
    assert not problems, "; ".join(problems)
    return trace_results


class TestEquivalence:
    def test_arithmetic_and_return(self):
        results = assert_engines_agree(
            """
            func.func @main(%x : i64) -> (i64) {
              %c = arith.constant 3 : i64
              %y = arith.muli %x, %c : i64
              func.return %y : i64
            }
            """,
            args=[7],
        )
        assert results == [21]

    def test_accelerator_protocol(self):
        assert_engines_agree(
            """
            func.func @main() -> () {
              %n = arith.constant 4 : i64
              %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
              %t = accfg.launch %s : !accfg.token<"toyvec">
              accfg.await %t
              func.return
            }
            """
        )

    def test_loop_with_setup_inside(self):
        assert_engines_agree(
            """
            func.func @main() -> () {
              %lb = arith.constant 0 : index
              %ub = arith.constant 3 : index
              %st = arith.constant 1 : index
              %n = arith.constant 4 : i64
              scf.for %i = %lb to %ub step %st {
                %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
                %t = accfg.launch %s : !accfg.token<"toyvec">
                accfg.await %t
              }
              func.return
            }
            """
        )

    def test_branch_selects_result(self):
        results = assert_engines_agree(
            """
            func.func @main(%flag : i64) -> (i64) {
              %zero = arith.constant 0 : i64
              %cond = arith.cmpi ne, %flag, %zero : i64
              %a = arith.constant 10 : i64
              %b = arith.constant 20 : i64
              %r = scf.if %cond -> (i64) {
                scf.yield %a : i64
              } else {
                scf.yield %b : i64
              }
              func.return %r : i64
            }
            """,
            args=[1],
        )
        assert results == [10]

    def test_protocol_errors_match_the_tree_interpreter(self):
        text = """
        func.func @main() -> () {
          %n = arith.constant 4 : i64
          %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
          %t = accfg.launch %s : !accfg.token<"toyvec">
          accfg.await %t
          accfg.await %t
          func.return
        }
        """
        from repro.interp.interpreter import InterpreterError

        with pytest.raises(InterpreterError, match="double await") as tree_error:
            run_module(parse_module(text), CoSimulator(functional=False))
        with pytest.raises(InterpreterError, match="double await") as trace_error:
            run_module_traced(
                parse_module(text),
                CoSimulator(functional=False),
                cache=False,
                fallback=False,
            )
        assert str(trace_error.value) == str(tree_error.value)


class TestFallback:
    UNKNOWN_OP = """
    func.func @main() -> (i64) {
      %v = "mystery.op"() : () -> (i64)
      func.return %v : i64
    }
    """

    def test_fallback_reaches_the_tree_interpreter(self):
        # Whether the compiler rejects the unknown op (TraceCompileError →
        # tree fallback) or compiles it to a foreign stub, the observable
        # failure must be the tree interpreter's, not a compiler crash.
        from repro.interp.interpreter import InterpreterError

        with pytest.raises(InterpreterError):
            run_module_traced(
                parse_module(self.UNKNOWN_OP),
                CoSimulator(functional=False),
                cache=False,
                fallback=True,
            )
