"""Superinstruction fusion: candidates, stream shape, and equivalence.

Fusion is an executor-side representation change only.  These tests pin
the candidate selection (frequency-ordered from a dispatch-stat counter),
the fused stream's structure (runs collapse, jump targets re-index), exact
execution equivalence fused vs unfused, and the invariant that fusing
never changes cache identity (fingerprint / structural key).
"""

from repro.engine import (
    FUSABLE_OPCODES,
    TraceExecutor,
    compile_module,
    fuse_function,
    fuse_module,
    fusion_candidates,
    module_fingerprint,
)
from repro.engine.compiler import (
    OP_BINOP,
    OP_CMP,
    OP_CONST,
    OP_FUSED,
    OP_LAUNCH,
    OP_SETUP,
    OPCODE_NAMES,
)
from repro.ir import parse_module, structural_key
from repro.sim import CoSimulator
from repro.testing.oracles import _engine_divergences

STRAIGHT_LINE = """
func.func @main(%x : i64) -> (i64) {
  %a = arith.constant 3 : i64
  %b = arith.constant 5 : i64
  %c = arith.addi %a, %b : i64
  %d = arith.muli %c, %x : i64
  %e = arith.addi %d, %a : i64
  func.return %e : i64
}
"""

LOOP_AND_PROTOCOL = """
func.func @main(%x : i64) -> (i64) {
  %lb = arith.constant 0 : index
  %ub = arith.constant 4 : index
  %st = arith.constant 1 : index
  %n = arith.constant 4 : i64
  scf.for %i = %lb to %ub step %st {
    %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
    %t = accfg.launch %s : !accfg.token<"toyvec">
    accfg.await %t
  }
  %two = arith.constant 2 : i64
  %y = arith.muli %x, %two : i64
  %zero = arith.constant 0 : i64
  %cmp = arith.cmpi sgt, %y, %zero : i64
  %r = arith.select %cmp, %y, %zero : i64
  func.return %r : i64
}
"""


def run_scalar(compiled, args, stats=None):
    sim = CoSimulator(functional=False)
    results = TraceExecutor(compiled, sim, stats=stats).run("main", list(args))
    return results, sim


class TestCandidates:
    def test_candidates_come_from_pinned_dispatch_stream(self):
        compiled = compile_module(parse_module(LOOP_AND_PROTOCOL))
        stats: dict[int, int] = {}
        run_scalar(compiled, [7], stats=stats)
        ranked = fusion_candidates(stats, min_share=0.0)
        # The loop's dominant pure opcode leads; every entry is fusable.
        assert ranked
        assert ranked[0] == OP_CONST
        assert all(op in FUSABLE_OPCODES for op in ranked)
        # Protocol opcodes were dispatched but are never candidates.
        assert stats[OP_SETUP] > 0 and stats[OP_LAUNCH] > 0
        assert OP_SETUP not in ranked and OP_LAUNCH not in ranked

    def test_min_share_drops_rare_opcodes(self):
        stats = {OP_CONST: 98, OP_CMP: 1, OP_SETUP: 1}
        assert fusion_candidates(stats, min_share=0.05) == (OP_CONST,)
        assert set(fusion_candidates(stats, min_share=0.0)) == {
            OP_CONST,
            OP_CMP,
        }

    def test_empty_stats(self):
        assert fusion_candidates({}) == ()

    def test_every_opcode_has_a_mnemonic(self):
        assert OP_FUSED in OPCODE_NAMES
        assert set(FUSABLE_OPCODES) <= set(OPCODE_NAMES)


class TestStreamShape:
    def test_straight_line_collapses_to_one_superinstruction(self):
        compiled = compile_module(parse_module(STRAIGHT_LINE))
        fn = fuse_module(compiled).functions["main"]
        fused = [ins for ins in fn.code if ins[0] == OP_FUSED]
        assert len(fused) == 1
        sub_ops = fused[0][1]
        assert len(sub_ops) == 5
        assert {ins[0] for ins in sub_ops} <= {OP_CONST, OP_BINOP}

    def test_min_run_respected(self):
        compiled = compile_module(parse_module(STRAIGHT_LINE))
        fn = fuse_function(compiled.functions["main"], min_run=99)
        assert all(ins[0] != OP_FUSED for ins in fn.code)

    def test_candidate_restriction_respected(self):
        compiled = compile_module(parse_module(STRAIGHT_LINE))
        fn = fuse_function(
            compiled.functions["main"], candidates=frozenset({OP_CONST})
        )
        for ins in fn.code:
            if ins[0] == OP_FUSED:
                assert {sub[0] for sub in ins[1]} == {OP_CONST}

    def test_fused_stream_is_shorter(self):
        compiled = compile_module(parse_module(LOOP_AND_PROTOCOL))
        plain = compiled.functions["main"]
        fused = fuse_module(compiled).functions["main"]
        assert len(fused.code) < len(plain.code)


class TestEquivalence:
    def assert_fused_matches(self, text, args):
        module = parse_module(text)
        compiled = compile_module(module)
        plain_results, plain_sim = run_scalar(compiled, args)
        fused_results, fused_sim = run_scalar(fuse_module(compiled), args)
        problems = _engine_divergences(
            fused_results,
            fused_sim,
            fused_sim.memory,
            plain_results,
            plain_sim,
            plain_sim.memory,
        )
        assert not problems, "; ".join(problems)

    def test_straight_line(self):
        self.assert_fused_matches(STRAIGHT_LINE, [7])

    def test_loop_and_protocol_jump_targets_reindexed(self):
        # The loop's back-edge must land on a fused-stream boundary.
        self.assert_fused_matches(LOOP_AND_PROTOCOL, [7])
        self.assert_fused_matches(LOOP_AND_PROTOCOL, [-3])

    def test_dispatch_stats_driven_fusion(self):
        module = parse_module(LOOP_AND_PROTOCOL)
        compiled = compile_module(module)
        stats: dict[int, int] = {}
        plain_results, plain_sim = run_scalar(compiled, [5], stats=stats)
        narrowed = fuse_module(
            compiled, candidates=frozenset(fusion_candidates(stats))
        )
        fused_results, fused_sim = run_scalar(narrowed, [5])
        assert fused_results == plain_results
        assert fused_sim.total_cycles == plain_sim.total_cycles


class TestCacheIdentity:
    def test_fusion_keeps_fingerprint(self):
        module = parse_module(LOOP_AND_PROTOCOL)
        compiled = compile_module(module)
        compiled.fingerprint = module_fingerprint(module)
        fused = fuse_module(compiled)
        assert fused.fingerprint == compiled.fingerprint
        assert fused is not compiled

    def test_fusion_never_touches_cache_identity_of_the_ir(self):
        module = parse_module(LOOP_AND_PROTOCOL)
        before_print = module_fingerprint(module)
        before_key = structural_key(module)
        fuse_module(compile_module(module))
        assert module_fingerprint(module) == before_print
        assert structural_key(module) == before_key

    def test_fusion_preserves_sites_stripped_flag(self):
        from repro.engine.pcache import strip_sites

        compiled = strip_sites(compile_module(parse_module(LOOP_AND_PROTOCOL)))
        assert fuse_module(compiled).sites_stripped
