"""Tests for the roofline's inverse (design-exploration) queries."""

import pytest

from repro.core import ConfigRoofline


@pytest.fixture
def roofline():
    return ConfigRoofline(512.0, 2.0)


class TestRequiredIntensity:
    def test_roundtrips_through_the_forward_model(self, roofline):
        for utilization in (0.1, 0.5, 0.9):
            for concurrent in (True, False):
                i_oc = roofline.required_i_oc(utilization, concurrent)
                attained = roofline.attainable(i_oc, concurrent)
                assert attained == pytest.approx(
                    utilization * roofline.peak_performance, rel=1e-9
                )

    def test_sequential_needs_more_intensity(self, roofline):
        for utilization in (0.25, 0.5, 0.75):
            assert roofline.required_i_oc(
                utilization, concurrent=False
            ) > roofline.required_i_oc(utilization, concurrent=True)

    def test_half_peak_sequential_is_the_knee(self, roofline):
        assert roofline.required_i_oc(0.5, concurrent=False) == pytest.approx(
            roofline.knee_intensity
        )

    def test_out_of_range_rejected(self, roofline):
        with pytest.raises(ValueError):
            roofline.required_i_oc(0.0, True)
        with pytest.raises(ValueError):
            roofline.required_i_oc(1.0, False)

    def test_monotone_in_utilization(self, roofline):
        values = [
            roofline.required_i_oc(u, concurrent=False)
            for u in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert values == sorted(values)


class TestRequiredBandwidth:
    def test_roundtrips(self, roofline):
        i_oc = 100.0
        for utilization in (0.2, 0.6):
            bw = roofline.required_config_bandwidth(i_oc, utilization, False)
            fast = ConfigRoofline(roofline.peak_performance, bw)
            assert fast.attainable_sequential(i_oc) == pytest.approx(
                utilization * roofline.peak_performance, rel=1e-9
            )

    def test_gemmini_worked_example(self):
        """How fast would Gemmini's config interface need to be for the
        Section 4.6 kernel (I_OC = 205.19) to reach 90% of peak?"""
        roofline = ConfigRoofline(512.0, 1.778)
        needed = roofline.required_config_bandwidth(205.19, 0.9, False)
        assert needed > roofline.config_bandwidth  # faster than today
        faster = ConfigRoofline(512.0, needed)
        assert faster.utilization(205.19, concurrent=False) == pytest.approx(0.9)

    def test_validation(self, roofline):
        with pytest.raises(ValueError):
            roofline.required_config_bandwidth(0.0, 0.5, True)
        with pytest.raises(ValueError):
            roofline.required_config_bandwidth(10.0, 1.5, True)
