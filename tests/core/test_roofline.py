"""Tests for the configuration roofline model (Eq. 1-5)."""

import math

import pytest

from repro.core import Boundness, ConfigRoofline, effective_config_bandwidth
from repro.core.roofline import RooflinePoint


def roofline(peak=512.0, config_bw=2.0, mem_bw=None):
    return ConfigRoofline(peak, config_bw, mem_bw)


class TestEq2Concurrent:
    def test_config_bound_region(self):
        r = roofline()
        assert r.attainable_concurrent(10) == 20.0  # BW * I_OC

    def test_compute_bound_region(self):
        r = roofline()
        assert r.attainable_concurrent(10_000) == 512.0

    def test_knee_exact(self):
        r = roofline()
        assert r.knee_intensity == 256.0
        assert r.attainable_concurrent(256.0) == 512.0


class TestEq3Sequential:
    def test_always_below_concurrent(self):
        r = roofline()
        for i_oc in (0.5, 16, 256, 4096):
            assert r.attainable_sequential(i_oc) < r.attainable_concurrent(i_oc)

    def test_half_peak_at_knee(self):
        """At the knee the system spends equal time configuring and
        computing: the sequential model attains exactly half of peak."""
        r = roofline()
        assert r.attainable_sequential(r.knee_intensity) == pytest.approx(256.0)

    def test_asymptotically_approaches_peak(self):
        r = roofline()
        assert r.attainable_sequential(1e9) == pytest.approx(512.0, rel=1e-3)

    def test_zero_intensity(self):
        assert roofline().attainable_sequential(0) == 0.0

    def test_attainable_dispatch(self):
        r = roofline()
        assert r.attainable(10, concurrent=True) == r.attainable_concurrent(10)
        assert r.attainable(10, concurrent=False) == r.attainable_sequential(10)


class TestEq4EffectiveBandwidth:
    def test_formula(self):
        assert effective_config_bandwidth(100, 10, 40) == 2.0

    def test_zero_time_infinite(self):
        assert effective_config_bandwidth(100, 0, 0) == float("inf")

    def test_paper_gemmini_value(self):
        # 160 writes * 16 B / (935 instrs * 3 cycles)
        bw = effective_config_bandwidth(160 * 16, 775 * 3, 160 * 3)
        assert bw == pytest.approx(0.913, abs=1e-3)


class TestEq1And5:
    def test_processor_roofline(self):
        r = roofline(mem_bw=64.0)
        assert r.attainable_processor(2.0) == 128.0
        assert r.attainable_processor(100.0) == 512.0

    def test_processor_roofline_requires_mem_bw(self):
        with pytest.raises(ValueError):
            roofline().attainable_processor(1.0)

    def test_combined_takes_minimum(self):
        r = roofline(mem_bw=64.0)
        assert r.attainable_combined(100.0, 10.0) == 20.0  # config limits
        assert r.attainable_combined(1.0, 1000.0) == 64.0  # memory limits
        assert r.attainable_combined(100.0, 1000.0) == 512.0  # compute limits

    def test_roofsurface_shape(self):
        r = roofline(mem_bw=64.0)
        surface = r.roofsurface([1.0, 2.0], [1.0, 2.0, 4.0])
        assert len(surface) == 3
        assert len(surface[0]) == 2
        # Monotonic in both axes.
        assert surface[0][0] <= surface[0][1]
        assert surface[0][0] <= surface[1][0]


class TestBoundness:
    def test_regions(self):
        r = roofline()
        assert r.boundness(1.0) is Boundness.CONFIG_BOUND
        assert r.boundness(256.0) is Boundness.KNEE
        assert r.boundness(10_000.0) is Boundness.COMPUTE_BOUND

    def test_is_config_bound(self):
        r = roofline()
        assert r.is_config_bound(1.0)
        assert not r.is_config_bound(1000.0)


class TestSection47Predictions:
    def test_overlap_headroom_maximal_at_knee(self):
        r = roofline()
        knee_headroom = r.overlap_headroom(r.knee_intensity)
        assert knee_headroom == pytest.approx(2.0)
        assert r.overlap_headroom(r.knee_intensity / 16) < knee_headroom
        assert r.overlap_headroom(r.knee_intensity * 16) < knee_headroom

    def test_utilization(self):
        r = roofline()
        assert r.utilization(r.knee_intensity, concurrent=True) == 1.0
        assert r.utilization(r.knee_intensity, concurrent=False) == pytest.approx(0.5)


class TestSweepAndPoints:
    def test_sweep_log_spaced(self):
        samples = roofline().sweep(1.0, 1024.0, points=11)
        assert len(samples) == 11
        assert samples[0][0] == pytest.approx(1.0)
        assert samples[-1][0] == pytest.approx(1024.0)
        ratios = [samples[i + 1][0] / samples[i][0] for i in range(10)]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_point_utilization(self):
        point = RooflinePoint("x", 100.0, 128.0)
        assert point.utilization(roofline()) == 0.25


class TestValidation:
    def test_nonpositive_peak_rejected(self):
        with pytest.raises(ValueError):
            ConfigRoofline(0.0, 1.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ConfigRoofline(512.0, 0.0)
