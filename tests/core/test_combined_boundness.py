"""Tests for measured memory traffic and the empirical roofsurface (Eq. 5)."""

import pytest

from repro.backends import GEMMINI, OPENGEMM, get_accelerator
from repro.core import Boundness, combined_boundness, roofline_for_spec
from repro.experiments.common import run_workload
from repro.workloads import build_gemmini_matmul, build_opengemm_matmul


class TestMemoryAccounting:
    def test_opengemm_tile_bytes(self):
        assert OPENGEMM.launch_memory_bytes({"M": 8, "K": 32, "N": 8}) == (
            8 * 32 + 32 * 8 + 4 * 64
        )

    def test_gemmini_moves_counted_computes_free(self):
        from repro.backends.gemmini import OP_COMPUTE, OP_MVIN, OP_MVOUT

        assert GEMMINI.launch_memory_bytes({"op": OP_MVIN}) == 256
        assert GEMMINI.launch_memory_bytes({"op": OP_MVOUT}) == 1024
        assert GEMMINI.launch_memory_bytes({"op": OP_COMPUTE}) == 0

    def test_workload_memory_bytes_measured(self):
        run = run_workload(build_opengemm_matmul(16), "baseline", functional=False)
        size = 16
        tiles = (size // 8) ** 2
        per_tile = 8 * size + size * 8 + 4 * 64
        assert run.metrics.memory_bytes == tiles * per_tile

    def test_operational_intensity(self):
        run = run_workload(build_opengemm_matmul(16), "baseline", functional=False)
        metrics = run.metrics
        assert metrics.operational_intensity == pytest.approx(
            metrics.total_ops / metrics.memory_bytes
        )

    def test_gemmini_fine_grained_traffic(self):
        run = run_workload(
            build_gemmini_matmul(32), "volatile-baseline", functional=False
        )
        tiles = (32 // 16) ** 2
        expected = tiles * 2 * 256 + tiles * 1024  # A+B mvins, C mvouts
        assert run.metrics.memory_bytes == expected


class TestCombinedBoundness:
    def test_config_bound_workload(self):
        run = run_workload(build_opengemm_matmul(16), "baseline", functional=False)
        roofline = roofline_for_spec(OPENGEMM, OPENGEMM.host_cost_model())
        assert roofline.memory_bandwidth == OPENGEMM.memory_bandwidth
        assert (
            combined_boundness(run.metrics, roofline) is Boundness.CONFIG_BOUND
        )

    def test_dedup_can_change_the_binding_term(self):
        """Once configuration is optimized away, the *next* wall appears —
        here the memory term of the roofsurface takes over (the A matrix is
        re-streamed for every output tile column)."""
        roofline = roofline_for_spec(OPENGEMM, OPENGEMM.host_cost_model())
        base = run_workload(build_opengemm_matmul(32), "baseline", functional=False)
        full = run_workload(build_opengemm_matmul(32), "full", functional=False)
        assert combined_boundness(base.metrics, roofline) is Boundness.CONFIG_BOUND
        assert combined_boundness(full.metrics, roofline) is Boundness.MEMORY_BOUND

    def test_memory_term_ignored_without_bandwidth(self):
        from repro.core import ConfigRoofline

        run = run_workload(build_opengemm_matmul(16), "baseline", functional=False)
        roofline = ConfigRoofline(1024.0, 4.0, memory_bandwidth=None)
        # No memory term: classification falls back to config vs compute.
        assert combined_boundness(run.metrics, roofline) in (
            Boundness.CONFIG_BOUND,
            Boundness.COMPUTE_BOUND,
        )

    def test_memory_bound_case(self):
        """A skinny workload with a starved memory system becomes
        memory-bound even after configuration is optimized away."""
        from repro.core import ConfigRoofline

        run = run_workload(build_opengemm_matmul(64), "full", functional=False)
        starved = ConfigRoofline(1024.0, 4.0, memory_bandwidth=0.05)
        assert combined_boundness(run.metrics, starved) is Boundness.MEMORY_BOUND
