"""Tests for text charts and tables."""

from repro.core import ConfigRoofline, RooflinePoint, ascii_roofline, format_series


class TestFormatSeries:
    def test_alignment(self):
        table = format_series(("a", "b"), [(1, 2.5), (10, 3.25)])
        lines = table.split("\n")
        assert len(lines) == 4
        assert lines[0].endswith("b")
        assert "2.500" in lines[2]

    def test_columns_grow_to_content(self):
        table = format_series(
            ("col",), [("a-very-long-cell-value-exceeding-minimum",)]
        )
        assert "a-very-long-cell-value-exceeding-minimum" in table

    def test_float_formats(self):
        table = format_series(("x",), [(123456.0,), (0.0001,), (float("inf"),)])
        assert "1.235e+05" in table
        assert "0.0001" in table
        assert "inf" in table


class TestAsciiRoofline:
    def setup_method(self):
        self.roofline = ConfigRoofline(512.0, 2.0)

    def test_contains_both_roofs(self):
        art = ascii_roofline(self.roofline)
        assert "-" in art
        assert "~" in art
        assert "knee" in art

    def test_points_labelled(self):
        points = [
            RooflinePoint("base", 10.0, 15.0),
            RooflinePoint("opt", 100.0, 150.0),
        ]
        art = ascii_roofline(self.roofline, points)
        assert "A: base" in art
        assert "B: opt" in art

    def test_out_of_range_points_clamped(self):
        points = [RooflinePoint("tiny", 1e-6, 1e-6)]
        art = ascii_roofline(self.roofline, points)
        assert "A: tiny" in art  # no exception, point clamped into the chart

    def test_dimensions(self):
        art = ascii_roofline(self.roofline, width=40, height=10)
        chart_lines = art.split("\n")[:10]
        assert all(len(line) <= 40 for line in chart_lines)
