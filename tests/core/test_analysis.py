"""Tests for roofline analysis of measured runs."""

import numpy as np
import pytest

from repro.backends import GEMMINI, OPENGEMM
from repro.core import (
    Boundness,
    analyze_run,
    geomean,
    point_from_metrics,
    roofline_for_spec,
    roofline_from_metrics,
    theoretical_config_bandwidth,
)
from repro.isa import HostCostModel
from repro.sim import CoSimulator, Memory, collect_metrics


def toy_metrics(launches=4):
    memory = Memory()
    x = memory.place(np.arange(64, dtype=np.int32))
    y = memory.place(np.arange(64, dtype=np.int32))
    out = memory.alloc(64, np.int32)
    sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
    for _ in range(launches):
        sim.exec_setup(
            "toyvec",
            {"ptr_x": x.addr, "ptr_y": y.addr, "ptr_out": out.addr, "n": 64, "op": 0},
        )
        sim.exec_await(sim.exec_launch("toyvec"))
    return collect_metrics(sim, "toyvec")


class TestTheoreticalBandwidth:
    def test_gemmini_matches_paper(self):
        """Full Table-1 field set: 16 bytes per RoCC write, 3 instrs per
        write, 3 cycles per instr -> 16/9 ≈ 1.78 B/cycle (Section 4.6)."""
        bw = theoretical_config_bandwidth(GEMMINI, HostCostModel(3.0))
        # Slightly above 16/9 because an odd trailing operand word needs only
        # one staging instruction; the paper rounds to 3 instrs per write.
        assert bw == pytest.approx(16 / 9, rel=0.05)

    def test_opengemm(self):
        bw = theoretical_config_bandwidth(OPENGEMM, HostCostModel(1.0))
        assert bw == pytest.approx(4.0)  # 4-byte CSR per 1-cycle csrw


class TestRooflineConstruction:
    def test_for_spec(self):
        r = roofline_for_spec(OPENGEMM, OPENGEMM.host_cost_model())
        assert r.peak_performance == 1024
        assert r.knee_intensity == pytest.approx(256.0)

    def test_from_metrics_uses_effective_bandwidth(self):
        metrics = toy_metrics()
        r = roofline_from_metrics(metrics)
        assert r.config_bandwidth == pytest.approx(
            metrics.effective_config_bandwidth
        )


class TestRunAnalysis:
    def test_point_and_regions(self):
        metrics = toy_metrics()
        analysis = analyze_run(metrics, label="toy-run")
        assert analysis.point.label == "toy-run"
        assert analysis.boundness in tuple(Boundness)
        assert 0 < analysis.utilization <= 1.0

    def test_measured_below_roofline(self):
        """A real run can never beat the roofline built from its own
        effective bandwidth."""
        metrics = toy_metrics()
        analysis = analyze_run(metrics)
        assert analysis.point.performance <= analysis.attainable_concurrent * 1.001

    def test_sequential_bound_below_concurrent(self):
        analysis = analyze_run(toy_metrics())
        assert analysis.attainable_sequential <= analysis.attainable_concurrent

    def test_headroom(self):
        analysis = analyze_run(toy_metrics())
        assert analysis.headroom_to_concurrent_roof >= 1.0

    def test_point_from_metrics(self):
        metrics = toy_metrics()
        point = point_from_metrics(metrics)
        assert point.label == "toyvec"
        assert point.i_oc == metrics.operation_to_config_intensity


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
