"""Tests for rectangular matmuls and sweep helpers."""

import pytest

from repro.experiments.common import run_workload
from repro.ir import verify_operation
from repro.workloads import (
    aspect_ratio_sweep,
    build_opengemm_matmul,
    build_opengemm_rect_matmul,
    square_sweep,
)


class TestRectMatmul:
    def test_ir_verifies(self):
        wl = build_opengemm_rect_matmul(16, 24, 32)
        verify_operation(wl.module)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            build_opengemm_rect_matmul(10, 8, 8)
        with pytest.raises(ValueError):
            build_opengemm_rect_matmul(8, 9, 8)

    @pytest.mark.parametrize("pipeline", ["none", "baseline", "dedup", "full"])
    def test_numerics_under_pipelines(self, pipeline):
        result = run_workload(build_opengemm_rect_matmul(16, 32, 8), pipeline)
        assert result.correct

    def test_total_ops(self):
        wl = build_opengemm_rect_matmul(16, 32, 8)
        assert wl.total_ops == 2 * 16 * 32 * 8

    def test_nonsquare_strides_respected(self):
        wl = build_opengemm_rect_matmul(8, 64, 16, seed=5)
        run_workload(wl, "full")
        assert wl.check()


class TestSweeps:
    def test_square_sweep_labels(self):
        points = list(square_sweep(build_opengemm_matmul, (16, 32)))
        assert [p.label for p in points] == ["16x16x16", "32x32x32"]
        wl = points[1].build()
        assert wl.size == 32

    def test_square_sweep_lazy_and_fresh(self):
        points = list(square_sweep(build_opengemm_matmul, (16,)))
        first = points[0].build()
        second = points[0].build()
        assert first is not second

    def test_aspect_ratio_sweep_intensity_ordering(self):
        """Constant volume: larger K per tile means higher I_OC (fewer
        tiles, so fewer configuration bytes per op)."""
        intensities = []
        for point in aspect_ratio_sweep():
            run = run_workload(point.build(), "baseline")
            assert run.correct
            intensities.append(run.metrics.operation_to_config_intensity)
        assert intensities == sorted(intensities)
