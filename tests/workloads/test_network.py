"""Tests for the MLP network workload."""

import numpy as np
import pytest

from repro.backends import get_accelerator
from repro.interp import run_module
from repro.ir import parse_module, verify_operation
from repro.passes import ConvertLinalgToAccfgPass, pipeline_by_name
from repro.sim import CoSimulator
from repro.workloads.network import build_mlp


def run_mlp(layers, pipeline, batch=8, seed=0):
    workload = build_mlp(layers, batch=batch, seed=seed)
    ConvertLinalgToAccfgPass().apply(workload.module)
    verify_operation(workload.module)
    pipeline_by_name(pipeline).run(workload.module)
    sim = CoSimulator(
        memory=workload.memory,
        cost_model=get_accelerator("opengemm").host_cost_model(),
    )
    run_module(workload.module, sim)
    return workload, sim


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="multiples"):
            build_mlp([10, 16])
        with pytest.raises(ValueError, match="batch"):
            build_mlp([16, 16], batch=5)
        with pytest.raises(ValueError, match="at least"):
            build_mlp([16])

    def test_total_macs(self):
        workload = build_mlp([16, 32, 8], batch=8)
        assert workload.total_macs == 8 * 16 * 32 + 8 * 32 * 8

    def test_ir_round_trips(self):
        workload = build_mlp([16, 16], batch=8)
        printed = str(workload.module)
        assert str(parse_module(printed)) == printed


class TestExecution:
    @pytest.mark.parametrize("pipeline", ["baseline", "dedup", "full"])
    def test_two_layer_correct(self, pipeline):
        workload, _ = run_mlp([16, 32, 16], pipeline)
        assert workload.check()

    def test_deep_network_correct(self):
        workload, _ = run_mlp([16, 24, 32, 24, 8], "full", seed=3)
        assert workload.check()

    def test_single_layer(self):
        workload, _ = run_mlp([16, 8], "full")
        assert workload.check()

    def test_multiple_accelerators_used(self):
        _, sim = run_mlp([16, 16, 16], "full")
        assert set(sim.devices) == {"opengemm", "toyvec"}
        assert sim.device("opengemm").launch_count > 0
        assert sim.device("toyvec").launch_count > 0


class TestOptimizationGains:
    def test_full_pipeline_speeds_up_inference(self):
        baseline_wl, baseline_sim = run_mlp([16, 32, 16, 8], "baseline")
        full_wl, full_sim = run_mlp([16, 32, 16, 8], "full")
        assert baseline_wl.check() and full_wl.check()
        assert full_sim.total_cycles < baseline_sim.total_cycles

    def test_dedup_cuts_config_bytes_across_layers(self):
        _, baseline_sim = run_mlp([16, 16, 16, 16], "baseline")
        _, dedup_sim = run_mlp([16, 16, 16, 16], "dedup")
        assert (
            dedup_sim.trace.config_bytes() < baseline_sim.trace.config_bytes()
        )
