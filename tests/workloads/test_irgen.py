"""Tests for the workload IR emission helpers."""

from repro.dialects import accfg, arith, func, scf
from repro.ir import i64, index, verify_operation
from repro.workloads import build_function, new_module
from repro.workloads.irgen import IRGen


class TestScalarHelpers:
    def test_const_and_arith(self):
        module = new_module()
        with build_function(module, "main") as (gen, _):
            a = gen.const(6)
            b = gen.const(7)
            gen.setup("toyvec", [("n", gen.mul(a, b))])
        verify_operation(module)
        ops = [op.name for op in module.walk()]
        assert "arith.muli" in ops

    def test_pack_emits_shift_or_ladder(self):
        module = new_module()
        with build_function(module, "main", input_types=[i64, i64]) as (gen, args):
            x, y = args
            word = gen.pack([(x, 0), (y, 16)])
            gen.setup("toyvec", [("n", word)])
        verify_operation(module)
        names = [op.name for op in module.walk()]
        assert "arith.shli" in names
        assert "arith.ori" in names

    def test_pack_zero_offset_first_lane_free(self):
        module = new_module()
        with build_function(module, "main", input_types=[i64]) as (gen, args):
            word = gen.pack([(args[0], 0)])
            gen.setup("toyvec", [("n", word)])
        names = [op.name for op in module.walk()]
        assert "arith.shli" not in names

    def test_pack_empty_rejected(self):
        import pytest

        module = new_module()
        with build_function(module, "main") as (gen, _):
            with pytest.raises(ValueError):
                gen.pack([])


class TestControlFlowHelpers:
    def test_loop_context_manager(self):
        module = new_module()
        with build_function(module, "main") as (gen, _):
            zero = gen.const(0)
            one = gen.const(1)
            eight = gen.const(8)
            with gen.loop(zero, eight, one) as (loop, iv):
                gen.setup("toyvec", [("n", iv)])
        verify_operation(module)
        loop_op = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert isinstance(loop_op.body.terminator, scf.YieldOp)

    def test_nested_loops(self):
        module = new_module()
        with build_function(module, "main") as (gen, _):
            zero = gen.const(0)
            one = gen.const(1)
            four = gen.const(4)
            with gen.loop(zero, four, one) as (_, i):
                with gen.loop(zero, four, one) as (_, j):
                    gen.setup("toyvec", [("n", gen.add(i, j))])
        verify_operation(module)
        loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
        assert len(loops) == 2

    def test_function_return_appended(self):
        module = new_module()
        with build_function(module, "main") as (gen, _):
            gen.const(1)
        fn = next(op for op in module.walk() if isinstance(op, func.FuncOp))
        assert isinstance(fn.body.terminator, func.ReturnOp)


class TestAccfgHelpers:
    def test_cluster_emission(self):
        module = new_module()
        with build_function(module, "main", input_types=[i64]) as (gen, args):
            state = gen.setup("toyvec", [("n", args[0])])
            token = gen.launch(state)
            gen.await_(token)
        verify_operation(module)
        names = [op.name for op in module.walk()]
        assert names.count("accfg.setup") == 1
        assert names.count("accfg.launch") == 1
        assert names.count("accfg.await") == 1

    def test_launch_with_fields(self):
        module = new_module()
        with build_function(module, "main", input_types=[i64]) as (gen, args):
            state = gen.setup("toyvec", [])
            gen.launch(state, [("op", args[0])])
        launch = next(op for op in module.walk() if isinstance(op, accfg.LaunchOp))
        assert launch.field_names == ("op",)
