"""Tests for the matmul workload generators."""

import numpy as np
import pytest

from repro.dialects import accfg
from repro.experiments.common import run_workload
from repro.ir import verify_operation
from repro.workloads import (
    build_gemmini_loop_ws_matmul,
    build_gemmini_matmul,
    build_opengemm_matmul,
)


class TestOpenGeMMWorkload:
    def test_ir_verifies(self):
        wl = build_opengemm_matmul(16)
        verify_operation(wl.module)

    def test_size_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            build_opengemm_matmul(12)

    def test_one_setup_per_tile(self):
        wl = build_opengemm_matmul(32)
        setups = [op for op in wl.module.walk() if isinstance(op, accfg.SetupOp)]
        # All setups live inside the tile loop: one static setup op.
        assert len(setups) == 1
        assert len(setups[0].fields) == 25

    @pytest.mark.parametrize("pipeline", ["none", "baseline", "dedup", "overlap", "full"])
    def test_numerically_correct_under_all_pipelines(self, pipeline):
        result = run_workload(build_opengemm_matmul(16), pipeline)
        assert result.correct

    def test_deterministic_inputs(self):
        a = build_opengemm_matmul(16, seed=7)
        b = build_opengemm_matmul(16, seed=7)
        assert (a.a.array == b.a.array).all()
        c = build_opengemm_matmul(16, seed=8)
        assert not (a.a.array == c.a.array).all()

    def test_total_ops(self):
        assert build_opengemm_matmul(32).total_ops == 2 * 32**3

    def test_expected_and_check(self):
        wl = build_opengemm_matmul(16)
        assert not wl.check()  # not run yet
        run_workload(wl, "none")
        assert wl.check()
        wl.reset_output()
        assert not wl.check()


class TestGemminiFineGrainedWorkload:
    def test_ir_verifies(self):
        wl = build_gemmini_matmul(32)
        verify_operation(wl.module)

    def test_size_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            build_gemmini_matmul(20)

    def test_runtime_size_argument(self):
        wl = build_gemmini_matmul(32)
        assert wl.main_args == [32]

    @pytest.mark.parametrize("pipeline", ["none", "volatile-baseline", "full"])
    def test_numerically_correct(self, pipeline):
        result = run_workload(build_gemmini_matmul(32), pipeline)
        assert result.correct

    def test_single_preamble_setup(self):
        wl = build_gemmini_matmul(32)
        setups = [op for op in wl.module.walk() if isinstance(op, accfg.SetupOp)]
        assert len(setups) == 1  # mode config once; moves/tiles are launches

    def test_launches_cover_moves_and_tiles(self):
        wl = build_gemmini_matmul(32)
        launches = [op for op in wl.module.walk() if isinstance(op, accfg.LaunchOp)]
        # mvin-B + mvin-A + preload + compute + mvout, each a static launch op
        assert len(launches) == 5


class TestGemminiLoopWsWorkload:
    def test_ir_verifies(self):
        wl = build_gemmini_loop_ws_matmul(64)
        verify_operation(wl.module)

    @pytest.mark.parametrize("pipeline", ["none", "full"])
    def test_numerically_correct_single_chunk(self, pipeline):
        result = run_workload(build_gemmini_loop_ws_matmul(32), pipeline)
        assert result.correct

    def test_numerically_correct_multi_chunk(self):
        # 128 > chunk edge 64: exercises the k-accumulation via D = C.
        result = run_workload(build_gemmini_loop_ws_matmul(128), "full")
        assert result.correct

    def test_table1_fields_configured(self):
        wl = build_gemmini_loop_ws_matmul(64)
        setup = next(op for op in wl.module.walk() if isinstance(op, accfg.SetupOp))
        for name in ("A", "B", "D", "C", "I", "J", "K", "stride_A", "act"):
            assert name in setup.field_names


class TestCrossPipelineEquivalence:
    """The optimized binary must compute exactly what the baseline does."""

    @pytest.mark.parametrize("size", [16, 24])
    def test_opengemm_all_pipelines_agree(self, size):
        reference = None
        for pipeline in ("none", "baseline", "dedup", "overlap", "full"):
            wl = build_opengemm_matmul(size, seed=3)
            run_workload(wl, pipeline)
            if reference is None:
                reference = wl.result().copy()
            else:
                assert (wl.result() == reference).all(), pipeline

    def test_gemmini_pipelines_agree(self):
        reference = None
        for pipeline in ("none", "volatile-baseline", "dedup", "full"):
            wl = build_gemmini_matmul(32, seed=3)
            run_workload(wl, pipeline)
            if reference is None:
                reference = wl.result().copy()
            else:
                assert (wl.result() == reference).all(), pipeline
