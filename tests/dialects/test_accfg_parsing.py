"""Parse-error and syntax-edge tests for the accfg dialect."""

import pytest

from repro.ir import ParseError, parse_module


class TestAccfgParseErrors:
    def test_setup_missing_on_keyword(self):
        with pytest.raises(ParseError):
            parse_module(
                """
                func.func @f(%x : i64) -> () {
                  %s = accfg.setup "toyvec" ("n" = %x : i64) : !accfg.state<"toyvec">
                  func.return
                }
                """
            )

    def test_setup_field_needs_string_name(self):
        with pytest.raises(ParseError):
            parse_module(
                """
                func.func @f(%x : i64) -> () {
                  %s = accfg.setup on "toyvec" (n = %x : i64) : !accfg.state<"toyvec">
                  func.return
                }
                """
            )

    def test_launch_requires_state_value(self):
        with pytest.raises(ParseError):
            parse_module(
                """
                func.func @f(%x : i64) -> () {
                  %t = accfg.launch : !accfg.token<"toyvec">
                  func.return
                }
                """
            )

    def test_state_type_requires_quoted_name(self):
        with pytest.raises(ParseError):
            parse_module(
                "func.func @f(%s : !accfg.state<toyvec>) -> () { func.return }"
            )

    def test_bad_effects_value_rejected(self):
        with pytest.raises(ValueError):
            parse_module(
                """
                func.func @f() -> () {
                  "x.y"() {accfg.effects = #accfg.effects<sometimes>} : () -> ()
                  func.return
                }
                """
            )

    def test_unknown_accfg_attribute(self):
        with pytest.raises(ParseError, match="unknown accfg attribute"):
            parse_module(
                """
                func.func @f() -> () {
                  "x.y"() {k = #accfg.wibble<1>} : () -> ()
                  func.return
                }
                """
            )


class TestAccfgSyntaxEdges:
    def test_empty_setup(self):
        module = parse_module(
            """
            func.func @f() -> () {
              %s = accfg.setup on "toyvec" () : !accfg.state<"toyvec">
              func.return
            }
            """
        )
        from repro.dialects import accfg

        setup = next(op for op in module.walk() if isinstance(op, accfg.SetupOp))
        assert setup.fields == ()

    def test_accelerator_names_with_dashes(self):
        module = parse_module(
            """
            func.func @f(%x : i64) -> () {
              %s = accfg.setup on "toyvec-seq" ("n" = %x : i64) : !accfg.state<"toyvec-seq">
              func.return
            }
            """
        )
        assert 'on "toyvec-seq"' in str(module)

    def test_chain_and_launch_fields_roundtrip(self):
        text = """
        func.func @f(%x : i64) -> () {
          %s1 = accfg.setup on "gemmini" ("I" = %x : i64) : !accfg.state<"gemmini">
          %s2 = accfg.setup on "gemmini" from %s1 ("J" = %x : i64) : !accfg.state<"gemmini">
          %t = accfg.launch %s2 ("op" = %x : i64, "ld_addr" = %x : i64) : !accfg.token<"gemmini">
          accfg.await %t
          func.return
        }
        """
        module = parse_module(text)
        printed = str(module)
        assert str(parse_module(printed)) == printed
        assert '("op" = ' in printed
