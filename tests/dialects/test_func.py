"""Tests for the func dialect."""

import pytest

from repro.dialects import arith, func
from repro.ir import Block, FunctionType, VerifyError, i64


class TestFuncOp:
    def test_create_with_default_body(self):
        fn = func.FuncOp.create("f", FunctionType.from_lists([i64], [i64]))
        assert not fn.is_declaration
        assert fn.sym_name == "f"
        assert [a.type for a in fn.args] == [i64]

    def test_declaration(self):
        fn = func.FuncOp.declaration("ext", FunctionType.from_lists([i64], []))
        assert fn.is_declaration

    def test_verify_checks_signature(self):
        body = Block(arg_types=[i64])
        body.add_op(func.ReturnOp.create())
        fn = func.FuncOp.create("f", FunctionType.from_lists([i64], []), body)
        fn.verify_()

    def test_verify_arg_mismatch(self):
        body = Block()  # no args, signature says one
        body.add_op(func.ReturnOp.create())
        fn = func.FuncOp.create("f", FunctionType.from_lists([], []), body)
        fn.attributes["function_type"] = FunctionType.from_lists([i64], [])
        with pytest.raises(VerifyError):
            fn.verify_()

    def test_verify_return_types(self):
        c = arith.ConstantOp.create(1, i64)
        body = Block([c, func.ReturnOp.create([c.result])])
        fn = func.FuncOp.create("f", FunctionType.from_lists([], [i64]), body)
        fn.verify_()

    def test_verify_wrong_return_types(self):
        body = Block([func.ReturnOp.create()])
        fn = func.FuncOp.create("f", FunctionType.from_lists([], [i64]), body)
        with pytest.raises(VerifyError):
            fn.verify_()


class TestCallOp:
    def test_callee_accessor(self):
        call = func.CallOp.create("target", [], [i64])
        assert call.callee == "target"
        assert call.results[0].type == i64
        call.verify_()

    def test_missing_callee_rejected(self):
        call = func.CallOp(result_types=[i64])
        with pytest.raises(VerifyError):
            call.verify_()


class TestReturnOp:
    def test_terminator(self):
        assert func.ReturnOp.create().is_terminator
