"""Tests for the accfg dialect: the paper's core abstraction."""

import pytest

from repro.dialects import accfg, arith
from repro.ir import VerifyError, i64

ACCEL = "toyvec"


def const(value=0):
    return arith.ConstantOp.create(value, i64)


def setup(fields=None, in_state=None, accel=ACCEL):
    return accfg.SetupOp.create(accel, fields or [], in_state)


class TestTypes:
    def test_state_type_str(self):
        assert str(accfg.StateType("x")) == '!accfg.state<"x">'

    def test_token_type_str(self):
        assert str(accfg.TokenType("x")) == '!accfg.token<"x">'

    def test_types_compare_by_accelerator(self):
        assert accfg.StateType("a") == accfg.StateType("a")
        assert accfg.StateType("a") != accfg.StateType("b")
        assert accfg.StateType("a") != accfg.TokenType("a")


class TestEffectsAttr:
    def test_valid_values(self):
        assert accfg.EffectsAttr("all").effects == "all"
        assert str(accfg.EffectsAttr("none")) == "#accfg.effects<none>"

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            accfg.EffectsAttr("some")

    def test_set_get_roundtrip(self):
        op = const()
        assert accfg.get_effects(op) is None
        accfg.set_effects(op, "none")
        assert accfg.get_effects(op) == "none"
        accfg.set_effects(op, "all")
        assert accfg.get_effects(op) == "all"


class TestSetupOp:
    def test_fields_accessors(self):
        a, b = const(1), const(2)
        op = setup([("x", a.result), ("y", b.result)])
        assert op.field_names == ("x", "y")
        assert op.field_values == (a.result, b.result)
        assert op.fields == (("x", a.result), ("y", b.result))
        assert op.field_value("y") is b.result
        assert op.field_value("z") is None

    def test_accelerator(self):
        assert setup().accelerator == ACCEL

    def test_state_chaining(self):
        s1 = setup([("x", const(1).result)])
        s2 = setup([("x", const(2).result)], in_state=s1.out_state)
        assert s2.in_state is s1.out_state
        assert s1.in_state is None

    def test_result_is_state_type(self):
        op = setup()
        assert op.out_state.type == accfg.StateType(ACCEL)

    def test_set_fields_preserves_state(self):
        s1 = setup()
        s2 = setup([("x", const(1).result)], in_state=s1.out_state)
        v = const(9)
        s2.set_fields([("y", v.result)])
        assert s2.in_state is s1.out_state
        assert s2.fields == (("y", v.result),)

    def test_set_in_state(self):
        s1 = setup()
        s2 = setup([("x", const(1).result)])
        s2.set_in_state(s1.out_state)
        assert s2.in_state is s1.out_state
        s2.set_in_state(None)
        assert s2.in_state is None
        assert s2.field_names == ("x",)

    def test_duplicate_fields_rejected(self):
        op = setup([("x", const(1).result), ("x", const(2).result)])
        with pytest.raises(VerifyError, match="duplicate"):
            op.verify_()

    def test_state_as_field_value_rejected(self):
        s1 = setup()
        op = accfg.SetupOp(
            operands=[s1.out_state],
            result_types=[accfg.StateType(ACCEL)],
        )
        from repro.ir import ArrayAttr, StringAttr

        op.attributes["accelerator"] = StringAttr(ACCEL)
        # claim the state operand is a field by not treating it as in_state:
        # the first operand IS a state, so it's interpreted as in_state and
        # param_names must be empty.
        op.attributes["param_names"] = ArrayAttr((StringAttr("x"),))
        with pytest.raises(VerifyError):
            op.verify_()

    def test_mismatched_accelerator_state(self):
        s1 = setup(accel="a")
        with pytest.raises(VerifyError):
            op = accfg.SetupOp.create("b", [], s1.out_state)
            op.verify_()


class TestLaunchOp:
    def test_basic(self):
        s = setup()
        launch = accfg.LaunchOp.create(s.out_state)
        assert launch.state is s.out_state
        assert launch.token.type == accfg.TokenType(ACCEL)
        assert launch.accelerator == ACCEL
        launch.verify_()

    def test_launch_fields(self):
        s = setup()
        v = const(3)
        launch = accfg.LaunchOp.create(s.out_state, [("go", v.result)])
        assert launch.fields == (("go", v.result),)
        launch.verify_()

    def test_launch_requires_state(self):
        with pytest.raises(VerifyError):
            accfg.LaunchOp.create(const(1).result)


class TestAwaitOp:
    def test_basic(self):
        s = setup()
        token = accfg.LaunchOp.create(s.out_state).token
        op = accfg.AwaitOp.create(token)
        assert op.token is token
        assert op.accelerator == ACCEL
        op.verify_()

    def test_requires_token(self):
        with pytest.raises(VerifyError):
            accfg.AwaitOp.create(const(1).result)


class TestResetOp:
    def test_basic(self):
        s = setup()
        op = accfg.ResetOp.create(s.out_state)
        assert op.state is s.out_state
        op.verify_()

    def test_requires_state(self):
        with pytest.raises(VerifyError):
            accfg.ResetOp.create(const(1).result)
