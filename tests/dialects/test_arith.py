"""Tests for the arith dialect: construction, verification, folding."""

import pytest

from repro.dialects import arith
from repro.ir import IntegerAttr, VerifyError, i1, i8, i64


def const(value, type=i64):
    return arith.ConstantOp.create(value, type)


class TestConstant:
    def test_value_accessor(self):
        assert const(42).value == 42

    def test_negative_wraps_to_unsigned(self):
        c = const(-1, i8)
        assert c.value == 255

    def test_verify_requires_matching_type(self):
        c = const(1, i64)
        c.attributes["value"] = IntegerAttr(1, i8)
        with pytest.raises(VerifyError):
            c.verify_()


class TestBinaryConstruction:
    def test_mismatched_types_rejected(self):
        with pytest.raises(VerifyError):
            arith.AddiOp.create(const(1, i64).result, const(1, i8).result)

    def test_result_type_follows_operands(self):
        add = arith.AddiOp.create(const(1, i8).result, const(2, i8).result)
        assert add.result.type == i8

    @pytest.mark.parametrize(
        "cls,lhs,rhs,expected",
        [
            (arith.AddiOp, 3, 4, 7),
            (arith.SubiOp, 10, 4, 6),
            (arith.MuliOp, 6, 7, 42),
            (arith.DivuiOp, 9, 2, 4),
            (arith.RemuiOp, 9, 2, 1),
            (arith.AndiOp, 0b1100, 0b1010, 0b1000),
            (arith.OriOp, 0b1100, 0b1010, 0b1110),
            (arith.XoriOp, 0b1100, 0b1010, 0b0110),
            (arith.ShliOp, 1, 4, 16),
            (arith.ShruiOp, 16, 4, 1),
            (arith.MinUIOp, 3, 9, 3),
            (arith.MaxUIOp, 3, 9, 9),
        ],
    )
    def test_evaluate(self, cls, lhs, rhs, expected):
        op = cls.create(const(lhs).result, const(rhs).result)
        assert op.evaluate(lhs, rhs) == expected


class TestFolding:
    def fold_result(self, op):
        folded = op.fold()
        assert folded is not None and len(folded) == 1
        return folded[0]

    def test_constant_fold_add(self):
        op = arith.AddiOp.create(const(3).result, const(4).result)
        assert self.fold_result(op) == IntegerAttr(7, i64)

    def test_fold_wraps_to_width(self):
        op = arith.AddiOp.create(const(255, i8).result, const(1, i8).result)
        assert self.fold_result(op) == IntegerAttr(0, i8)

    @staticmethod
    def unknown(value=5):
        """A non-constant value (so identity folds, not constant folds, fire)."""
        return arith.AddiOp.create(const(value).result, const(0).result)

    def test_add_zero_identity(self):
        x = self.unknown()
        op = arith.AddiOp.create(x.result, const(0).result)
        assert self.fold_result(op) is x.result

    def test_zero_plus_x(self):
        x = self.unknown()
        op = arith.AddiOp.create(const(0).result, x.result)
        assert self.fold_result(op) is x.result

    def test_mul_one_identity(self):
        x = self.unknown()
        op = arith.MuliOp.create(x.result, const(1).result)
        assert self.fold_result(op) is x.result

    def test_mul_zero_annihilates(self):
        x = arith.AddiOp.create(const(5).result, const(6).result)
        op = arith.MuliOp.create(x.result, const(0).result)
        assert self.fold_result(op) == IntegerAttr(0, i64)

    def test_sub_self_is_zero(self):
        x = const(5)
        op = arith.SubiOp.create(x.result, x.result)
        assert self.fold_result(op) == IntegerAttr(0, i64)

    def test_div_by_zero_not_folded(self):
        op = arith.DivuiOp.create(const(5).result, const(0).result)
        assert op.fold() is None

    def test_rem_by_one_is_zero(self):
        x = arith.AddiOp.create(const(5).result, const(6).result)
        op = arith.RemuiOp.create(x.result, const(1).result)
        assert self.fold_result(op) == IntegerAttr(0, i64)

    def test_or_self(self):
        x = self.unknown()
        op = arith.OriOp.create(x.result, x.result)
        assert self.fold_result(op) is x.result

    def test_xor_self_is_zero(self):
        x = self.unknown()
        op = arith.XoriOp.create(x.result, x.result)
        assert self.fold_result(op) == IntegerAttr(0, i64)

    def test_no_fold_for_unknowns(self):
        x = arith.AddiOp.create(const(1).result, const(2).result)
        y = arith.AddiOp.create(const(3).result, const(4).result)
        op = arith.AddiOp.create(x.result, y.result)
        assert op.fold() is None


class TestCmpi:
    @pytest.mark.parametrize(
        "pred,lhs,rhs,expected",
        [
            ("eq", 1, 1, True),
            ("ne", 1, 1, False),
            ("ult", 2, 3, True),
            ("ule", 3, 3, True),
            ("ugt", 4, 3, True),
            ("uge", 2, 3, False),
            ("slt", 2, 3, True),
            ("sge", 3, 3, True),
        ],
    )
    def test_predicates(self, pred, lhs, rhs, expected):
        assert (
            arith.CmpiOp.evaluate_predicate(pred, lhs, rhs, 64) is expected
        )

    def test_signed_uses_twos_complement(self):
        # 255 as i8 is -1, which is slt 0.
        assert arith.CmpiOp.evaluate_predicate("slt", 255, 0, 8)
        assert not arith.CmpiOp.evaluate_predicate("ult", 255, 0, 8)

    def test_result_is_i1(self):
        op = arith.CmpiOp.create("eq", const(1).result, const(1).result)
        assert op.result.type == i1

    def test_unknown_predicate_rejected(self):
        with pytest.raises(VerifyError):
            arith.CmpiOp.create("weird", const(1).result, const(1).result)

    def test_fold_constants(self):
        op = arith.CmpiOp.create("ult", const(1).result, const(2).result)
        assert op.fold() == [IntegerAttr(1, i1)]

    def test_fold_same_value_reflexive(self):
        x = arith.AddiOp.create(const(1).result, const(2).result)
        eq = arith.CmpiOp.create("eq", x.result, x.result)
        assert eq.fold() == [IntegerAttr(1, i1)]
        lt = arith.CmpiOp.create("ult", x.result, x.result)
        assert lt.fold() == [IntegerAttr(0, i1)]


class TestSelect:
    def test_fold_constant_condition(self):
        t = const(1)
        f = const(2)
        cond = arith.ConstantOp.create(1, i1)
        op = arith.SelectOp.create(cond.result, t.result, f.result)
        assert op.fold() == [t.result]

    def test_fold_equal_branches(self):
        x = const(5)
        cond_op = arith.CmpiOp.create("eq", const(1).result, const(2).result)
        op = arith.SelectOp.create(cond_op.result, x.result, x.result)
        assert op.fold() == [x.result]

    def test_condition_must_be_i1(self):
        op = arith.SelectOp(
            operands=[const(1).result, const(2).result, const(3).result],
            result_types=[i64],
        )
        with pytest.raises(VerifyError):
            op.verify_()


class TestHelpers:
    def test_constant_value(self):
        assert arith.constant_value(const(9).result) == 9
        add = arith.AddiOp.create(const(1).result, const(2).result)
        assert arith.constant_value(add.result) is None

    def test_truncate_to_type(self):
        assert arith.truncate_to_type(256, i8) == 0
        assert arith.truncate_to_type(-1, i8) == 255
        from repro.ir import index

        assert arith.truncate_to_type(10**20, index) == 10**20

    def test_materialize_attr(self):
        op = arith.materialize_attr(IntegerAttr(5, i8))
        assert op.value == 5 and op.result.type == i8

    def test_materialize_non_integer_raises(self):
        from repro.ir import StringAttr

        with pytest.raises(VerifyError):
            arith.materialize_attr(StringAttr("nope"))
