"""Tests for the scf dialect: for/if/yield structure and helpers."""

import pytest

from repro.dialects import arith, scf
from repro.ir import Block, VerifyError, i1, i64, index


def bounds():
    lb = arith.ConstantOp.create(0, index)
    ub = arith.ConstantOp.create(8, index)
    step = arith.ConstantOp.create(1, index)
    return lb, ub, step


class TestForOp:
    def test_create_default_body(self):
        lb, ub, step = bounds()
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        assert loop.induction_var.type == index
        assert loop.iter_args == ()
        assert loop.results == []

    def test_iter_args_threading(self):
        lb, ub, step = bounds()
        init = arith.ConstantOp.create(0, i64)
        loop = scf.ForOp.create(lb.result, ub.result, step.result, [init.result])
        assert len(loop.iter_args) == 1
        assert loop.iter_args[0].type == i64
        assert loop.results[0].type == i64
        assert loop.iter_inits == (init.result,)

    def test_accessors(self):
        lb, ub, step = bounds()
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        assert loop.lb is lb.result
        assert loop.ub is ub.result
        assert loop.step is step.result

    def test_yield_op_accessor(self):
        lb, ub, step = bounds()
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        loop.body.add_op(scf.YieldOp.create())
        assert isinstance(loop.yield_op, scf.YieldOp)

    def test_yield_missing_raises(self):
        lb, ub, step = bounds()
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        with pytest.raises(VerifyError):
            loop.yield_op

    def test_add_iter_arg(self):
        lb, ub, step = bounds()
        loop = scf.ForOp.create(lb.result, ub.result, step.result)
        inner = arith.ConstantOp.create(3, i64)
        loop.body.add_ops([inner, scf.YieldOp.create()])
        init = arith.ConstantOp.create(0, i64)
        arg, result = loop.add_iter_arg(init.result, yielded=inner.result, name_hint="x")
        assert arg.type == i64 and result.type == i64
        assert loop.yield_op.operands == (inner.result,)
        loop.verify_()

    def test_verify_iter_mismatch(self):
        lb, ub, step = bounds()
        init = arith.ConstantOp.create(0, i64)
        loop = scf.ForOp.create(lb.result, ub.result, step.result, [init.result])
        loop.body.add_op(scf.YieldOp.create())  # yields nothing, expects 1
        with pytest.raises(VerifyError):
            loop.verify_()

    def test_verify_iv_type(self):
        lb, ub, step = bounds()
        body = Block(arg_types=[i64])  # wrong iv type
        body.add_op(scf.YieldOp.create())
        loop = scf.ForOp(
            operands=[lb.result, ub.result, step.result],
            result_types=[],
            regions=[__import__("repro.ir", fromlist=["Region"]).Region([body])],
        )
        with pytest.raises(VerifyError):
            loop.verify_()


class TestIfOp:
    def cond(self):
        return arith.ConstantOp.create(1, i1)

    def test_result_free_if_without_else(self):
        op = scf.IfOp.create(self.cond().result)
        op.then_block.add_op(scf.YieldOp.create())
        assert not op.has_else
        op.verify_()

    def test_if_with_results_requires_else(self):
        op = scf.IfOp.create(self.cond().result, [i64])
        a = arith.ConstantOp.create(1, i64)
        b = arith.ConstantOp.create(2, i64)
        op.then_block.add_ops([a, scf.YieldOp.create([a.result])])
        op.else_block.add_ops([b, scf.YieldOp.create([b.result])])
        op.verify_()

    def test_yield_arity_checked(self):
        op = scf.IfOp.create(self.cond().result, [i64])
        op.then_block.add_op(scf.YieldOp.create())
        op.else_block.add_op(scf.YieldOp.create())
        with pytest.raises(VerifyError):
            op.verify_()

    def test_yield_type_checked(self):
        op = scf.IfOp.create(self.cond().result, [i64])
        a = arith.ConstantOp.create(1, index)
        op.then_block.add_ops([a, scf.YieldOp.create([a.result])])
        b = arith.ConstantOp.create(1, index)
        op.else_block.add_ops([b, scf.YieldOp.create([b.result])])
        with pytest.raises(VerifyError):
            op.verify_()

    def test_condition_type_checked(self):
        c = arith.ConstantOp.create(1, i64)
        op = scf.IfOp.create(c.result)
        op.then_block.add_op(scf.YieldOp.create())
        with pytest.raises(VerifyError):
            op.verify_()


class TestYield:
    def test_is_terminator(self):
        assert scf.YieldOp.create().is_terminator

    def test_carries_values(self):
        c = arith.ConstantOp.create(1, i64)
        y = scf.YieldOp.create([c.result])
        assert y.operands == (c.result,)
