"""Outlook benchmark: Figure 1's reconfigurability trade-off, measured.

"Adding configuration options increases usefulness, but every added
configuration option also directly reduces the achievable performance
without proper optimizations."  The bench sweeps interface width and shows
the compiler flattening the wall.
"""

from repro.experiments import outlook_tradeoff


def test_reconfigurability_tradeoff(once):
    result = once(outlook_tradeoff.run, knob_counts=(0, 4, 16, 32))
    assert result.optimized_decay > result.baseline_decay
    print("\nreconfigurability trade-off (utilization vs interface width):")
    for row in result.rows:
        print(
            f"  +{row.knobs:2d} knobs: baseline {row.baseline_utilization:.1%}, "
            f"optimized {row.optimized_utilization:.1%} "
            f"({row.recovered:.2f}x recovered)"
        )
