"""Benchmark: regenerate Figure 12 (measurements on the roofline).

Paper claims (Section 6.2.1): deduplication moves points up and to the right
(size 128 leaves the configuration-bound regime); overlap moves points
straight up by at most the sequential/concurrent gap; both combined win.
"""

from repro.core import Boundness
from repro.experiments import fig12_roofline

SIZES = (32, 128)


def test_fig12_roofline_placement(once):
    result = once(fig12_roofline.run, sizes=SIZES, functional=False)
    roofline = result.roofline

    for size in SIZES:
        base = result.point(size, "baseline")
        dedup = result.point(size, "dedup")
        overlap = result.point(size, "overlap")
        full = result.point(size, "full")

        # Arrow 1: dedup up and right.
        assert dedup.i_oc > base.i_oc
        assert dedup.performance > base.performance
        # Arrow 2: overlap straight up, bounded by the concurrent roof.
        assert overlap.performance > base.performance
        assert overlap.performance <= roofline.attainable_concurrent(overlap.i_oc) * 1.05
        # Arrow 3: both yields the best performance.
        assert full.performance >= max(dedup.performance, overlap.performance) * 0.99

    # The headline region claim at size 128.
    assert result.boundness(128, "baseline") is Boundness.CONFIG_BOUND
    assert result.boundness(128, "dedup") is Boundness.COMPUTE_BOUND

    print("\nFigure 12 reproduction:")
    for point in result.points:
        region = roofline.boundness(point.i_oc).value
        print(
            f"  {point.label:>14}: I_OC {point.i_oc:8.1f} ops/B, "
            f"{point.performance:7.1f} ops/cycle  [{region}]"
        )
