"""Benchmarks: regenerate Table 1 and the Section 4.6 worked example."""

import pytest

from repro.experiments import example_4_6, table1_fields


def test_table1_fields(once):
    result = once(table1_fields.run)
    assert len(result.fields) == 17
    assert result.total_bits == 616
    print(
        f"\nTable 1: {len(result.fields)} loop_ws fields, {result.total_bits} "
        f"bits -> {result.rocc_writes} RoCC writes ({result.config_bytes} B)"
    )


def test_example_4_6_roofline_numbers(once):
    result = once(example_4_6.run)
    assert result.config_bandwidth == pytest.approx(1.778, abs=0.01)
    assert result.i_oc == pytest.approx(205.19, abs=0.01)
    assert result.utilization_theoretical == pytest.approx(0.4149, abs=0.005)
    assert result.effective_bandwidth == pytest.approx(0.913, abs=0.001)
    assert result.utilization_effective == pytest.approx(0.2678, abs=0.001)
    print(
        f"\nSection 4.6: BW={result.config_bandwidth:.3f} B/cyc, "
        f"I_OC={result.i_oc:.2f}, attainable {result.utilization_theoretical:.2%} "
        f"(effective: {result.utilization_effective:.2%})"
    )
