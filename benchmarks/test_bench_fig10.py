"""Benchmark: regenerate Figure 10 (Gemmini attainable performance).

Paper claims (Section 6.1 / artifact A.6): accfg gives a ~10.5-11% geomean
uplift over the GCC -O2 baseline, with no benefit at single-invocation sizes
and the largest gains at mid sizes.
"""

from repro.core import geomean
from repro.experiments import fig10_gemmini

SIZES = (16, 32, 64, 128)


def test_fig10_gemmini_attainable_performance(once):
    result = once(fig10_gemmini.run, sizes=SIZES, functional=False)

    # Shape claims from the paper hold:
    assert result.rows[0].uplift <= 1.05  # single tile: nothing to dedup
    assert result.geomean_uplift >= 1.05  # positive geomean uplift
    assert result.max_uplift == max(r.uplift for r in result.rows)
    utils = [row.baseline_utilization for row in result.rows]
    assert utils == sorted(utils)  # utilization rises with size

    print("\nFigure 10 reproduction (baseline vs accfg attainable %):")
    for row in result.rows:
        print(
            f"  size {row.size:4d}: {row.baseline_utilization * 100:5.1f}% -> "
            f"{row.optimized_utilization * 100:5.1f}%  ({row.uplift:.3f}x)"
        )
    print(
        f"  geomean uplift {result.geomean_uplift:.3f}x (paper ~1.11x), "
        f"max {result.max_uplift:.3f}x (paper ~1.15x)"
    )


def test_fig10_baseline_runs(once):
    """Time the baseline leg alone (workload generation + co-simulation)."""
    from repro.experiments.common import run_workload
    from repro.workloads import build_gemmini_matmul

    run = once(
        lambda: run_workload(
            build_gemmini_matmul(64), "volatile-baseline", functional=False
        )
    )
    assert run.metrics.total_cycles > 0
