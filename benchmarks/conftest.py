"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures; rounds are
kept at one because each experiment is already an aggregate over many
co-simulated program runs (pytest-benchmark's statistics would otherwise
re-run multi-second sweeps dozens of times).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once, returning its result."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
