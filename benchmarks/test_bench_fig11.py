"""Benchmark: regenerate Figure 11 (OpenGeMM speedups).

Paper claims (artifact A.6): performance improved 1.99x geomean, up to 2.71x
for some sizes, through deduplication plus overlap.
"""

from repro.experiments import fig11_opengemm

SIZES = (16, 32, 64, 128, 256)


def test_fig11_opengemm_speedups(once):
    result = once(fig11_opengemm.run, sizes=SIZES, functional=False)

    geomean = result.geomean_speedup("full")
    maximum = result.max_speedup("full")
    # Band check: geomean ~2x, max below ~3x, per the paper's claims.
    assert 1.5 <= geomean <= 2.6, geomean
    assert maximum <= 3.2, maximum

    # Ordering claims: 'both' dominates each individual optimization.
    for row in result.rows:
        assert row.speedup("full") >= max(
            row.speedup("dedup"), row.speedup("overlap")
        ) * 0.99

    # Crossover claim: dedup's advantage fades at large (compute-bound)
    # sizes while overlap's contribution grows.
    dedup_small = result.rows[0].speedup("dedup")
    dedup_large = result.rows[-1].speedup("dedup")
    overlap_small = result.rows[0].speedup("overlap")
    overlap_large = result.rows[-1].speedup("overlap")
    assert dedup_large <= dedup_small * 1.2
    assert overlap_large >= overlap_small

    print("\nFigure 11 reproduction (speedup over base):")
    for row in result.rows:
        print(
            f"  size {row.size:4d}: dedup {row.speedup('dedup'):.2f}x  "
            f"overlap {row.speedup('overlap'):.2f}x  "
            f"both {row.speedup('full'):.2f}x"
        )
    print(f"  geomean (both) {geomean:.3f}x (paper 1.99x), max {maximum:.3f}x (paper 2.71x)")
