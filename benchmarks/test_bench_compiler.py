"""Compiler-infrastructure benchmarks: pass throughput and parser speed.

These are engineering benchmarks for the library itself (not paper figures):
how fast the optimization pipeline and the textual round-trip run on the
largest evaluation workload.
"""

from repro.ir import parse_module
from repro.passes import pipeline_by_name
from repro.workloads import build_gemmini_matmul, build_opengemm_matmul


def test_bench_full_pipeline_on_opengemm(benchmark):
    def compile_once():
        workload = build_opengemm_matmul(128)
        pipeline_by_name("full").run(workload.module)
        return workload.module

    module = benchmark.pedantic(compile_once, rounds=3, iterations=1)
    assert module is not None


def test_bench_full_pipeline_on_gemmini(benchmark):
    def compile_once():
        workload = build_gemmini_matmul(64)
        pipeline_by_name("full").run(workload.module)
        return workload.module

    module = benchmark.pedantic(compile_once, rounds=3, iterations=1)
    assert module is not None


def test_bench_print_parse_roundtrip(benchmark):
    workload = build_opengemm_matmul(64)
    pipeline_by_name("full").run(workload.module)
    text = str(workload.module)

    module = benchmark.pedantic(
        lambda: parse_module(text), rounds=3, iterations=1
    )
    assert str(module) == text
