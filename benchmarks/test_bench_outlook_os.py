"""Outlook benchmark: the paper's output-stationary conjecture (Section 6.1):
"In Gemmini's output stationary flow ... we would expect to see larger
performance improvements."
"""

from repro.experiments import outlook_os_gemmini


def test_output_stationary_conjecture(once):
    result = once(outlook_os_gemmini.run, sizes=(32, 64), functional=False)
    assert result.prediction_holds
    print(
        f"\nGemmini accfg uplift: weight-stationary {result.ws_geomean:.3f}x, "
        f"output-stationary {result.os_geomean:.3f}x — the paper's "
        "conjecture holds in this model"
    )
