"""Outlook benchmark: matrix shape vs the configuration wall."""

from repro.experiments import outlook_shapes


def test_shape_sweep(once):
    result = once(outlook_shapes.run, functional=False)
    speedups = [row.speedup for row in result.rows]
    assert speedups == sorted(speedups, reverse=True)
    print("\nconstant-volume shape sweep (OpenGeMM, full pipeline):")
    for row in result.rows:
        print(
            f"  {row.label:>10}: I_OC {row.baseline_i_oc:6.1f} ops/B "
            f"[{result.boundness(row).value}] -> {row.speedup:.2f}x"
        )
