"""End-to-end benchmark: quantized MLP inference (the intro's motivating
workload) through the complete Figure-8 flow on two accelerators."""

from repro.backends import get_accelerator
from repro.interp import run_module
from repro.passes import ConvertLinalgToAccfgPass, pipeline_by_name
from repro.sim import CoSimulator
from repro.workloads.network import build_mlp

LAYERS = [32, 64, 64, 32, 8]


def run_inference(pipeline: str) -> float:
    workload = build_mlp(LAYERS, batch=16, seed=11)
    ConvertLinalgToAccfgPass().apply(workload.module)
    pipeline_by_name(pipeline).run(workload.module)
    sim = CoSimulator(
        memory=workload.memory,
        cost_model=get_accelerator("opengemm").host_cost_model(),
    )
    run_module(workload.module, sim)
    assert workload.check()
    return sim.total_cycles


def test_mlp_inference_speedup(once):
    results = once(
        lambda: {p: run_inference(p) for p in ("baseline", "dedup", "full")}
    )
    assert results["dedup"] < results["baseline"]
    assert results["full"] < results["dedup"]
    speedup = results["baseline"] / results["full"]
    assert speedup > 1.2
    print(
        f"\nMLP inference: baseline {results['baseline']:.0f} cycles, "
        f"full pipeline {results['full']:.0f} cycles ({speedup:.2f}x), "
        "outputs bit-exact vs numpy"
    )
