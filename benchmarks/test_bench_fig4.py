"""Benchmark: regenerate Figures 4 and 5 (the model curves)."""

import pytest

from repro.experiments import figure4_rooflines


def test_fig4_roofline_curves(once):
    result = once(figure4_rooflines.run, points=201)
    # The largest sequential/concurrent gap sits at the knee (Section 4.3).
    assert result.max_gap_location() == pytest.approx(result.knee, rel=0.05)
    for _, sequential, concurrent in result.samples:
        assert sequential < concurrent <= result.roofline.peak_performance
    print(f"\nFigure 4: knee at I_OC={result.knee:.1f} ops/B")


def test_fig5_roofsurface(once):
    surface = once(figure4_rooflines.run_roofsurface, points=17)
    flat = [v for row in surface.surface for v in row]
    assert max(flat) == surface.roofline.peak_performance
    # Monotone along both axes.
    for row in surface.surface:
        assert all(b >= a for a, b in zip(row, row[1:]))
    columns = zip(*surface.surface)
    for column in columns:
        assert all(b >= a for a, b in zip(column, column[1:]))
