"""Outlook benchmark: queue-based configuration schemes (paper, Section 8).

The paper points to FIFO/queue-based setup schemes (Cohort) as future work;
our device model supports a configurable launch-queue depth.  This bench
sweeps the depth on a launch-dominated workload and shows the launch barrier
cost disappearing — the wall moves from the synchronization interface to raw
configuration bandwidth.
"""

import numpy as np

from repro.backends import get_accelerator, register_accelerator
from repro.backends.toyvec import ToyVecSpec
from repro.isa import HostCostModel
from repro.sim import CoSimulator, Memory


def chained_launches(name: str, launches: int = 32):
    memory = Memory()
    x = memory.place(np.arange(64, dtype=np.int32))
    y = memory.place(np.arange(64, dtype=np.int32))
    out = memory.alloc(64, np.int32)
    sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
    sim.exec_setup(
        name,
        {"ptr_x": x.addr, "ptr_y": y.addr, "ptr_out": out.addr, "n": 64, "op": 0},
    )
    tokens = [sim.exec_launch(name) for _ in range(launches)]
    for token in tokens:
        sim.exec_await(token)
    assert (out.array == x.array + y.array).all()
    return sim.total_cycles


def _ensure_depth_variant(depth: int) -> str:
    name = f"toyvec-q{depth}"
    from repro.backends import get_accelerator_or_none

    if get_accelerator_or_none(name) is None:
        spec_class = type(
            f"ToyVecQ{depth}",
            (ToyVecSpec,),
            {"name": name, "launch_queue_depth": depth},
        )
        register_accelerator(spec_class())
    return name


def test_queue_depth_sweep(once):
    def sweep():
        results = {}
        for depth in (1, 2, 4, 8):
            results[depth] = chained_launches(_ensure_depth_variant(depth))
        return results

    results = once(sweep)
    # Deeper queues monotonically reduce total time on this launch chain...
    cycles = [results[d] for d in (1, 2, 4, 8)]
    assert all(b <= a for a, b in zip(cycles, cycles[1:]))
    # ...and the improvement saturates once the host is the bottleneck.
    assert results[8] >= results[1] * 0.3

    print("\nlaunch-queue depth sweep (32 chained launches):")
    for depth in (1, 2, 4, 8):
        print(
            f"  depth {depth}: {results[depth]:6.0f} cycles "
            f"({results[1] / results[depth]:.2f}x vs single-level staging)"
        )
