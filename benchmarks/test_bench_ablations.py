"""Ablation benchmarks: the contribution of each dedup sub-rewrite and of
the generic cleanups, on the OpenGeMM workload (DESIGN.md section 6).

Not a paper figure — these quantify the design choices Section 5.4.1
motivates (branch hoisting, loop-field hoisting, merge/cleanup) by running
partial pipelines.
"""

from repro.backends import get_accelerator
from repro.interp import run_module
from repro.passes import (
    CanonicalizePass,
    CSEPass,
    DCEPass,
    DedupPass,
    LICMPass,
    PassManager,
    TraceStatesPass,
)
from repro.passes.dedup import (
    eliminate_redundant_fields,
    hoist_invariant_setup_fields,
    merge_consecutive_setups,
    remove_empty_setups,
)
from repro.sim import CoSimulator
from repro.sim.metrics import collect_metrics
from repro.workloads import build_opengemm_matmul

SIZE = 64


def measure(pipeline_builder, once=None):
    workload = build_opengemm_matmul(SIZE)
    pipeline_builder(workload.module)
    sim = CoSimulator(
        memory=workload.memory,
        cost_model=get_accelerator("opengemm").host_cost_model(),
        functional=False,
    )
    run_module(workload.module, sim)
    return collect_metrics(sim, "opengemm")


def cleanups(module):
    PassManager([CanonicalizePass(), CSEPass(), LICMPass(), DCEPass()]).run(module)


def test_ablation_dedup_without_loop_hoisting(once):
    """Redundant-field elimination alone cannot touch in-loop setups whose
    input state is loop-carried with varying fields — loop hoisting is what
    unlocks the OpenGeMM win."""

    def elimination_only(module):
        cleanups(module)
        TraceStatesPass().apply(module)
        for _ in range(10):
            changed = eliminate_redundant_fields(module)
            changed |= remove_empty_setups(module)
            if not changed:
                break
        cleanups(module)

    def full_dedup(module):
        cleanups(module)
        TraceStatesPass().apply(module)
        DedupPass().apply(module)
        cleanups(module)

    partial = once(lambda: (measure(elimination_only), measure(full_dedup)))
    elimination, full = partial
    assert full.config_bytes < elimination.config_bytes
    print(
        f"\nconfig bytes: elimination-only {elimination.config_bytes}, "
        f"with loop hoisting {full.config_bytes} "
        f"({elimination.config_bytes / full.config_bytes:.1f}x reduction)"
    )


def test_ablation_cleanups_contribution(once):
    """The 'free' MLIR optimizations (Section 5.2) on their own: constant
    hoisting and CSE reduce calc instructions without touching setups."""

    def raw(module):
        PassManager([]).run(module)

    results = once(lambda: (measure(raw), measure(cleanups)))
    unoptimized, cleaned = results
    assert cleaned.calc_instrs < unoptimized.calc_instrs
    assert cleaned.setup_instrs == unoptimized.setup_instrs
    print(
        f"\ncalc instrs: raw {unoptimized.calc_instrs}, after generic "
        f"cleanups {cleaned.calc_instrs}"
    )


def test_ablation_merge_contribution(once):
    """Merging launch-free setup chains reduces write count when the
    frontend splits configuration across several setups."""
    from repro.ir import parse_module
    from repro.ir.verifier import verify_operation

    text = """
    func.func @main(%a : i64, %b : i64, %c : i64) -> () {
      %s1 = accfg.setup on "toyvec" ("ptr_x" = %a : i64) : !accfg.state<"toyvec">
      %s2 = accfg.setup on "toyvec" from %s1 ("ptr_y" = %b : i64) : !accfg.state<"toyvec">
      %s3 = accfg.setup on "toyvec" from %s2 ("n" = %c : i64) : !accfg.state<"toyvec">
      %t = accfg.launch %s3 : !accfg.token<"toyvec">
      accfg.await %t
      func.return
    }
    """

    def count_setups(merge: bool) -> int:
        module = parse_module(text)
        if merge:
            merge_consecutive_setups(module)
        verify_operation(module)
        return sum(1 for op in module.walk() if op.name == "accfg.setup")

    counts = once(lambda: (count_setups(False), count_setups(True)))
    assert counts == (3, 1)
