"""Benchmark: regenerate the Figure 2/7 timeline characterization."""

from repro.experiments import fig2_timeline


def test_fig2_overhead_elimination(once):
    result = once(fig2_timeline.run, size=16)
    baseline = result.breakdown("baseline")
    dedup = result.breakdown("dedup")
    full = result.breakdown("full")

    # Figure 7's two-step story: dedup makes configuration shorter, overlap
    # hides what remains behind accelerator execution.
    assert dedup.config_cycles < baseline.config_cycles
    assert full.accel_idle_cycles < dedup.accel_idle_cycles

    print("\nFigure 2/7 reproduction (accelerator idle fraction):")
    for variant in ("baseline", "dedup", "full"):
        breakdown = result.breakdown(variant)
        print(
            f"  {variant:9s}: total {breakdown.total_cycles:5.0f} cycles, "
            f"overhead {breakdown.overhead_fraction:.0%}"
        )
