#!/usr/bin/env python
"""Quickstart: is my accelerator configuration-bound?

Walks through the library's three layers:

1. model an accelerator with the configuration roofline (paper, Section 4),
2. write an accfg program and optimize it (Section 5),
3. co-simulate it and place the measurement on the roofline (Section 6).

Run: python examples/quickstart.py
"""

import numpy as np

from repro.backends import get_accelerator
from repro.core import analyze_run, ascii_roofline, roofline_for_spec
from repro.interp import run_module
from repro.ir import parse_module
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator, Memory
from repro.sim.metrics import collect_metrics

# -- 1. The analytical model -------------------------------------------------

spec = get_accelerator("toyvec")  # a small 8-lane vector engine
roofline = roofline_for_spec(spec, spec.host_cost_model())
print(f"{spec.name}: P_peak = {roofline.peak_performance:g} ops/cycle,")
print(f"  BW_config = {roofline.config_bandwidth:.2f} B/cycle,")
print(f"  configuration wall (knee) at I_OC = {roofline.knee_intensity:.1f} ops/B\n")

# -- 2. An accelerator program: chunked vector addition ----------------------

memory = Memory()
x = memory.place(np.arange(256, dtype=np.int32))
y = memory.place(np.arange(256, dtype=np.int32)[::-1].copy())
out = memory.alloc(256, np.int32)

# The naive frontend re-configures every register for every chunk; only the
# three pointers actually change.  Written as textual accfg IR:
PROGRAM = f"""
builtin.module {{
  func.func @main() -> () {{
    %base_x = arith.constant {x.addr} : index
    %base_y = arith.constant {y.addr} : index
    %base_o = arith.constant {out.addr} : index
    %c0 = arith.constant 0 : index
    %c1 = arith.constant 1 : index
    %c8 = arith.constant 8 : index
    scf.for %chunk = %c0 to %c8 step %c1 {{
      %c32 = arith.constant 32 : index
      %c4 = arith.constant 4 : index
      %off = arith.muli %chunk, %c32 : index
      %bytes = arith.muli %off, %c4 : index
      %px = arith.addi %base_x, %bytes : index
      %py = arith.addi %base_y, %bytes : index
      %po = arith.addi %base_o, %bytes : index
      %n = arith.constant 32 : index
      %op = arith.constant 0 : index
      %s = accfg.setup on "toyvec" ("ptr_x" = %px : index, "ptr_y" = %py : index, "ptr_out" = %po : index, "n" = %n : index, "op" = %op : index) : !accfg.state<"toyvec">
      %t = accfg.launch %s : !accfg.token<"toyvec">
      accfg.await %t
      scf.yield
    }}
    func.return
  }}
}}
"""


def run(pipeline: str):
    module = parse_module(PROGRAM)
    pipeline_by_name(pipeline).run(module)
    out.array[:] = 0
    sim = CoSimulator(memory=memory, cost_model=spec.host_cost_model())
    run_module(module, sim)
    assert (out.array == x.array + y.array).all(), "wrong result!"
    return collect_metrics(sim, "toyvec")


baseline = run("baseline")
optimized = run("full")
speedup = baseline.total_cycles / optimized.total_cycles
print(f"baseline : {baseline.total_cycles:6.0f} cycles ({baseline.performance:.2f} ops/cycle)")
print(f"optimized: {optimized.total_cycles:6.0f} cycles ({optimized.performance:.2f} ops/cycle)")
print(f"speedup  : {speedup:.2f}x from dedup + overlap\n")

# -- 3. Placing the measurements on the roofline ------------------------------

analysis_base = analyze_run(baseline, roofline, label="baseline")
analysis_opt = analyze_run(optimized, roofline, label="optimized")
print(f"baseline  is {analysis_base.boundness.value}")
print(f"optimized is {analysis_opt.boundness.value}\n")
print(
    ascii_roofline(
        roofline,
        [analysis_base.point, analysis_opt.point],
        i_oc_range=(0.25, 256),
    )
)
