#!/usr/bin/env python
"""Bringing your own accelerator (the paper's generality claim).

The accfg dialect and its optimization passes are target-agnostic: all a new
target needs is an :class:`AcceleratorSpec` describing its configuration
interface, timing, and (optionally) functional semantics.  This example
defines a toy 2-D convolution engine from scratch, registers it, emits an
accfg program against it, and gets deduplication + overlap without writing
one line of compiler code.

Run: python examples/custom_accelerator.py
"""

import numpy as np

from repro.backends import AcceleratorSpec, get_accelerator_or_none, register_accelerator
from repro.interp import run_module
from repro.isa import FieldSpec, config_write, launch_instr
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator, Memory
from repro.sim.metrics import collect_metrics
from repro.workloads import build_function, new_module
from repro.ir import i64

# -- 1. Describe the target --------------------------------------------------


class Conv3x3Spec(AcceleratorSpec):
    """A 3x3 convolution engine: 9 MACs per output pixel, 4 pixels/cycle."""

    name = "conv3x3"
    peak_ops_per_cycle = 4 * 9 * 2
    concurrent_config = True  # shadow registers: overlap applies
    host_cycles_per_instr = 1.0
    fields = {
        spec.name: spec
        for spec in (
            FieldSpec("ptr_in", 32, "Input image base address"),
            FieldSpec("ptr_kernel", 32, "3x3 kernel base address"),
            FieldSpec("ptr_out", 32, "Output image base address"),
            FieldSpec("rows", 16, "Input rows"),
            FieldSpec("cols", 16, "Input columns"),
        )
    }

    def setup_instrs(self, field_names):
        return [config_write("mmio", self.name, 4) for _ in field_names]

    def launch_instrs(self):
        return [launch_instr("doorbell", self.name)]

    def compute_cycles(self, config):
        rows = max(1, config.get("rows", 1)) - 2
        cols = max(1, config.get("cols", 1)) - 2
        return max(1, rows * cols / 4) + 6

    def launch_ops(self, config):
        rows = max(1, config.get("rows", 1)) - 2
        cols = max(1, config.get("cols", 1)) - 2
        return rows * cols * 9 * 2

    def execute(self, config, memory):
        rows, cols = config["rows"], config["cols"]
        image = memory.read_matrix(config["ptr_in"], rows, cols, cols, np.int32)
        kernel = memory.read_matrix(config["ptr_kernel"], 3, 3, 3, np.int32)
        out = np.zeros((rows - 2, cols - 2), dtype=np.int32)
        for dr in range(3):
            for dc in range(3):
                out += kernel[dr, dc] * image[dr : dr + rows - 2, dc : dc + cols - 2]
        memory.write_matrix(config["ptr_out"], out, cols - 2)


if get_accelerator_or_none("conv3x3") is None:
    register_accelerator(Conv3x3Spec())

# -- 2. Emit a program: convolve 6 images with the same kernel -----------------

memory = Memory()
rng = np.random.default_rng(0)
images = [
    memory.place(rng.integers(-4, 4, (18, 18), dtype=np.int32)) for _ in range(6)
]
kernel = memory.place(rng.integers(-2, 2, (3, 3), dtype=np.int32))
outputs = [memory.alloc((16, 16), np.int32) for _ in range(6)]

# The image pointers are laid out contiguously, so the program computes them
# from the loop counter — everything else is invariant and dedup-able.
stride = images[1].addr - images[0].addr
out_stride = outputs[1].addr - outputs[0].addr

module = new_module()
with build_function(module, "main") as (gen, _):
    zero = gen.const(0)
    one = gen.const(1)
    six = gen.const(6)
    with gen.loop(zero, six, one) as (_, i):
        ptr_in = gen.add(gen.const(images[0].addr), gen.mul(i, gen.const(stride)))
        ptr_out = gen.add(gen.const(outputs[0].addr), gen.mul(i, gen.const(out_stride)))
        state = gen.setup(
            "conv3x3",
            [
                ("ptr_in", ptr_in),
                ("ptr_kernel", gen.const(kernel.addr)),
                ("ptr_out", ptr_out),
                ("rows", gen.const(18)),
                ("cols", gen.const(18)),
            ],
        )
        gen.await_(gen.launch(state))

# -- 3. Optimize, run, verify ---------------------------------------------------


def run(pipeline):
    from repro.ir import parse_module

    fresh = parse_module(str(module))
    pipeline_by_name(pipeline).run(fresh)
    for out in outputs:
        out.array[:] = 0
    sim = CoSimulator(memory=memory, cost_model=Conv3x3Spec().host_cost_model())
    run_module(fresh, sim)
    return collect_metrics(sim, "conv3x3")


baseline = run("baseline")
optimized = run("full")

for image, out in zip(images, outputs):
    kernel_arr = kernel.array
    expected = np.zeros((16, 16), dtype=np.int32)
    for dr in range(3):
        for dc in range(3):
            expected += kernel_arr[dr, dc] * image.array[dr : dr + 16, dc : dc + 16]
    assert (out.array == expected).all(), "wrong convolution result"

print("conv3x3: a never-before-seen accelerator, optimized by the stock passes")
print(f"  baseline : {baseline.total_cycles:6.0f} cycles, {baseline.config_bytes} config bytes")
print(f"  optimized: {optimized.total_cycles:6.0f} cycles, {optimized.config_bytes} config bytes")
print(f"  speedup  : {baseline.total_cycles / optimized.total_cycles:.2f}x")
print("  all six outputs verified against a numpy reference.")
