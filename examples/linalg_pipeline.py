#!/usr/bin/env python
"""The complete Figure-8 flow: high-level program → accfg → optimized →
co-simulated, on two different accelerators from the same source.

A tiny "inference layer" is written once at the linalg level — a matmul
followed by an elementwise addition — and lowered to OpenGeMM + toyvec by
the step-1 conversion pass.  The shared middle-end (state tracing, dedup,
overlap) then optimizes both accelerators' configuration traffic at once.

Run: python examples/linalg_pipeline.py
"""

import numpy as np

from repro.interp import run_module
from repro.ir import parse_module, verify_operation
from repro.isa import HostCostModel
from repro.passes import ConvertLinalgToAccfgPass, pipeline_by_name
from repro.sim import CoSimulator, Memory

SIZE = 32

memory = Memory()
rng = np.random.default_rng(7)
a = memory.place(rng.integers(-4, 4, (SIZE, SIZE), dtype=np.int8))
w = memory.place(rng.integers(-4, 4, (SIZE, SIZE), dtype=np.int8))
acc = memory.alloc((SIZE, SIZE), np.int32)
bias = memory.place(rng.integers(-100, 100, SIZE * SIZE, dtype=np.int32))
result = memory.alloc(SIZE * SIZE, np.int32)

SOURCE = f"""
builtin.module {{
  func.func @main() -> () {{
    %a    = arith.constant {a.addr} : index
    %w    = arith.constant {w.addr} : index
    %acc  = arith.constant {acc.addr} : index
    %bias = arith.constant {bias.addr} : index
    %out  = arith.constant {result.addr} : index
    linalg.matmul ins(%a, %w) outs(%acc) dims({SIZE} x {SIZE} x {SIZE})
    linalg.elementwise "add" ins(%acc, %bias) outs(%out) n({SIZE * SIZE})
    func.return
  }}
}}
"""

print("=== the program, as written (linalg level) ===\n")
module = parse_module(SOURCE)
print(module)

print("\n=== step 1: convert-linalg-to-accfg ===\n")
ConvertLinalgToAccfgPass().apply(module)
verify_operation(module)
setups = sum(1 for op in module.walk() if op.name == "accfg.setup")
print(f"(lowered to {setups} setup sites across two accelerators; IR elided)")


def simulate(pipeline: str) -> float:
    fresh = parse_module(SOURCE)
    ConvertLinalgToAccfgPass().apply(fresh)
    pipeline_by_name(pipeline).run(fresh)
    acc.array[:] = 0
    result.array[:] = 0
    sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
    run_module(fresh, sim)
    expected = (
        a.array.astype(np.int32) @ w.array.astype(np.int32)
    ).reshape(-1) + bias.array
    assert (result.array == expected).all(), "wrong layer result!"
    return sim.total_cycles


baseline = simulate("baseline")
optimized = simulate("full")
print("\n=== steps 2-5: optimize and co-simulate ===\n")
print(f"baseline : {baseline:7.0f} cycles")
print(f"optimized: {optimized:7.0f} cycles   ({baseline / optimized:.2f}x)")
print("layer output verified against numpy on both runs.")
