#!/usr/bin/env python
"""Two accelerators, one program (the paper's multi-accelerator outlook).

The conclusion of the paper points at multi-accelerator systems as future
work; the state-tracing machinery already handles them because each
accelerator carries its own state chain.  This example drives the vector
engine and a Gemmini tile side by side: their setups are deduplicated
independently, and overlap applies only to the concurrent-configuration
target.

Run: python examples/multi_accelerator.py
"""

import numpy as np

from repro.backends import get_accelerator
from repro.interp import run_module
from repro.isa import HostCostModel
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator, Memory
from repro.workloads import build_function, new_module
from repro.dialects import accfg

memory = Memory()
rng = np.random.default_rng(4)
# Vector engine data.
x = memory.place(rng.integers(-9, 9, 64, dtype=np.int32))
y = memory.place(rng.integers(-9, 9, 64, dtype=np.int32))
vec_out = memory.alloc(64, np.int32)
# Gemmini fine-grained tile data.
a = memory.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
b = memory.place(rng.integers(-4, 4, (16, 16), dtype=np.int8))
c = memory.alloc((16, 16), np.int32)

module = new_module()
with build_function(module, "main") as (gen, _):
    zero = gen.const(0)
    one = gen.const(1)
    four = gen.const(4)
    with gen.loop(zero, four, one) as (_, i):
        # Vector engine: invariant configuration, dedup hoists it.
        vec_state = gen.setup(
            "toyvec",
            [
                ("ptr_x", gen.const(x.addr)),
                ("ptr_y", gen.const(y.addr)),
                ("ptr_out", gen.const(vec_out.addr)),
                ("n", gen.const(64)),
                ("op", gen.const(0)),
            ],
        )
        vec_token = gen.launch(vec_state)
        # Gemmini: one 16x16 tile multiply per iteration, accumulating.
        acc = gen.select(gen.cmp("eq", i, zero), zero, one)
        gem_state = gen.setup(
            "gemmini",
            [
                ("stride_A", gen.const(16)),
                ("stride_B", gen.const(16)),
                ("stride_C", gen.const(16)),
            ],
        )
        gem_token = gen.launch(
            gem_state,
            [
                ("op", gen.const(4)),  # OP_COMPUTE
                ("ld_addr", gen.const(a.addr)),
                ("preload_addr", gen.const(b.addr)),
                ("st_addr", gen.const(c.addr)),
                ("acc", acc),
            ],
        )
        gen.await_(vec_token)
        gen.await_(gem_token)

print("=== unoptimized IR ===")
print(module)

pipeline_by_name("full").run(module)
print("\n=== after dedup + overlap (per-accelerator state chains) ===")
print(module)

sim = CoSimulator(memory=memory, cost_model=HostCostModel(1.0))
run_module(module, sim)

assert (vec_out.array == x.array + y.array).all()
expected = 4 * (a.array.astype(np.int32) @ b.array.astype(np.int32))
assert (c.array == expected).all()

setups = [op for op in module.walk() if isinstance(op, accfg.SetupOp)]
in_loop = [s for s in setups if s.parent_op is not None and s.parent_op.name == "scf.for"]
print(f"\nsetups remaining inside the loop after optimization: {len([s for s in in_loop if s.fields])}")
print(f"total cycles: {sim.total_cycles:.0f}")
print("both accelerators' results verified against numpy.")
print(
    f"devices driven: "
    f"{', '.join(f'{name} ({device.launch_count} launches)' for name, device in sim.devices.items())}"
)
