#!/usr/bin/env python
"""Neural-network inference through the configuration wall.

The paper's introduction motivates the wall with NN inference: many small
offloaded kernels, each paying configuration cost.  This example runs a
4-layer quantized MLP — matmuls on OpenGeMM, bias/ReLU on the vector engine
— written once at the linalg level, and shows what each optimization stage
recovers.

Run: python examples/mlp_inference.py
"""

from repro.backends import get_accelerator
from repro.core import format_series
from repro.interp import run_module
from repro.passes import ConvertLinalgToAccfgPass, pipeline_by_name
from repro.sim import CoSimulator, SpanKind
from repro.workloads.network import build_mlp

LAYERS = [32, 64, 64, 32, 8]
BATCH = 16


def run(pipeline: str):
    workload = build_mlp(LAYERS, batch=BATCH, seed=11)
    ConvertLinalgToAccfgPass().apply(workload.module)
    pipeline_by_name(pipeline).run(workload.module)
    sim = CoSimulator(
        memory=workload.memory,
        cost_model=get_accelerator("opengemm").host_cost_model(),
    )
    run_module(workload.module, sim)
    assert workload.check(), "wrong network output!"
    config = sim.timeline.busy_time("host", SpanKind.SETUP) + sim.timeline.busy_time(
        "host", SpanKind.CALC
    )
    return sim, config


print(f"{len(LAYERS) - 1}-layer MLP {LAYERS}, batch {BATCH}")
print(f"({build_mlp(LAYERS, batch=BATCH).total_macs} MACs per inference)\n")

rows = []
baseline_cycles = None
for pipeline in ("baseline", "dedup", "overlap", "full"):
    sim, config = run(pipeline)
    if baseline_cycles is None:
        baseline_cycles = sim.total_cycles
    rows.append(
        (
            pipeline,
            sim.total_cycles,
            config,
            f"{baseline_cycles / sim.total_cycles:.2f}x",
        )
    )
print(format_series(("pipeline", "cycles", "config cycles", "speedup"), rows))
print("\nevery variant's output verified against the numpy reference")
print("(including the int8 requantization between layers).")
