#!/usr/bin/env python
"""The paper's headline experiment as a script: tiled matrix multiplication
on OpenGeMM under all four optimization levels (Section 6.2).

Shows the IR before and after optimization for a small size, runs the
co-simulation for a sweep, checks numerics against numpy, and prints the
speedup table of Figure 11.

Run: python examples/opengemm_tiled_matmul.py
"""

from repro.backends import get_accelerator
from repro.core import format_series, geomean
from repro.experiments.common import run_workload
from repro.passes import pipeline_by_name
from repro.workloads import build_opengemm_matmul

# -- The IR transformation, visibly ------------------------------------------

print("=== accfg IR for a 16x16 matmul, as the frontend emits it ===\n")
workload = build_opengemm_matmul(16)
print(workload.module)

print("\n=== after the full pipeline (dedup + overlap) ===\n")
pipeline_by_name("full").run(workload.module)
print(workload.module)

# -- The sweep -----------------------------------------------------------------

print("\n=== Figure 11 sweep ===\n")
sizes = (16, 32, 64, 128)
variants = ("baseline", "dedup", "overlap", "full")
rows = []
speedups = []
for size in sizes:
    cycles = {}
    for variant in variants:
        run = run_workload(build_opengemm_matmul(size), variant)
        assert run.correct, f"wrong matmul result ({size}, {variant})"
        cycles[variant] = run.cycles
    base = cycles["baseline"]
    rows.append(
        (
            size,
            base,
            base / cycles["dedup"],
            base / cycles["overlap"],
            base / cycles["full"],
        )
    )
    speedups.append(base / cycles["full"])

print(
    format_series(
        ("size", "base cycles", "dedup x", "overlap x", "both x"), rows
    )
)
print(
    f"\ngeomean speedup {geomean(speedups):.2f}x — the paper reports 1.99x "
    "on its size sweep; every optimized binary was checked bit-exact "
    "against numpy."
)
spec = get_accelerator("opengemm")
print(
    f"(peak {spec.peak_ops_per_cycle} ops/cycle, concurrent configuration: "
    f"{spec.concurrent_config})"
)
