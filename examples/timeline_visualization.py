#!/usr/bin/env python
"""Figure 2 / Figure 7, live: timelines of configuration overhead.

Runs the same small tiled workload three times — unoptimized, deduplicated,
and fully optimized — and renders what the host and the accelerator were
doing cycle by cycle.  Glyphs: ``C`` config writes, ``c`` parameter calc,
``h`` other host work, ``.`` host stalled, ``X`` accelerator computing.

Run: python examples/timeline_visualization.py
"""

from repro.backends import get_accelerator
from repro.interp import run_module
from repro.passes import pipeline_by_name
from repro.sim import CoSimulator, SpanKind
from repro.workloads import build_opengemm_matmul


def timeline_for(pipeline: str):
    workload = build_opengemm_matmul(16)
    pipeline_by_name(pipeline).run(workload.module)
    spec = get_accelerator("opengemm")
    sim = CoSimulator(memory=workload.memory, cost_model=spec.host_cost_model())
    run_module(workload.module, sim)
    assert workload.check()
    return sim


for pipeline, title in (
    ("baseline", "baseline — full reconfiguration every tile"),
    ("dedup", "configuration deduplication — shorter config bursts"),
    ("full", "dedup + overlap — config hidden behind accelerator compute"),
):
    sim = timeline_for(pipeline)
    accel_busy = sim.timeline.busy_time("opengemm", SpanKind.ACCEL)
    stalls = sim.timeline.busy_time("host", SpanKind.STALL)
    config = sim.timeline.busy_time("host", SpanKind.SETUP) + sim.timeline.busy_time(
        "host", SpanKind.CALC
    )
    print(f"\n=== {title} ===")
    print(
        f"total {sim.total_cycles:.0f} cycles; host config {config:.0f}, "
        f"host stalled {stalls:.0f}, accelerator busy {accel_busy:.0f}"
    )
    print(sim.timeline.render_ascii(width=100))
