"""CI smoke test for `python -m repro serve` (the serve-smoke job).

Boots a real server, fires ~50 mixed compile/simulate/lint/cost requests at
it from 8 concurrent client connections (several tenants, duplicate-heavy —
the workload the dedup tiers exist for), then checks:

* every request succeeded,
* the dedup tiers actually engaged (hit rate > 0),
* a `shutdown` request stops the server cleanly.

Exits non-zero with a diagnostic on any failure.
"""

import sys
import threading

sys.path.insert(0, "src")

from repro.serve import CompileService, ReproClient, ReproServer, probe  # noqa: E402

PROGRAMS = [
    """
func.func @main(%x : i64) -> (i64) {
  %n = arith.constant 4 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %c = arith.constant 3 : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}
""",
    """
func.func @main(%x : i64) -> (i64) {
  %n = arith.constant 8 : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %y = arith.muli %x, %n : i64
  func.return %y : i64
}
""",
]

CLIENTS = 8
REQUESTS_PER_CLIENT = 7  # 56 total


def client_worker(host: str, port: int, index: int, failures: list) -> None:
    try:
        with ReproClient(host, port, timeout=60.0) as client:
            tenant = f"tenant{index % 4}"
            for step in range(REQUESTS_PER_CLIENT):
                module = PROGRAMS[(index + step) % len(PROGRAMS)]
                kind = step % 4
                if kind == 0:
                    response = client.compile(module, tenant=tenant)
                elif kind == 1:
                    response = client.simulate(module, args=[1], tenant=tenant)
                elif kind == 2:
                    response = client.lint(module, tenant=tenant)
                else:
                    response = client.cost(module, tenant=tenant)
                if not response.get("ok"):
                    failures.append(f"client {index} step {step}: {response}")
    except Exception as error:  # noqa: BLE001 - reported via failures
        failures.append(f"client {index}: {type(error).__name__}: {error}")


def main() -> int:
    service = CompileService()
    server = ReproServer(service=service)
    server.start()
    host, port = server.address
    print(f"serve-smoke: server on {host}:{port}")

    failures: list = []
    threads = [
        threading.Thread(target=client_worker, args=(host, port, i, failures))
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        if thread.is_alive():
            failures.append("client thread hung")

    stats = service.stats()
    print(
        f"serve-smoke: {stats['requests']} requests, "
        f"dedup hit rate {stats['dedup_hit_rate']:.1%} "
        f"(coalesced {stats['coalesced']}, outcome hits "
        f"{stats['outcome_hits']}, module hits {stats['module_hits']}), "
        f"{stats['errors']} error(s)"
    )

    if failures:
        for failure in failures[:10]:
            print(f"serve-smoke: FAIL {failure}", file=sys.stderr)
        return 1
    if stats["requests"] != CLIENTS * REQUESTS_PER_CLIENT:
        print(
            f"serve-smoke: FAIL expected {CLIENTS * REQUESTS_PER_CLIENT} "
            f"requests, saw {stats['requests']}",
            file=sys.stderr,
        )
        return 1
    if stats["errors"]:
        print(
            f"serve-smoke: FAIL {stats['errors']} request(s) errored",
            file=sys.stderr,
        )
        return 1
    if stats["dedup_hit_rate"] <= 0:
        print(
            "serve-smoke: FAIL dedup tiers never engaged on a "
            "duplicate-heavy workload",
            file=sys.stderr,
        )
        return 1

    # Clean shutdown via the protocol, like a real operator would.
    with ReproClient(host, port) as client:
        response = client.shutdown()
        if not response.get("ok"):
            print(f"serve-smoke: FAIL shutdown refused: {response}",
                  file=sys.stderr)
            return 1
    server.stop()
    if probe(host, port):
        print("serve-smoke: FAIL server still accepting after shutdown",
              file=sys.stderr)
        return 1
    print("serve-smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
