"""CI gate: ``python -m repro lint --werror`` over every shipped example.

Each example's generated IR is written to a ``.mlir`` file and pushed
through the real CLI. The examples deliberately demonstrate the
*unoptimized* idiom, so the three by-design pedagogical warnings
(ACCFG010 config-roofline, ACCFG011 retention-hazard, ACCFG014
serialized-setup) are excluded via ``--filter``; every other code runs
under ``--werror``, so any error-severity hazard or any unexpected
warning fails the gate. ``tests/analysis/test_examples_clean.py`` pins
the exact by-design profile per example; this script is the cheap CLI
front line for CI.

Run from the repository root: ``PYTHONPATH=src python tools/lint_examples.py``.
"""

import contextlib
import io
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
sys.path.insert(0, str(EXAMPLES))

from repro.__main__ import main  # noqa: E402
from repro.analysis import LINT_RULES  # noqa: E402
from repro.ir import parse_module  # noqa: E402
from repro.passes import ConvertLinalgToAccfgPass  # noqa: E402
from repro.workloads import build_opengemm_matmul  # noqa: E402
from repro.workloads.network import build_mlp  # noqa: E402

#: Warnings the examples exist to demonstrate (see test_examples_clean.py).
BY_DESIGN = {"ACCFG010", "ACCFG011", "ACCFG014"}


def _import_example(name: str):
    with contextlib.redirect_stdout(io.StringIO()):
        return __import__(name)


def _example_modules() -> dict[str, str]:
    """Example name -> its generated IR, printed as parseable text."""
    modules: dict[str, str] = {}
    modules["quickstart"] = _import_example("quickstart").PROGRAM
    modules["linalg_pipeline"] = _import_example("linalg_pipeline").SOURCE
    modules["multi_accelerator"] = str(
        _import_example("multi_accelerator").module
    )
    modules["custom_accelerator"] = str(
        _import_example("custom_accelerator").module
    )
    modules["opengemm_tiled_matmul"] = str(
        _import_example("opengemm_tiled_matmul").workload.module
    )
    # mlp_inference.py and timeline_visualization.py run co-simulations on
    # import; lint the same IR they build instead of importing the scripts.
    mlp = build_mlp([32, 64, 64, 32, 8], batch=16, seed=11)
    ConvertLinalgToAccfgPass().apply(mlp.module)
    modules["mlp_inference"] = str(mlp.module)
    modules["timeline_visualization"] = str(build_opengemm_matmul(16).module)
    return modules


def run() -> int:
    gated = sorted(set(LINT_RULES) - BY_DESIGN)
    filters = [arg for code in gated for arg in ("--filter", code)]
    failures = []
    modules = _example_modules()
    with tempfile.TemporaryDirectory() as tmp:
        for name, text in modules.items():
            parse_module(text)  # the emitted IR must round-trip
            path = Path(tmp) / f"{name}.mlir"
            path.write_text(text)
            print(f"== lint --werror {name}.mlir ({len(gated)} checks)")
            if main(["lint", "--werror", *filters, str(path)]) != 0:
                failures.append(name)
    if failures:
        print(f"FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"OK: {len(modules)} examples lint-clean under --werror")
    return 0


if __name__ == "__main__":
    sys.exit(run())
